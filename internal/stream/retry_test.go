package stream

import (
	"context"
	"errors"
	"net"
	"testing"
	"time"
)

// restartableServer serves a broker on a fixed port and can be bounced.
type restartableServer struct {
	t      *testing.T
	broker *Broker
	addr   string
	srv    *Server
}

func newRestartableServer(t *testing.T) *restartableServer {
	t.Helper()
	b := NewBroker(BrokerConfig{})
	if err := b.CreateTopic("t", 3); err != nil {
		t.Fatal(err)
	}
	// Reserve a port deterministically by binding :0 once.
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := ln.Addr().String()
	_ = ln.Close()
	rs := &restartableServer{t: t, broker: b, addr: addr}
	rs.start()
	t.Cleanup(rs.stop)
	return rs
}

func (rs *restartableServer) start() {
	rs.t.Helper()
	var err error
	// The just-freed port may linger briefly; retry the bind.
	for i := 0; i < 20; i++ {
		rs.srv, err = NewServer(rs.broker, rs.addr)
		if err == nil {
			return
		}
		time.Sleep(20 * time.Millisecond)
	}
	rs.t.Fatalf("restart server: %v", err)
}

func (rs *restartableServer) stop() {
	if rs.srv != nil {
		_ = rs.srv.Close()
		rs.srv = nil
	}
}

func TestRetryClientSurvivesServerRestart(t *testing.T) {
	rs := newRestartableServer(t)
	rc, err := DialRetry(rs.addr, 5, 10*time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	defer rc.Close()

	if _, _, err := rc.Produce("t", AutoPartition, nil, []byte("before")); err != nil {
		t.Fatal(err)
	}

	// Bounce the server: the client's connection dies, the retry client
	// redials transparently.
	rs.stop()
	rs.start()

	if _, _, err := rc.Produce("t", AutoPartition, nil, []byte("after")); err != nil {
		t.Fatalf("produce after restart: %v", err)
	}
	var total int64
	for p := int32(0); p < 3; p++ {
		hwm, err := rs.broker.HighWaterMark("t", p)
		if err != nil {
			t.Fatal(err)
		}
		total += hwm
	}
	if total != 2 {
		t.Errorf("broker holds %d messages, want 2", total)
	}
}

func TestRetryClientBrokerErrorsNotRetried(t *testing.T) {
	rs := newRestartableServer(t)
	rc, err := DialRetry(rs.addr, 5, 10*time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	defer rc.Close()
	// Application-level errors surface immediately with matching.
	if _, _, err := rc.Produce("missing", 0, nil, []byte("x")); !errors.Is(err, ErrUnknownTopic) {
		t.Errorf("err = %v, want ErrUnknownTopic", err)
	}
	if _, err := rc.Fetch("t", 99, 0, 1); !errors.Is(err, ErrBadPartition) {
		t.Errorf("err = %v, want ErrBadPartition", err)
	}
}

func TestRetryClientExhaustsBudget(t *testing.T) {
	rs := newRestartableServer(t)
	rc, err := DialRetry(rs.addr, 2, time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	rc.sleep = func(time.Duration) {} // no real waiting in tests
	defer rc.Close()
	rs.stop() // server never comes back

	if _, _, err := rc.Produce("t", 0, nil, []byte("x")); err == nil {
		t.Error("want error when the server stays down")
	}
}

func TestRetryClientClosed(t *testing.T) {
	rs := newRestartableServer(t)
	rc, err := DialRetry(rs.addr, 3, time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	if err := rc.Close(); err != nil {
		t.Fatal(err)
	}
	if _, _, err := rc.Produce("t", 0, nil, []byte("x")); !errors.Is(err, ErrClientClosed) {
		t.Errorf("err = %v, want ErrClientClosed", err)
	}
	if err := rc.Close(); err != nil {
		t.Errorf("double close: %v", err)
	}
}

func TestRetryClientBackoffIsJittered(t *testing.T) {
	rs := newRestartableServer(t)
	rc, err := DialRetryContext(context.Background(), rs.addr, RetryConfig{
		MaxAttempts: 6,
		BaseBackoff: 100 * time.Millisecond,
		MaxBackoff:  time.Second,
		Jitter:      0.5,
		Seed:        42,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer rc.Close()
	rc2, err := DialRetryContext(context.Background(), rs.addr, RetryConfig{
		MaxAttempts: 6, BaseBackoff: 100 * time.Millisecond, MaxBackoff: time.Second,
		Jitter: 0.5, Seed: 42,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer rc2.Close()
	var slept []time.Duration
	rc.sleep = func(d time.Duration) { slept = append(slept, d) }
	rs.stop()
	_, _, _ = rc.Produce("t", 0, nil, []byte("x"))

	if len(slept) != 5 {
		t.Fatalf("slept %d times, want 5", len(slept))
	}
	// Every sleep must deviate from the pure-doubling schedule (seed 42
	// never draws exactly 0.5) while staying within the +-50% band.
	pure := 100 * time.Millisecond
	for i, d := range slept {
		lo := time.Duration(float64(pure) * 0.5)
		hi := time.Duration(float64(pure) * 1.5)
		if d < lo || d > hi {
			t.Errorf("sleep %d = %v outside [%v, %v]", i, d, lo, hi)
		}
		if d == pure {
			t.Errorf("sleep %d = %v exactly on the synchronized schedule", i, d)
		}
		pure *= 2
		if pure > time.Second {
			pure = time.Second
		}
	}

	// Same seed, same schedule: the jitter sequence is deterministic.
	var slept2 []time.Duration
	rc2.sleep = func(d time.Duration) { slept2 = append(slept2, d) }
	_, _, _ = rc2.Produce("t", 0, nil, []byte("x"))
	if len(slept2) != len(slept) {
		t.Fatalf("second client slept %d times, want %d", len(slept2), len(slept))
	}
	for i := range slept2 {
		if slept2[i] != slept[i] {
			t.Errorf("seeded jitter not reproducible: %v vs %v", slept2[i], slept[i])
		}
	}
}

func TestRetryClientContextBoundsRetries(t *testing.T) {
	rs := newRestartableServer(t)
	ctx, cancel := context.WithCancel(context.Background())
	rc, err := DialRetryContext(ctx, rs.addr, RetryConfig{
		MaxAttempts: 1000, // context, not the attempt budget, ends the loop
		BaseBackoff: 50 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer rc.Close()
	rs.stop()
	cancel() // total retry time bounded by the caller

	start := time.Now()
	_, _, err = rc.Produce("t", 0, nil, []byte("x"))
	if err == nil {
		t.Fatal("want error with context cancelled and server down")
	}
	if elapsed := time.Since(start); elapsed > 2*time.Second {
		t.Errorf("cancelled retry loop ran %v — context not respected", elapsed)
	}
}

func TestRetryClientContextCancelledSleepWakes(t *testing.T) {
	rs := newRestartableServer(t)
	ctx, cancel := context.WithTimeout(context.Background(), 100*time.Millisecond)
	defer cancel()
	rc, err := DialRetryContext(ctx, rs.addr, RetryConfig{
		MaxAttempts: 50,
		BaseBackoff: 10 * time.Second, // would sleep forever without ctx
	})
	if err != nil {
		t.Fatal(err)
	}
	defer rc.Close()
	rs.stop()

	done := make(chan error, 1)
	go func() {
		_, _, err := rc.Produce("t", 0, nil, []byte("x"))
		done <- err
	}()
	select {
	case err := <-done:
		if err == nil {
			t.Error("want error after context deadline")
		}
	case <-time.After(5 * time.Second):
		t.Fatal("retry loop ignored the context deadline")
	}
}

func TestRetryClientFullSurface(t *testing.T) {
	rs := newRestartableServer(t)
	rc, err := DialRetry(rs.addr, 3, time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	defer rc.Close()
	if err := rc.CreateTopic("u", 2); err != nil {
		t.Fatal(err)
	}
	n, err := rc.PartitionCount("u")
	if err != nil || n != 2 {
		t.Errorf("PartitionCount = %d, %v", n, err)
	}
	topics, err := rc.ListTopics()
	if err != nil || len(topics) != 2 {
		t.Errorf("ListTopics = %v, %v", topics, err)
	}
	if _, _, err := rc.Produce("u", 0, nil, []byte("v")); err != nil {
		t.Fatal(err)
	}
	msgs, err := rc.Fetch("u", 0, 0, 10)
	if err != nil || len(msgs) != 1 {
		t.Errorf("Fetch = %v, %v", msgs, err)
	}
}
