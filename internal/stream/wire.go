package stream

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"
)

// Wire protocol: every frame is a uint32 big-endian length followed by a
// one-byte message type and a type-specific payload. Strings and byte
// slices are length-prefixed with uint32.
//
// Protocol v1 is synchronous: one request, one response, per connection,
// in order. Protocol v2 is negotiated by a hello exchange as the
// connection's first frames; every subsequent frame additionally carries
// a uint32 correlation ID right after the type byte, decoupling request
// issue from response read (windowed pipelining). Responses stay in
// request order — the correlation ID indexes the client's in-flight ring
// and doubles as an integrity check. See DESIGN.md §12.

// Request / response type tags. The v1 values are frozen — v2 additions
// append with explicit values so an old peer and a new peer agree on the
// meaning of every byte they both know.
const (
	reqCreateTopic byte = iota + 1
	reqProduce
	reqFetch
	reqPartitionCount
	reqListTopics

	respOK byte = iota + 100
	respError
	respProduce
	respFetch
	respPartitionCount
	respListTopics
)

const (
	// reqHello opens version negotiation: the first frame a pipelining
	// client sends. An old server answers respError (unknown type) and the
	// client falls back to the synchronous v1 path.
	reqHello byte = 20
	// reqProduceBatch packs N records for one topic into a single frame.
	reqProduceBatch byte = 21

	// respHello carries the server's protocol version and frame limit.
	respHello byte = 120
	// respProduceBatch carries per-record results for a batch.
	respProduceBatch byte = 121
)

// Replication control plane (DESIGN.md §13). These frames carry the
// fencing epoch so a deposed leader's buffered appends are rejected by
// every follower.
const (
	// reqReplicate ships a leader's log suffix to a follower: topic,
	// partition, epoch, base offset, then count × (key, value,
	// appendedAtNs).
	reqReplicate byte = 22
	// reqSetRole installs a partition's replication role: topic,
	// partition, follower flag, epoch, leader hint. Answered with respOK.
	reqSetRole byte = 23
	// reqHighWater asks for a partition's high watermark (replication lag
	// probes).
	reqHighWater byte = 24
	// reqSnapshot asks for a full broker snapshot (JSON), the follower
	// bootstrap path.
	reqSnapshot byte = 25

	// respReplicate carries the follower's new high watermark.
	respReplicate byte = 122
	// respHighWater carries the partition high watermark.
	respHighWater byte = 123
	// respSnapshot carries the JSON-serialized BrokerSnapshot.
	respSnapshot byte = 124
)

// Protocol versions exchanged in the hello frame.
const (
	protocolV1 = 1 // synchronous request/response
	protocolV2 = 2 // correlation IDs + pipelining + batched produce
)

// DefaultMaxFrameSize bounds a single frame to defend against corrupt
// lengths. Both Server and Dial accept an override (ServerConfig /
// DialConfig MaxFrameSize) — batch frames at large windows can outgrow
// the default, and tests shrink it to exercise rejection.
const DefaultMaxFrameSize = 8 << 20

// Fixed v2 layout sizes, cross-checked against the encoders by
// cad3-vet's wirelayout analyzer.
const (
	// helloBodySize is the fixed hello payload: version u32, max frame
	// u32, window u32.
	helloBodySize = 12
	// corrSize is the width of the correlation ID that follows the type
	// byte on every v2 frame.
	corrSize = 4
	// batchOKResultSize is one successful per-record result in a
	// respProduceBatch: status byte, partition u32, offset u64.
	batchOKResultSize = 13
)

// errFrameTooLarge is returned when a peer announces an oversized frame.
var errFrameTooLarge = errors.New("stream: frame exceeds max size")

// putHello writes the fixed hello body into b (len >= helloBodySize).
func putHello(b []byte, version, maxFrame, window uint32) {
	binary.BigEndian.PutUint32(b[0:], version)
	binary.BigEndian.PutUint32(b[4:], maxFrame)
	binary.BigEndian.PutUint32(b[8:], window)
}

// readHelloBody parses the fixed hello body written by putHello.
func readHelloBody(b []byte) (version, maxFrame, window uint32) {
	version = binary.BigEndian.Uint32(b[0:])
	maxFrame = binary.BigEndian.Uint32(b[4:])
	window = binary.BigEndian.Uint32(b[8:])
	return
}

// putBatchOK writes one successful batch result into b
// (len >= batchOKResultSize).
func putBatchOK(b []byte, part int32, off int64) {
	b[0] = batchStatusOK
	binary.BigEndian.PutUint32(b[1:], uint32(part))
	binary.BigEndian.PutUint64(b[5:], uint64(off))
}

// readBatchOK parses a successful batch result written by putBatchOK.
func readBatchOK(b []byte) (part int32, off int64) {
	part = int32(binary.BigEndian.Uint32(b[1:]))
	off = int64(binary.BigEndian.Uint64(b[5:]))
	return
}

// Per-record batch result status codes.
const (
	batchStatusOK           byte = 0 // followed by partition u32, offset u64
	batchStatusBackpressure byte = 1 // followed by retry-after hint u64 (µs)
	batchStatusError        byte = 2 // followed by an error string
)

type wireEncoder struct {
	buf []byte
	// v2 stamps the correlation ID after the type byte on reset. The
	// server's pipelined loop sets corr per request; the client sets it
	// per issue.
	v2   bool
	corr uint32
}

func (e *wireEncoder) reset(msgType byte) {
	e.buf = append(e.buf[:0], 0, 0, 0, 0, msgType)
	if e.v2 {
		e.buf = binary.BigEndian.AppendUint32(e.buf, e.corr)
	}
}

// byte1 appends a single raw byte.
func (e *wireEncoder) byte1(v byte) { e.buf = append(e.buf, v) }

func (e *wireEncoder) u32(v uint32) {
	e.buf = binary.BigEndian.AppendUint32(e.buf, v)
}

func (e *wireEncoder) u64(v uint64) {
	e.buf = binary.BigEndian.AppendUint64(e.buf, v)
}

func (e *wireEncoder) bytes(b []byte) {
	e.u32(uint32(len(b)))
	e.buf = append(e.buf, b...)
}

func (e *wireEncoder) str(s string) { e.bytes([]byte(s)) }

// frame finalises the frame, patching the length prefix, and returns the
// wire bytes (valid until the next reset).
func (e *wireEncoder) frame() []byte {
	binary.BigEndian.PutUint32(e.buf[:4], uint32(len(e.buf)-4))
	return e.buf
}

type wireDecoder struct {
	buf []byte
	pos int
	err error
}

func (d *wireDecoder) u32() uint32 {
	if d.err != nil {
		return 0
	}
	if d.pos+4 > len(d.buf) {
		d.err = io.ErrUnexpectedEOF
		return 0
	}
	v := binary.BigEndian.Uint32(d.buf[d.pos:])
	d.pos += 4
	return v
}

// byte1 reads a single raw byte (e.g. a batch-result status).
func (d *wireDecoder) byte1() byte {
	if d.err != nil {
		return 0
	}
	if d.pos >= len(d.buf) {
		d.err = io.ErrUnexpectedEOF
		return 0
	}
	v := d.buf[d.pos]
	d.pos++
	return v
}

func (d *wireDecoder) u64() uint64 {
	if d.err != nil {
		return 0
	}
	if d.pos+8 > len(d.buf) {
		d.err = io.ErrUnexpectedEOF
		return 0
	}
	v := binary.BigEndian.Uint64(d.buf[d.pos:])
	d.pos += 8
	return v
}

// raw returns a zero-copy view of a length-prefixed byte field, valid only
// while the frame buffer is (i.e. before putFrame). Callers that retain
// the data must copy it.
func (d *wireDecoder) raw() []byte {
	n := int(d.u32())
	if d.err != nil {
		return nil
	}
	if n < 0 || d.pos+n > len(d.buf) {
		d.err = io.ErrUnexpectedEOF
		return nil
	}
	out := d.buf[d.pos : d.pos+n : d.pos+n]
	d.pos += n
	return out
}

// bytes returns an owned (pooled) copy of a length-prefixed byte field.
// Zero-length fields decode as nil.
func (d *wireDecoder) bytes() []byte {
	v := d.raw()
	if d.err != nil || len(v) == 0 {
		return nil
	}
	return append(GetPayload(), v...)
}

func (d *wireDecoder) str() string { return string(d.raw()) }

// release returns the decoder's frame buffer to the pool. Only valid on
// decoders whose buf came from readFrame, after every field (including
// raw views) has been consumed or copied.
func (d *wireDecoder) release() {
	putFrame(d.buf)
	d.buf = nil
	d.pos = 0
}

// readFrame reads one frame (type byte + payload) from r into a pooled
// buffer, rejecting frames larger than maxFrame bytes. The payload is
// valid until the caller hands it to putFrame.
func readFrame(r io.Reader, maxFrame uint32) (byte, []byte, error) {
	var lenBuf [4]byte
	if _, err := io.ReadFull(r, lenBuf[:]); err != nil {
		return 0, nil, err
	}
	n := binary.BigEndian.Uint32(lenBuf[:])
	if n == 0 {
		return 0, nil, io.ErrUnexpectedEOF
	}
	if n > maxFrame {
		return 0, nil, errFrameTooLarge
	}
	body := getFrame(int(n))
	if _, err := io.ReadFull(r, body); err != nil {
		putFrame(body)
		return 0, nil, err
	}
	return body[0], body[1:], nil
}

// maxBatchRecords bounds one reqProduceBatch frame — a defense against
// corrupt counts, far above what the frame-size bound already admits.
const maxBatchRecords = 1 << 16

// decodeBatchRequest parses a reqProduceBatch payload — topic, partition,
// count, then count × (key, value) — invoking fn per record with
// zero-copy views into the frame. It is the single decode path for the
// server handler and the fuzz harness: whatever the bytes, it must
// either error out or visit exactly n internally-consistent records
// without reading past the buffer. Empty keys decode as nil (round-robin
// partitioning).
func decodeBatchRequest(dec *wireDecoder, fn func(i int, topic string, partition int32, key, value []byte)) (topic string, partition int32, n int, err error) {
	topic = dec.str()
	partition = int32(dec.u32())
	n = int(dec.u32())
	if dec.err != nil {
		return "", 0, 0, dec.err
	}
	if n < 0 || n > maxBatchRecords {
		return "", 0, 0, fmt.Errorf("stream: implausible batch record count %d", n)
	}
	for i := 0; i < n; i++ {
		key := dec.raw()
		value := dec.raw()
		if dec.err != nil {
			return "", 0, 0, dec.err
		}
		if len(key) == 0 {
			key = nil
		}
		if fn != nil {
			fn(i, topic, partition, key, value)
		}
	}
	return topic, partition, n, nil
}

// decodeReplicateRequest parses a reqReplicate payload — topic,
// partition, epoch, base, count, then count × (key, value, appendedAtNs)
// — invoking fn per record with zero-copy views into the frame. Like
// decodeBatchRequest it is shared between the server handler and the
// fuzz harness: any input either errors out or visits exactly n
// internally-consistent records.
func decodeReplicateRequest(dec *wireDecoder, fn func(i int, rec ReplicaRecord)) (topic string, partition int32, epoch, base int64, n int, err error) {
	topic = dec.str()
	partition = int32(dec.u32())
	epoch = int64(dec.u64())
	base = int64(dec.u64())
	n = int(dec.u32())
	if dec.err != nil {
		return "", 0, 0, 0, 0, dec.err
	}
	if n < 0 || n > maxBatchRecords {
		return "", 0, 0, 0, 0, fmt.Errorf("stream: implausible replicate record count %d", n)
	}
	for i := 0; i < n; i++ {
		key := dec.raw()
		value := dec.raw()
		atNs := int64(dec.u64())
		if dec.err != nil {
			return "", 0, 0, 0, 0, dec.err
		}
		if len(key) == 0 {
			key = nil
		}
		if fn != nil {
			fn(i, ReplicaRecord{Key: key, Value: value, AppendedAtNs: atNs})
		}
	}
	return topic, partition, epoch, base, n, nil
}

// encodeMessages appends a message list to the encoder.
func (e *wireEncoder) messages(msgs []Message) {
	e.u32(uint32(len(msgs)))
	for _, m := range msgs {
		e.str(m.Topic)
		e.u32(uint32(m.Partition))
		e.u64(uint64(m.Offset))
		e.u64(uint64(m.AppendedAt.UnixNano()))
		e.bytes(m.Key)
		e.bytes(m.Value)
	}
}

// decodeMessages reads a message list. topicHint, when non-empty, is the
// topic the caller asked for: messages whose topic matches reuse the hint
// string instead of allocating one per message — on the fetch hot path
// every message in the frame matches.
func (d *wireDecoder) messages(topicHint string) []Message {
	n := int(d.u32())
	if d.err != nil || n < 0 || n > 1<<20 {
		if d.err == nil {
			d.err = fmt.Errorf("stream: implausible message count %d", n)
		}
		return nil
	}
	out := make([]Message, 0, n)
	for i := 0; i < n; i++ {
		var m Message
		if raw := d.raw(); topicHint != "" && string(raw) == topicHint {
			m.Topic = topicHint
		} else {
			m.Topic = string(raw)
		}
		m.Partition = int32(d.u32())
		m.Offset = int64(d.u64())
		nanos := int64(d.u64())
		m.AppendedAt = timeFromUnixNano(nanos)
		m.Key = d.bytes()
		m.Value = d.bytes()
		if d.err != nil {
			return nil
		}
		out = append(out, m)
	}
	return out
}
