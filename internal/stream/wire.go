package stream

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"
)

// Wire protocol: every frame is a uint32 big-endian length followed by a
// one-byte message type and a type-specific payload. Strings and byte
// slices are length-prefixed with uint32. The protocol is synchronous:
// one request, one response, per connection, in order.

// Request / response type tags.
const (
	reqCreateTopic byte = iota + 1
	reqProduce
	reqFetch
	reqPartitionCount
	reqListTopics

	respOK byte = iota + 100
	respError
	respProduce
	respFetch
	respPartitionCount
	respListTopics
)

// maxFrameSize bounds a single frame to defend against corrupt lengths.
const maxFrameSize = 8 << 20

// errFrameTooLarge is returned when a peer announces an oversized frame.
var errFrameTooLarge = errors.New("stream: frame exceeds max size")

type wireEncoder struct {
	buf []byte
}

func (e *wireEncoder) reset(msgType byte) {
	e.buf = append(e.buf[:0], 0, 0, 0, 0, msgType)
}

func (e *wireEncoder) u32(v uint32) {
	e.buf = binary.BigEndian.AppendUint32(e.buf, v)
}

func (e *wireEncoder) u64(v uint64) {
	e.buf = binary.BigEndian.AppendUint64(e.buf, v)
}

func (e *wireEncoder) bytes(b []byte) {
	e.u32(uint32(len(b)))
	e.buf = append(e.buf, b...)
}

func (e *wireEncoder) str(s string) { e.bytes([]byte(s)) }

// frame finalises the frame, patching the length prefix, and returns the
// wire bytes (valid until the next reset).
func (e *wireEncoder) frame() []byte {
	binary.BigEndian.PutUint32(e.buf[:4], uint32(len(e.buf)-4))
	return e.buf
}

type wireDecoder struct {
	buf []byte
	pos int
	err error
}

func (d *wireDecoder) u32() uint32 {
	if d.err != nil {
		return 0
	}
	if d.pos+4 > len(d.buf) {
		d.err = io.ErrUnexpectedEOF
		return 0
	}
	v := binary.BigEndian.Uint32(d.buf[d.pos:])
	d.pos += 4
	return v
}

func (d *wireDecoder) u64() uint64 {
	if d.err != nil {
		return 0
	}
	if d.pos+8 > len(d.buf) {
		d.err = io.ErrUnexpectedEOF
		return 0
	}
	v := binary.BigEndian.Uint64(d.buf[d.pos:])
	d.pos += 8
	return v
}

// raw returns a zero-copy view of a length-prefixed byte field, valid only
// while the frame buffer is (i.e. before putFrame). Callers that retain
// the data must copy it.
func (d *wireDecoder) raw() []byte {
	n := int(d.u32())
	if d.err != nil {
		return nil
	}
	if n < 0 || d.pos+n > len(d.buf) {
		d.err = io.ErrUnexpectedEOF
		return nil
	}
	out := d.buf[d.pos : d.pos+n : d.pos+n]
	d.pos += n
	return out
}

// bytes returns an owned (pooled) copy of a length-prefixed byte field.
// Zero-length fields decode as nil.
func (d *wireDecoder) bytes() []byte {
	v := d.raw()
	if d.err != nil || len(v) == 0 {
		return nil
	}
	return append(GetPayload(), v...)
}

func (d *wireDecoder) str() string { return string(d.raw()) }

// release returns the decoder's frame buffer to the pool. Only valid on
// decoders whose buf came from readFrame, after every field (including
// raw views) has been consumed or copied.
func (d *wireDecoder) release() {
	putFrame(d.buf)
	d.buf = nil
	d.pos = 0
}

// readFrame reads one frame (type byte + payload) from r into a pooled
// buffer. The payload is valid until the caller hands it to putFrame.
func readFrame(r io.Reader) (byte, []byte, error) {
	var lenBuf [4]byte
	if _, err := io.ReadFull(r, lenBuf[:]); err != nil {
		return 0, nil, err
	}
	n := binary.BigEndian.Uint32(lenBuf[:])
	if n == 0 {
		return 0, nil, io.ErrUnexpectedEOF
	}
	if n > maxFrameSize {
		return 0, nil, errFrameTooLarge
	}
	body := getFrame(int(n))
	if _, err := io.ReadFull(r, body); err != nil {
		putFrame(body)
		return 0, nil, err
	}
	return body[0], body[1:], nil
}

// encodeMessages appends a message list to the encoder.
func (e *wireEncoder) messages(msgs []Message) {
	e.u32(uint32(len(msgs)))
	for _, m := range msgs {
		e.str(m.Topic)
		e.u32(uint32(m.Partition))
		e.u64(uint64(m.Offset))
		e.u64(uint64(m.AppendedAt.UnixNano()))
		e.bytes(m.Key)
		e.bytes(m.Value)
	}
}

// decodeMessages reads a message list.
func (d *wireDecoder) messages() []Message {
	n := int(d.u32())
	if d.err != nil || n < 0 || n > 1<<20 {
		if d.err == nil {
			d.err = fmt.Errorf("stream: implausible message count %d", n)
		}
		return nil
	}
	out := make([]Message, 0, n)
	for i := 0; i < n; i++ {
		var m Message
		m.Topic = d.str()
		m.Partition = int32(d.u32())
		m.Offset = int64(d.u64())
		nanos := int64(d.u64())
		m.AppendedAt = timeFromUnixNano(nanos)
		m.Key = d.bytes()
		m.Value = d.bytes()
		if d.err != nil {
			return nil
		}
		out = append(out, m)
	}
	return out
}
