package stream

import (
	"errors"
	"fmt"
	"sort"
	"sync"
)

// Group errors.
var (
	ErrMemberExists  = errors.New("stream: group member already exists")
	ErrUnknownMember = errors.New("stream: unknown group member")
)

// Group coordinates a set of consumers sharing one topic: the topic's
// partitions are divided round-robin among members, each message is
// delivered to exactly one member, and joins/leaves rebalance the
// assignment. Offsets are owned by the group, so work resumes where the
// previous assignee left off — the client-side analogue of Kafka consumer
// groups, sufficient for scaling an RSU's ingestion across workers.
type Group struct {
	client Client
	topic  string

	mu         sync.Mutex
	partitions int
	offsets    []int64
	members    []string // join order
	generation int64
}

// NewGroup creates a group over a topic, with all partition offsets at
// startOffset.
func NewGroup(client Client, topicName string, startOffset int64) (*Group, error) {
	if client == nil {
		return nil, fmt.Errorf("stream: group requires a client")
	}
	n, err := client.PartitionCount(topicName)
	if err != nil {
		return nil, fmt.Errorf("group for %q: %w", topicName, err)
	}
	offsets := make([]int64, n)
	for i := range offsets {
		offsets[i] = startOffset
	}
	return &Group{client: client, topic: topicName, partitions: n, offsets: offsets}, nil
}

// Join adds a member and returns its handle. The assignment of every
// member changes (generation bump).
func (g *Group) Join(id string) (*GroupMember, error) {
	if id == "" {
		return nil, fmt.Errorf("stream: empty member id")
	}
	g.mu.Lock()
	defer g.mu.Unlock()
	for _, m := range g.members {
		if m == id {
			return nil, fmt.Errorf("%w: %q", ErrMemberExists, id)
		}
	}
	g.members = append(g.members, id)
	g.generation++
	return &GroupMember{group: g, id: id}, nil
}

// Leave removes a member; its partitions are redistributed.
func (g *Group) Leave(id string) error {
	g.mu.Lock()
	defer g.mu.Unlock()
	for i, m := range g.members {
		if m == id {
			g.members = append(g.members[:i], g.members[i+1:]...)
			g.generation++
			return nil
		}
	}
	return fmt.Errorf("%w: %q", ErrUnknownMember, id)
}

// Members returns the current member ids in join order.
func (g *Group) Members() []string {
	g.mu.Lock()
	defer g.mu.Unlock()
	out := make([]string, len(g.members))
	copy(out, g.members)
	return out
}

// Generation returns the rebalance generation (bumped on join/leave).
func (g *Group) Generation() int64 {
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.generation
}

// assignmentLocked returns the partitions assigned to member id under the
// current generation (round-robin by join order).
func (g *Group) assignmentLocked(id string) []int32 {
	idx := -1
	for i, m := range g.members {
		if m == id {
			idx = i
			break
		}
	}
	if idx < 0 {
		return nil
	}
	var out []int32
	for p := idx; p < g.partitions; p += len(g.members) {
		out = append(out, int32(p))
	}
	return out
}

// Offsets returns a copy of the group's committed per-partition offsets.
func (g *Group) Offsets() []int64 {
	g.mu.Lock()
	defer g.mu.Unlock()
	out := make([]int64, len(g.offsets))
	copy(out, g.offsets)
	return out
}

// GroupMember is one consumer within a group.
type GroupMember struct {
	group *Group
	id    string
}

// ID returns the member's id.
func (m *GroupMember) ID() string { return m.id }

// Assignment returns the member's current partitions, sorted.
func (m *GroupMember) Assignment() []int32 {
	m.group.mu.Lock()
	defer m.group.mu.Unlock()
	out := m.group.assignmentLocked(m.id)
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// Poll fetches up to max messages from the member's assigned partitions,
// committing group offsets past what it returns. A member that has left
// the group gets ErrUnknownMember.
func (m *GroupMember) Poll(max int) ([]Message, error) {
	if max <= 0 {
		return nil, nil
	}
	g := m.group
	g.mu.Lock()
	assigned := g.assignmentLocked(m.id)
	if assigned == nil {
		g.mu.Unlock()
		return nil, fmt.Errorf("%w: %q", ErrUnknownMember, m.id)
	}
	// Snapshot offsets for the assigned partitions.
	starts := make(map[int32]int64, len(assigned))
	for _, p := range assigned {
		starts[p] = g.offsets[p]
	}
	gen := g.generation
	g.mu.Unlock()

	var out []Message
	var firstErr error
	commits := make(map[int32]int64)
	for _, p := range assigned {
		if len(out) >= max {
			break
		}
		msgs, err := g.client.Fetch(g.topic, p, starts[p], max-len(out))
		if err != nil {
			if firstErr == nil {
				firstErr = fmt.Errorf("group fetch %q/%d: %w", g.topic, p, err)
			}
			continue
		}
		if len(msgs) > 0 {
			commits[p] = msgs[len(msgs)-1].Offset + 1
			out = append(out, msgs...)
		}
	}

	// Commit, unless a rebalance happened mid-poll (the messages are
	// still delivered; offsets stay put so the new assignee re-reads —
	// at-least-once semantics, as in Kafka).
	g.mu.Lock()
	if g.generation == gen {
		for p, off := range commits {
			if off > g.offsets[p] {
				g.offsets[p] = off
			}
		}
	}
	g.mu.Unlock()
	return out, firstErr
}
