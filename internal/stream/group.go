package stream

import (
	"errors"
	"fmt"
	"sort"
	"sync"

	"cad3/internal/obsv"
)

// Group errors.
var (
	ErrMemberExists  = errors.New("stream: group member already exists")
	ErrUnknownMember = errors.New("stream: unknown group member")
)

// Group coordinates a set of consumers sharing one topic: the topic's
// partitions are divided round-robin among members, each message is
// delivered to exactly one member, and joins/leaves rebalance the
// assignment. Offsets are owned by the group, so work resumes where the
// previous assignee left off — the client-side analogue of Kafka consumer
// groups, sufficient for scaling an RSU's ingestion across workers.
//
// Every rebalance bumps a generation number. Members that registered
// RebalanceHooks are told which partitions they lost (OnRevoke) and
// gained (OnAssign) under the new generation — all revocations fire
// before any assignment, so two members never believe they own the same
// partition at once. A poll that straddles a rebalance delivers only the
// messages from partitions the member still owns; fetches from revoked
// partitions are discarded uncommitted so the new assignee re-reads them
// (at-least-once, never double-delivered, never skipped).
type Group struct {
	client Client
	topic  string

	mu         sync.Mutex
	partitions int
	offsets    []int64
	members    []string // join order
	generation int64
	hooks      map[string]RebalanceHooks

	mGenerations, mRevoked, mAssigned *obsv.Counter
}

// RebalanceHooks are a member's rebalance callbacks. Either may be nil.
// Callbacks run outside the group lock (they may poll or commit), on the
// goroutine that triggered the rebalance — a member's own Join/Leave can
// therefore fire another member's hooks.
type RebalanceHooks struct {
	// OnRevoke reports partitions the member no longer owns under the new
	// generation. It fires before any OnAssign of the same rebalance.
	OnRevoke func(generation int64, partitions []int32)
	// OnAssign reports partitions the member newly owns.
	OnAssign func(generation int64, partitions []int32)
}

// GroupConfig configures a Group beyond the NewGroup basics.
type GroupConfig struct {
	Client      Client
	Topic       string
	StartOffset int64
	// Metrics, when set, receives rebalance.generations (bumps),
	// rebalance.revoked and rebalance.assigned (partition moves reported
	// through hooks).
	Metrics *obsv.Registry
}

// NewGroup creates a group over a topic, with all partition offsets at
// startOffset.
func NewGroup(client Client, topicName string, startOffset int64) (*Group, error) {
	return NewGroupCfg(GroupConfig{Client: client, Topic: topicName, StartOffset: startOffset})
}

// NewGroupCfg creates a group from a full config.
func NewGroupCfg(cfg GroupConfig) (*Group, error) {
	if cfg.Client == nil {
		return nil, fmt.Errorf("stream: group requires a client")
	}
	n, err := cfg.Client.PartitionCount(cfg.Topic)
	if err != nil {
		return nil, fmt.Errorf("group for %q: %w", cfg.Topic, err)
	}
	offsets := make([]int64, n)
	for i := range offsets {
		offsets[i] = cfg.StartOffset
	}
	g := &Group{
		client:     cfg.Client,
		topic:      cfg.Topic,
		partitions: n,
		offsets:    offsets,
		hooks:      make(map[string]RebalanceHooks),
	}
	if cfg.Metrics != nil {
		g.mGenerations = cfg.Metrics.Counter("rebalance.generations")
		g.mRevoked = cfg.Metrics.Counter("rebalance.revoked")
		g.mAssigned = cfg.Metrics.Counter("rebalance.assigned")
	}
	return g, nil
}

// Join adds a member and returns its handle. The assignment of every
// member changes (generation bump).
func (g *Group) Join(id string) (*GroupMember, error) {
	return g.JoinWithHooks(id, RebalanceHooks{})
}

// JoinWithHooks is Join with rebalance callbacks. The joining member's
// own OnAssign fires for its initial assignment, after the revocations
// this join causes elsewhere.
func (g *Group) JoinWithHooks(id string, hooks RebalanceHooks) (*GroupMember, error) {
	if id == "" {
		return nil, fmt.Errorf("stream: empty member id")
	}
	g.mu.Lock()
	for _, m := range g.members {
		if m == id {
			g.mu.Unlock()
			return nil, fmt.Errorf("%w: %q", ErrMemberExists, id)
		}
	}
	before := g.hookAssignmentsLocked()
	g.members = append(g.members, id)
	if hooks.OnRevoke != nil || hooks.OnAssign != nil {
		g.hooks[id] = hooks
		before[id] = nil
	}
	fire := g.rebalancedLocked(before)
	g.mu.Unlock()
	fire()
	return &GroupMember{group: g, id: id}, nil
}

// Leave removes a member; its partitions are redistributed.
func (g *Group) Leave(id string) error {
	g.mu.Lock()
	for i, m := range g.members {
		if m != id {
			continue
		}
		before := g.hookAssignmentsLocked()
		g.members = append(g.members[:i], g.members[i+1:]...)
		delete(g.hooks, id)
		delete(before, id) // the leaver gets no callbacks; it asked to go
		fire := g.rebalancedLocked(before)
		g.mu.Unlock()
		fire()
		return nil
	}
	g.mu.Unlock()
	return fmt.Errorf("%w: %q", ErrUnknownMember, id)
}

// hookAssignmentsLocked snapshots the current assignment of every member
// with hooks — the "before" side of a rebalance diff.
func (g *Group) hookAssignmentsLocked() map[string][]int32 {
	out := make(map[string][]int32, len(g.hooks))
	for id := range g.hooks {
		out[id] = g.assignmentLocked(id)
	}
	return out
}

// rebalancedLocked bumps the generation and builds the callback volley
// for a finished membership change: each hooked member's lost partitions
// (OnRevoke) and gained partitions (OnAssign) against the before
// snapshot. The returned closure fires them outside the lock, all
// revocations first.
func (g *Group) rebalancedLocked(before map[string][]int32) func() {
	g.generation++
	gen := g.generation
	if g.mGenerations != nil {
		g.mGenerations.Inc()
	}
	type call struct {
		fn    func(int64, []int32)
		parts []int32
	}
	var revokes, assigns []call
	for id, hooks := range g.hooks {
		after := g.assignmentLocked(id)
		lost := diffPartitions(before[id], after)
		gained := diffPartitions(after, before[id])
		if hooks.OnRevoke != nil && len(lost) > 0 {
			revokes = append(revokes, call{hooks.OnRevoke, lost})
			if g.mRevoked != nil {
				g.mRevoked.Add(int64(len(lost)))
			}
		}
		if hooks.OnAssign != nil && len(gained) > 0 {
			assigns = append(assigns, call{hooks.OnAssign, gained})
			if g.mAssigned != nil {
				g.mAssigned.Add(int64(len(gained)))
			}
		}
	}
	// Deterministic callback order (map iteration is not).
	sortCalls := func(cs []call) {
		sort.Slice(cs, func(i, j int) bool { return cs[i].parts[0] < cs[j].parts[0] })
	}
	sortCalls(revokes)
	sortCalls(assigns)
	return func() {
		for _, c := range revokes {
			c.fn(gen, c.parts)
		}
		for _, c := range assigns {
			c.fn(gen, c.parts)
		}
	}
}

// diffPartitions returns the elements of a not present in b, sorted.
func diffPartitions(a, b []int32) []int32 {
	var out []int32
	for _, p := range a {
		found := false
		for _, q := range b {
			if p == q {
				found = true
				break
			}
		}
		if !found {
			out = append(out, p)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// Members returns the current member ids in join order.
func (g *Group) Members() []string {
	g.mu.Lock()
	defer g.mu.Unlock()
	out := make([]string, len(g.members))
	copy(out, g.members)
	return out
}

// Generation returns the rebalance generation (bumped on join/leave).
func (g *Group) Generation() int64 {
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.generation
}

// assignmentLocked returns the partitions assigned to member id under the
// current generation (round-robin by join order).
func (g *Group) assignmentLocked(id string) []int32 {
	idx := -1
	for i, m := range g.members {
		if m == id {
			idx = i
			break
		}
	}
	if idx < 0 {
		return nil
	}
	var out []int32
	for p := idx; p < g.partitions; p += len(g.members) {
		out = append(out, int32(p))
	}
	return out
}

// Offsets returns a copy of the group's committed per-partition offsets.
func (g *Group) Offsets() []int64 {
	g.mu.Lock()
	defer g.mu.Unlock()
	out := make([]int64, len(g.offsets))
	copy(out, g.offsets)
	return out
}

// GroupMember is one consumer within a group.
type GroupMember struct {
	group *Group
	id    string
}

// ID returns the member's id.
func (m *GroupMember) ID() string { return m.id }

// Assignment returns the member's current partitions, sorted.
func (m *GroupMember) Assignment() []int32 {
	m.group.mu.Lock()
	defer m.group.mu.Unlock()
	out := m.group.assignmentLocked(m.id)
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// Poll fetches up to max messages from the member's assigned partitions,
// committing group offsets past what it returns. A member that has left
// the group gets ErrUnknownMember.
//
// A rebalance racing the poll is fenced by generation: messages fetched
// from partitions this member no longer owns are discarded (recycled)
// uncommitted — the new assignee re-reads them — and only the retained
// partitions commit. The caller never sees a message it does not own
// under the generation in force when Poll returns.
func (m *GroupMember) Poll(max int) ([]Message, error) {
	if max <= 0 {
		return nil, nil
	}
	g := m.group
	g.mu.Lock()
	assigned := g.assignmentLocked(m.id)
	if assigned == nil {
		g.mu.Unlock()
		return nil, fmt.Errorf("%w: %q", ErrUnknownMember, m.id)
	}
	// Snapshot offsets for the assigned partitions.
	starts := make(map[int32]int64, len(assigned))
	for _, p := range assigned {
		starts[p] = g.offsets[p]
	}
	gen := g.generation
	g.mu.Unlock()

	var out []Message
	var firstErr error
	commits := make(map[int32]int64)
	for _, p := range assigned {
		if len(out) >= max {
			break
		}
		msgs, err := g.client.Fetch(g.topic, p, starts[p], max-len(out))
		if err != nil {
			if firstErr == nil {
				firstErr = fmt.Errorf("group fetch %q/%d: %w", g.topic, p, err)
			}
			continue
		}
		if len(msgs) > 0 {
			commits[p] = msgs[len(msgs)-1].Offset + 1
			out = append(out, msgs...)
		}
	}

	g.mu.Lock()
	if g.generation != gen {
		// Rebalanced mid-poll: keep only partitions still owned, drop and
		// recycle the rest so the new assignee is the sole deliverer.
		still := make(map[int32]bool)
		for _, p := range g.assignmentLocked(m.id) {
			still[p] = true
		}
		kept := out[:0]
		for i := range out {
			if still[out[i].Partition] {
				kept = append(kept, out[i])
			} else {
				delete(commits, out[i].Partition)
				recyclePayloads(&out[i])
			}
		}
		for i := len(kept); i < len(out); i++ {
			out[i] = Message{}
		}
		out = kept
	}
	for p, off := range commits {
		if off > g.offsets[p] {
			g.offsets[p] = off
		}
	}
	g.mu.Unlock()
	return out, firstErr
}
