package stream

import (
	"bufio"
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"net"
	"strconv"
	"strings"
	"sync"
	"time"

	"cad3/internal/flow"
)

func timeFromUnixNano(nanos int64) time.Time {
	if nanos <= 0 {
		return time.Time{}
	}
	return time.Unix(0, nanos)
}

// ServerConfig tunes a Server beyond the defaults.
type ServerConfig struct {
	// MaxFrameSize bounds a single inbound frame; it is also announced to
	// pipelining clients in the hello exchange so they cap their batch
	// frames. Values <= 0 select DefaultMaxFrameSize.
	MaxFrameSize int
	// DisablePipelining makes the server answer reqHello like a pre-v2
	// server would (respError, unknown request type), forcing every
	// client onto the synchronous v1 path. Tests use it to prove the
	// fallback is negotiated, not accidental.
	DisablePipelining bool
}

func (cfg ServerConfig) withDefaults() ServerConfig {
	if cfg.MaxFrameSize <= 0 {
		cfg.MaxFrameSize = DefaultMaxFrameSize
	}
	return cfg
}

// Server exposes a Broker over TCP using the binary wire protocol. One
// server per RSU mirrors the paper's per-RSU Kafka broker.
type Server struct {
	broker   *Broker
	ln       net.Listener
	maxFrame uint32
	noPipe   bool

	mu     sync.Mutex
	conns  map[net.Conn]struct{}
	closed bool
	wg     sync.WaitGroup
}

// NewServer starts serving the broker on addr (e.g. "127.0.0.1:0") and
// returns once the listener is bound. Close shuts it down.
func NewServer(broker *Broker, addr string) (*Server, error) {
	return NewServerCfg(broker, addr, ServerConfig{})
}

// NewServerCfg is NewServer with an explicit config.
func NewServerCfg(broker *Broker, addr string, cfg ServerConfig) (*Server, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("stream server listen: %w", err)
	}
	return NewServerOnCfg(broker, ln, cfg), nil
}

// NewServerOn serves the broker on an already-bound listener. The caller
// may wrap the listener (e.g. with a fault injector) before handing it
// over; Close closes it.
func NewServerOn(broker *Broker, ln net.Listener) *Server {
	return NewServerOnCfg(broker, ln, ServerConfig{})
}

// NewServerOnCfg is NewServerOn with an explicit config.
func NewServerOnCfg(broker *Broker, ln net.Listener, cfg ServerConfig) *Server {
	cfg = cfg.withDefaults()
	s := &Server{
		broker:   broker,
		ln:       ln,
		maxFrame: uint32(cfg.MaxFrameSize),
		noPipe:   cfg.DisablePipelining,
		conns:    make(map[net.Conn]struct{}),
	}
	s.wg.Add(1)
	go s.acceptLoop()
	return s
}

// Addr returns the bound listener address.
func (s *Server) Addr() string { return s.ln.Addr().String() }

// Close stops the listener, closes live connections, and waits for all
// connection handlers to exit.
func (s *Server) Close() error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil
	}
	s.closed = true
	for c := range s.conns {
		_ = c.Close()
	}
	s.mu.Unlock()
	err := s.ln.Close()
	s.wg.Wait()
	return err
}

func (s *Server) acceptLoop() {
	defer s.wg.Done()
	for {
		conn, err := s.ln.Accept()
		if err != nil {
			return // listener closed
		}
		s.mu.Lock()
		if s.closed {
			s.mu.Unlock()
			_ = conn.Close()
			return
		}
		s.conns[conn] = struct{}{}
		s.mu.Unlock()

		s.wg.Add(1)
		go func() {
			defer s.wg.Done()
			s.serveConn(conn)
			s.mu.Lock()
			delete(s.conns, conn)
			s.mu.Unlock()
		}()
	}
}

func (s *Server) serveConn(conn net.Conn) {
	defer conn.Close()
	var enc wireEncoder
	first := true
	for {
		msgType, payload, err := readFrame(conn, s.maxFrame)
		if err != nil {
			return // peer closed or protocol error
		}
		if first && msgType == reqHello && !s.noPipe {
			s.servePipelined(conn, payload)
			putFrame(payload)
			return
		}
		first = false
		resp, err := s.handle(&enc, msgType, payload)
		if err != nil {
			enc.reset(respError)
			enc.str(errorWireMessage(err))
			resp = enc.frame()
		}
		putFrame(payload) // handle copied what it keeps; resp is enc's buffer
		if _, err := conn.Write(resp); err != nil {
			return
		}
	}
}

// servePipelined runs a v2 connection: after answering the hello, every
// frame carries a correlation ID that is echoed on its response.
// Requests are handled in order (responses stay in request order — the
// pipelining win is that the client no longer waits a round trip between
// them), reads are buffered, and responses coalesce into one write per
// burst so a saturating client costs one syscall per direction per
// batch of frames, not per request.
func (s *Server) servePipelined(conn net.Conn, hello []byte) {
	if len(hello) < helloBodySize {
		return // malformed hello
	}
	clientVersion, _, _ := readHelloBody(hello)
	var enc wireEncoder
	enc.reset(respHello)
	var body [helloBodySize]byte
	version := uint32(protocolV2)
	if clientVersion < protocolV2 {
		version = protocolV1
	}
	putHello(body[:], version, s.maxFrame, 0)
	enc.buf = append(enc.buf, body[:]...)
	if _, err := conn.Write(enc.frame()); err != nil {
		return
	}
	if version < protocolV2 {
		// Peer too old for pipelining: fall back to the synchronous loop.
		s.serveSyncTail(conn, &enc)
		return
	}

	const flushThreshold = 64 << 10
	br := bufio.NewReaderSize(conn, 64<<10)
	enc.v2 = true
	var wbuf []byte
	for {
		msgType, payload, err := readFrame(br, s.maxFrame)
		if err != nil {
			return
		}
		if len(payload) < corrSize {
			putFrame(payload)
			return // malformed v2 frame
		}
		enc.corr = binary.BigEndian.Uint32(payload)
		resp, err := s.handle(&enc, msgType, payload[corrSize:])
		if err != nil {
			enc.reset(respError)
			enc.str(errorWireMessage(err))
			resp = enc.frame()
		}
		putFrame(payload)
		wbuf = append(wbuf, resp...)
		// Flush when the read side has drained (no more pipelined requests
		// in flight right now) or the write buffer is big enough.
		if br.Buffered() == 0 || len(wbuf) >= flushThreshold {
			if _, err := conn.Write(wbuf); err != nil {
				return
			}
			wbuf = wbuf[:0]
		}
	}
}

// serveSyncTail continues a connection in v1 mode after a hello exchange
// settled on the synchronous protocol.
func (s *Server) serveSyncTail(conn net.Conn, enc *wireEncoder) {
	for {
		msgType, payload, err := readFrame(conn, s.maxFrame)
		if err != nil {
			return
		}
		resp, err := s.handle(enc, msgType, payload)
		if err != nil {
			enc.reset(respError)
			enc.str(errorWireMessage(err))
			resp = enc.frame()
		}
		putFrame(payload)
		if _, err := conn.Write(resp); err != nil {
			return
		}
	}
}

func (s *Server) handle(enc *wireEncoder, msgType byte, payload []byte) ([]byte, error) {
	dec := wireDecoder{buf: payload}
	switch msgType {
	case reqCreateTopic:
		name := dec.str()
		parts := int(dec.u32())
		if dec.err != nil {
			return nil, dec.err
		}
		if err := s.broker.CreateTopic(name, parts); err != nil {
			return nil, err
		}
		enc.reset(respOK)
		return enc.frame(), nil

	case reqProduce:
		topicName := dec.str()
		partition := int32(dec.u32())
		// Zero-copy views into the request frame: the broker clones on
		// Produce, and the frame outlives this call.
		key := dec.raw()
		value := dec.raw()
		if dec.err != nil {
			return nil, dec.err
		}
		if len(key) == 0 {
			key = nil
		}
		part, off, err := s.broker.Produce(topicName, partition, key, value)
		if err != nil {
			return nil, err
		}
		enc.reset(respProduce)
		enc.u32(uint32(part))
		enc.u64(uint64(off))
		return enc.frame(), nil

	case reqProduceBatch:
		// Zero-copy decode: each record's key/value views (into the frame
		// buffer, valid for the whole handle call) collect into one slice,
		// then the broker appends the batch in a single pass — one topic
		// lookup, one clock read, one partition lock per same-partition
		// run — and the per-record results stream into the response frame.
		var recs []BatchRecord
		topicName, partition, n, err := decodeBatchRequest(&dec, func(i int, _ string, _ int32, key, value []byte) {
			recs = append(recs, BatchRecord{Key: key, Value: value})
		})
		if err != nil {
			return nil, err
		}
		enc.reset(respProduceBatch)
		enc.u32(uint32(n))
		berr := s.broker.ProduceBatch(topicName, partition, recs, func(i int, part int32, off int64, perr error) {
			switch {
			case perr == nil:
				var res [batchOKResultSize]byte
				putBatchOK(res[:], part, off)
				enc.buf = append(enc.buf, res[:]...)
			case errors.Is(perr, flow.ErrBackpressure):
				enc.byte1(batchStatusBackpressure)
				hint, _ := flow.RetryAfter(perr)
				enc.u64(uint64(hint.Microseconds()))
			default:
				enc.byte1(batchStatusError)
				enc.str(perr.Error())
			}
		})
		if berr != nil {
			// Whole-batch refusal (unknown topic, closed broker): every
			// record failed identically, reported per record so the batch
			// response stays well-formed.
			enc.reset(respProduceBatch)
			enc.u32(uint32(n))
			for i := 0; i < n; i++ {
				enc.byte1(batchStatusError)
				enc.str(berr.Error())
			}
		}
		return enc.frame(), nil

	case reqFetch:
		topicName := dec.str()
		partition := int32(dec.u32())
		offset := int64(dec.u64())
		max := int(dec.u32())
		if dec.err != nil {
			return nil, dec.err
		}
		msgs, err := s.broker.Fetch(topicName, partition, offset, max)
		if err != nil {
			return nil, err
		}
		enc.reset(respFetch)
		enc.messages(msgs)
		RecycleMessages(msgs) // encoded into the response frame; copies done
		return enc.frame(), nil

	case reqPartitionCount:
		topicName := dec.str()
		if dec.err != nil {
			return nil, dec.err
		}
		n, err := s.broker.PartitionCount(topicName)
		if err != nil {
			return nil, err
		}
		enc.reset(respPartitionCount)
		enc.u32(uint32(n))
		return enc.frame(), nil

	case reqListTopics:
		topics := s.broker.Topics()
		enc.reset(respListTopics)
		enc.u32(uint32(len(topics)))
		for _, t := range topics {
			enc.str(t)
		}
		return enc.frame(), nil

	case reqReplicate:
		// Zero-copy record views into the frame; ReplicaAppend clones
		// what it keeps.
		var recs []ReplicaRecord
		topicName, partition, epoch, base, _, err := decodeReplicateRequest(&dec, func(i int, rec ReplicaRecord) {
			recs = append(recs, rec)
		})
		if err != nil {
			return nil, err
		}
		hwm, err := s.broker.ReplicaAppend(topicName, partition, epoch, base, recs)
		if err != nil {
			return nil, err
		}
		enc.reset(respReplicate)
		enc.u64(uint64(hwm))
		return enc.frame(), nil

	case reqSetRole:
		topicName := dec.str()
		partition := int32(dec.u32())
		follower := dec.byte1() != 0
		epoch := int64(dec.u64())
		leaderHint := dec.str()
		if dec.err != nil {
			return nil, dec.err
		}
		if err := s.broker.SetPartitionRole(topicName, partition, follower, epoch, leaderHint); err != nil {
			return nil, err
		}
		enc.reset(respOK)
		return enc.frame(), nil

	case reqHighWater:
		topicName := dec.str()
		partition := int32(dec.u32())
		if dec.err != nil {
			return nil, dec.err
		}
		hwm, err := s.broker.HighWaterMark(topicName, partition)
		if err != nil {
			return nil, err
		}
		enc.reset(respHighWater)
		enc.u64(uint64(hwm))
		return enc.frame(), nil

	case reqSnapshot:
		data, err := json.Marshal(s.broker.Snapshot())
		if err != nil {
			return nil, fmt.Errorf("stream: encode snapshot: %w", err)
		}
		enc.reset(respSnapshot)
		enc.bytes(data)
		return enc.frame(), nil

	default:
		return nil, fmt.Errorf("stream: unknown request type %d", msgType)
	}
}

// TCPClient is a Client speaking the wire protocol to a Server.
//
// Against a v2 server (the default), the client runs pipelined: a
// dedicated reader goroutine matches responses to in-flight requests
// through a correlation-ID ring, so concurrent callers multiplex the one
// connection instead of serializing a round trip each — see pipeline.go.
// Against an old server (or with DialConfig.DisablePipelining) requests
// fall back to the synchronous v1 path, serialized under the mutex.
type TCPClient struct {
	mu   sync.Mutex
	conn net.Conn
	enc  wireEncoder

	// maxFrame bounds inbound response frames; peerMax is the server's
	// announced inbound limit (v1 servers: assumed symmetric) that batch
	// flushes must stay under.
	maxFrame uint32
	peerMax  uint32
	timeout  time.Duration
	closed   bool

	// Reused vectored-write scratch for batch flushes (guarded by mu).
	iov   net.Buffers
	arena []byte

	// pipe is non-nil when the connection negotiated protocol v2.
	pipe *pipeState
}

var _ Client = (*TCPClient)(nil)

// DialTimeout is the TCP connect timeout.
const DialTimeout = 5 * time.Second

// DefaultWindow is the default in-flight request window of a pipelined
// connection.
const DefaultWindow = 32

// maxWindow bounds the correlation ring (and so per-connection memory).
const maxWindow = 1024

// DialConfig tunes a TCP client. The zero value selects pipelining with
// DefaultWindow in-flight requests and DefaultMaxFrameSize frames.
type DialConfig struct {
	// DisablePipelining skips the hello exchange and speaks the
	// synchronous v1 protocol, like a pre-v2 client would.
	DisablePipelining bool
	// Window caps in-flight pipelined requests on the connection. Values
	// <= 0 select DefaultWindow; values above maxWindow are clamped.
	Window int
	// MaxFrameSize bounds inbound frames and is announced to the server.
	// Values <= 0 select DefaultMaxFrameSize.
	MaxFrameSize int
	// RequestTimeout bounds each request round trip. On a pipelined
	// connection a timeout poisons the link (responses would no longer
	// line up), so the connection is closed and every in-flight request
	// errors; the pool's breaker turns that into a trip. Zero disables.
	RequestTimeout time.Duration
}

func (cfg DialConfig) withDefaults() DialConfig {
	if cfg.Window <= 0 {
		cfg.Window = DefaultWindow
	}
	if cfg.Window > maxWindow {
		cfg.Window = maxWindow
	}
	if cfg.MaxFrameSize <= 0 {
		cfg.MaxFrameSize = DefaultMaxFrameSize
	}
	return cfg
}

// Dial connects to a stream server, negotiating the pipelined protocol.
func Dial(addr string) (*TCPClient, error) {
	return DialCfg(addr, DialConfig{})
}

// DialCfg is Dial with an explicit config.
func DialCfg(addr string, cfg DialConfig) (*TCPClient, error) {
	conn, err := net.DialTimeout("tcp", addr, DialTimeout)
	if err != nil {
		return nil, fmt.Errorf("stream dial %s: %w", addr, err)
	}
	return newTCPClient(conn, cfg)
}

// Pipelined reports whether the connection negotiated protocol v2.
func (c *TCPClient) Pipelined() bool { return c.pipe != nil }

// Close closes the connection and, on a pipelined client, stops the
// reader goroutine and fails every in-flight request.
func (c *TCPClient) Close() error {
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return nil
	}
	c.closed = true
	p := c.pipe
	c.mu.Unlock()
	if p != nil {
		close(p.stop)
	}
	err := c.conn.Close()
	if p != nil {
		<-p.done // reader exited; no more slot deliveries
	}
	return err
}

// roundTrip sends the encoded frame and reads one response (v1 path).
func (c *TCPClient) roundTrip() (byte, wireDecoder, error) {
	if c.timeout > 0 {
		_ = c.conn.SetDeadline(time.Now().Add(c.timeout))
		defer c.conn.SetDeadline(time.Time{})
	}
	if _, err := c.conn.Write(c.enc.frame()); err != nil {
		return 0, wireDecoder{}, fmt.Errorf("stream write: %w", err)
	}
	msgType, payload, err := readFrame(c.conn, c.maxFrame)
	if err != nil {
		return 0, wireDecoder{}, fmt.Errorf("stream read: %w", err)
	}
	dec := wireDecoder{buf: payload}
	if msgType == respError {
		msg := dec.str()
		dec.release()
		return 0, wireDecoder{}, remoteError(msg)
	}
	return msgType, dec, nil
}

// errorWireMessage renders a handler error for the wire. Backpressure
// refusals additionally carry their live retry-after hint, so the remote
// producer's pacer backs off by the broker's estimate rather than a guess.
func errorWireMessage(err error) string {
	if errors.Is(err, flow.ErrBackpressure) {
		if hint, ok := flow.RetryAfter(err); ok {
			return fmt.Sprintf("%s retry-after-us=%d", flow.ErrBackpressure.Error(), hint.Microseconds())
		}
	}
	// Not-leader refusals keep their leader hint (already rendered by
	// Error) and gain the retry-after estimate, so a failed-over remote
	// producer learns both where to go and how long to wait.
	if errors.Is(err, ErrNotLeader) {
		msg := err.Error()
		if hint, ok := flow.RetryAfter(err); ok && hint > 0 {
			msg = fmt.Sprintf("%s retry-after-us=%d", msg, hint.Microseconds())
		}
		return msg
	}
	return err.Error()
}

// remoteBackpressure is the client-side reconstruction of a broker's
// backpressure refusal: it matches flow.ErrBackpressure and carries the
// hint parsed off the wire.
type remoteBackpressure struct {
	hint time.Duration
}

func (e *remoteBackpressure) Error() string             { return flow.ErrBackpressure.Error() + " (remote)" }
func (e *remoteBackpressure) Is(target error) bool      { return target == flow.ErrBackpressure }
func (e *remoteBackpressure) RetryAfter() time.Duration { return e.hint }

// remoteFailure is a generic server-side error relayed over the wire.
// Its type matters to the connection pool: a remoteFailure means the
// link delivered a response (the transport is healthy), so it must not
// count against the link's circuit breaker.
type remoteFailure struct{ msg string }

func (e *remoteFailure) Error() string { return "stream remote: " + e.msg }

// remoteError maps server-side sentinel messages back to matchable errors.
func remoteError(msg string) error {
	if bp := flow.ErrBackpressure.Error(); len(msg) >= len(bp) && msg[:len(bp)] == bp {
		e := &remoteBackpressure{}
		if i := strings.Index(msg, "retry-after-us="); i >= 0 {
			if us, err := strconv.ParseInt(msg[i+len("retry-after-us="):], 10, 64); err == nil {
				e.hint = time.Duration(us) * time.Microsecond
			}
		}
		return e
	}
	if nl := ErrNotLeader.Error(); strings.HasPrefix(msg, nl) {
		// Reconstruct the leader hint and retry-after estimate, so
		// LeaderHint and flow.RetryAfter work on the client side too.
		return parseNotLeader(msg)
	}
	for _, sentinel := range []error{
		ErrTopicExists, ErrUnknownTopic, ErrBadPartition,
		ErrBrokerClosed, ErrPartitionDown, ErrValueTooLarge,
		ErrEmptyTopicName, ErrFencedEpoch, ErrOffsetGap,
	} {
		if len(msg) >= len(sentinel.Error()) && msg[:len(sentinel.Error())] == sentinel.Error() {
			return fmt.Errorf("%w (remote: %s)", sentinel, msg)
		}
	}
	return &remoteFailure{msg: msg}
}

// CreateTopic implements Client.
func (c *TCPClient) CreateTopic(name string, partitions int) error {
	if c.pipe != nil {
		return c.createTopicPipe(name, partitions)
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	c.enc.reset(reqCreateTopic)
	c.enc.str(name)
	c.enc.u32(uint32(partitions))
	_, dec, err := c.roundTrip()
	dec.release()
	return err
}

// Produce implements Client.
func (c *TCPClient) Produce(topicName string, partition int32, key, value []byte) (int32, int64, error) {
	if c.pipe != nil {
		return c.producePipe(topicName, partition, key, value)
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	c.enc.reset(reqProduce)
	c.enc.str(topicName)
	c.enc.u32(uint32(partition))
	c.enc.bytes(key)
	c.enc.bytes(value)
	_, dec, err := c.roundTrip()
	if err != nil {
		return 0, 0, err
	}
	part := int32(dec.u32())
	off := int64(dec.u64())
	err = dec.err
	dec.release()
	return part, off, err
}

// Fetch implements Client.
func (c *TCPClient) Fetch(topicName string, partition int32, offset int64, max int) ([]Message, error) {
	if c.pipe != nil {
		return c.fetchPipe(topicName, partition, offset, max)
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	c.enc.reset(reqFetch)
	c.enc.str(topicName)
	c.enc.u32(uint32(partition))
	c.enc.u64(uint64(offset))
	c.enc.u32(uint32(max))
	_, dec, err := c.roundTrip()
	if err != nil {
		return nil, err
	}
	msgs := dec.messages(topicName)
	err = dec.err
	dec.release()
	return msgs, err
}

// ListTopics implements Client.
func (c *TCPClient) ListTopics() ([]string, error) {
	if c.pipe != nil {
		return c.listTopicsPipe()
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	c.enc.reset(reqListTopics)
	_, dec, err := c.roundTrip()
	if err != nil {
		return nil, err
	}
	n := int(dec.u32())
	if dec.err != nil || n < 0 || n > 1<<20 {
		dec.release()
		return nil, fmt.Errorf("stream: implausible topic count %d", n)
	}
	out := make([]string, 0, n)
	for i := 0; i < n; i++ {
		out = append(out, dec.str())
	}
	err = dec.err
	dec.release()
	return out, err
}

// PartitionCount implements Client.
func (c *TCPClient) PartitionCount(topicName string) (int, error) {
	if c.pipe != nil {
		return c.partitionCountPipe(topicName)
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	c.enc.reset(reqPartitionCount)
	c.enc.str(topicName)
	_, dec, err := c.roundTrip()
	if err != nil {
		return 0, err
	}
	n := int(dec.u32())
	err = dec.err
	dec.release()
	return n, err
}
