package stream

import (
	"errors"
	"fmt"
	"net"
	"strconv"
	"strings"
	"sync"
	"time"

	"cad3/internal/flow"
)

func timeFromUnixNano(nanos int64) time.Time {
	if nanos <= 0 {
		return time.Time{}
	}
	return time.Unix(0, nanos)
}

// Server exposes a Broker over TCP using the binary wire protocol. One
// server per RSU mirrors the paper's per-RSU Kafka broker.
type Server struct {
	broker *Broker
	ln     net.Listener

	mu     sync.Mutex
	conns  map[net.Conn]struct{}
	closed bool
	wg     sync.WaitGroup
}

// NewServer starts serving the broker on addr (e.g. "127.0.0.1:0") and
// returns once the listener is bound. Close shuts it down.
func NewServer(broker *Broker, addr string) (*Server, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("stream server listen: %w", err)
	}
	return NewServerOn(broker, ln), nil
}

// NewServerOn serves the broker on an already-bound listener. The caller
// may wrap the listener (e.g. with a fault injector) before handing it
// over; Close closes it.
func NewServerOn(broker *Broker, ln net.Listener) *Server {
	s := &Server{broker: broker, ln: ln, conns: make(map[net.Conn]struct{})}
	s.wg.Add(1)
	go s.acceptLoop()
	return s
}

// Addr returns the bound listener address.
func (s *Server) Addr() string { return s.ln.Addr().String() }

// Close stops the listener, closes live connections, and waits for all
// connection handlers to exit.
func (s *Server) Close() error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil
	}
	s.closed = true
	for c := range s.conns {
		_ = c.Close()
	}
	s.mu.Unlock()
	err := s.ln.Close()
	s.wg.Wait()
	return err
}

func (s *Server) acceptLoop() {
	defer s.wg.Done()
	for {
		conn, err := s.ln.Accept()
		if err != nil {
			return // listener closed
		}
		s.mu.Lock()
		if s.closed {
			s.mu.Unlock()
			_ = conn.Close()
			return
		}
		s.conns[conn] = struct{}{}
		s.mu.Unlock()

		s.wg.Add(1)
		go func() {
			defer s.wg.Done()
			s.serveConn(conn)
			s.mu.Lock()
			delete(s.conns, conn)
			s.mu.Unlock()
		}()
	}
}

func (s *Server) serveConn(conn net.Conn) {
	defer conn.Close()
	var enc wireEncoder
	for {
		msgType, payload, err := readFrame(conn)
		if err != nil {
			return // peer closed or protocol error
		}
		resp, err := s.handle(&enc, msgType, payload)
		if err != nil {
			enc.reset(respError)
			enc.str(errorWireMessage(err))
			resp = enc.frame()
		}
		putFrame(payload) // handle copied what it keeps; resp is enc's buffer
		if _, err := conn.Write(resp); err != nil {
			return
		}
	}
}

func (s *Server) handle(enc *wireEncoder, msgType byte, payload []byte) ([]byte, error) {
	dec := wireDecoder{buf: payload}
	switch msgType {
	case reqCreateTopic:
		name := dec.str()
		parts := int(dec.u32())
		if dec.err != nil {
			return nil, dec.err
		}
		if err := s.broker.CreateTopic(name, parts); err != nil {
			return nil, err
		}
		enc.reset(respOK)
		return enc.frame(), nil

	case reqProduce:
		topicName := dec.str()
		partition := int32(dec.u32())
		// Zero-copy views into the request frame: the broker clones on
		// Produce, and the frame outlives this call.
		key := dec.raw()
		value := dec.raw()
		if dec.err != nil {
			return nil, dec.err
		}
		if len(key) == 0 {
			key = nil
		}
		part, off, err := s.broker.Produce(topicName, partition, key, value)
		if err != nil {
			return nil, err
		}
		enc.reset(respProduce)
		enc.u32(uint32(part))
		enc.u64(uint64(off))
		return enc.frame(), nil

	case reqFetch:
		topicName := dec.str()
		partition := int32(dec.u32())
		offset := int64(dec.u64())
		max := int(dec.u32())
		if dec.err != nil {
			return nil, dec.err
		}
		msgs, err := s.broker.Fetch(topicName, partition, offset, max)
		if err != nil {
			return nil, err
		}
		enc.reset(respFetch)
		enc.messages(msgs)
		RecycleMessages(msgs) // encoded into the response frame; copies done
		return enc.frame(), nil

	case reqPartitionCount:
		topicName := dec.str()
		if dec.err != nil {
			return nil, dec.err
		}
		n, err := s.broker.PartitionCount(topicName)
		if err != nil {
			return nil, err
		}
		enc.reset(respPartitionCount)
		enc.u32(uint32(n))
		return enc.frame(), nil

	case reqListTopics:
		topics := s.broker.Topics()
		enc.reset(respListTopics)
		enc.u32(uint32(len(topics)))
		for _, t := range topics {
			enc.str(t)
		}
		return enc.frame(), nil

	default:
		return nil, fmt.Errorf("stream: unknown request type %d", msgType)
	}
}

// TCPClient is a Client speaking the wire protocol to a Server. Requests
// are serialized over a single connection; wrap one per goroutine for
// parallelism.
type TCPClient struct {
	mu   sync.Mutex
	conn net.Conn
	enc  wireEncoder
}

var _ Client = (*TCPClient)(nil)

// DialTimeout is the TCP connect timeout.
const DialTimeout = 5 * time.Second

// Dial connects to a stream server.
func Dial(addr string) (*TCPClient, error) {
	conn, err := net.DialTimeout("tcp", addr, DialTimeout)
	if err != nil {
		return nil, fmt.Errorf("stream dial %s: %w", addr, err)
	}
	return &TCPClient{conn: conn}, nil
}

// Close closes the connection.
func (c *TCPClient) Close() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.conn.Close()
}

// roundTrip sends the encoded frame and reads one response.
func (c *TCPClient) roundTrip() (byte, wireDecoder, error) {
	if _, err := c.conn.Write(c.enc.frame()); err != nil {
		return 0, wireDecoder{}, fmt.Errorf("stream write: %w", err)
	}
	msgType, payload, err := readFrame(c.conn)
	if err != nil {
		return 0, wireDecoder{}, fmt.Errorf("stream read: %w", err)
	}
	dec := wireDecoder{buf: payload}
	if msgType == respError {
		msg := dec.str()
		dec.release()
		return 0, wireDecoder{}, remoteError(msg)
	}
	return msgType, dec, nil
}

// errorWireMessage renders a handler error for the wire. Backpressure
// refusals additionally carry their live retry-after hint, so the remote
// producer's pacer backs off by the broker's estimate rather than a guess.
func errorWireMessage(err error) string {
	if errors.Is(err, flow.ErrBackpressure) {
		if hint, ok := flow.RetryAfter(err); ok {
			return fmt.Sprintf("%s retry-after-us=%d", flow.ErrBackpressure.Error(), hint.Microseconds())
		}
	}
	return err.Error()
}

// remoteBackpressure is the client-side reconstruction of a broker's
// backpressure refusal: it matches flow.ErrBackpressure and carries the
// hint parsed off the wire.
type remoteBackpressure struct {
	hint time.Duration
}

func (e *remoteBackpressure) Error() string             { return flow.ErrBackpressure.Error() + " (remote)" }
func (e *remoteBackpressure) Is(target error) bool      { return target == flow.ErrBackpressure }
func (e *remoteBackpressure) RetryAfter() time.Duration { return e.hint }

// remoteError maps server-side sentinel messages back to matchable errors.
func remoteError(msg string) error {
	if bp := flow.ErrBackpressure.Error(); len(msg) >= len(bp) && msg[:len(bp)] == bp {
		e := &remoteBackpressure{}
		if i := strings.Index(msg, "retry-after-us="); i >= 0 {
			if us, err := strconv.ParseInt(msg[i+len("retry-after-us="):], 10, 64); err == nil {
				e.hint = time.Duration(us) * time.Microsecond
			}
		}
		return e
	}
	for _, sentinel := range []error{
		ErrTopicExists, ErrUnknownTopic, ErrBadPartition,
		ErrBrokerClosed, ErrPartitionDown, ErrValueTooLarge,
	} {
		if len(msg) >= len(sentinel.Error()) && msg[:len(sentinel.Error())] == sentinel.Error() {
			return fmt.Errorf("%w (remote: %s)", sentinel, msg)
		}
	}
	return errors.New("stream remote: " + msg)
}

// CreateTopic implements Client.
func (c *TCPClient) CreateTopic(name string, partitions int) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.enc.reset(reqCreateTopic)
	c.enc.str(name)
	c.enc.u32(uint32(partitions))
	_, dec, err := c.roundTrip()
	dec.release()
	return err
}

// Produce implements Client.
func (c *TCPClient) Produce(topicName string, partition int32, key, value []byte) (int32, int64, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.enc.reset(reqProduce)
	c.enc.str(topicName)
	c.enc.u32(uint32(partition))
	c.enc.bytes(key)
	c.enc.bytes(value)
	_, dec, err := c.roundTrip()
	if err != nil {
		return 0, 0, err
	}
	part := int32(dec.u32())
	off := int64(dec.u64())
	err = dec.err
	dec.release()
	return part, off, err
}

// Fetch implements Client.
func (c *TCPClient) Fetch(topicName string, partition int32, offset int64, max int) ([]Message, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.enc.reset(reqFetch)
	c.enc.str(topicName)
	c.enc.u32(uint32(partition))
	c.enc.u64(uint64(offset))
	c.enc.u32(uint32(max))
	_, dec, err := c.roundTrip()
	if err != nil {
		return nil, err
	}
	msgs := dec.messages()
	err = dec.err
	dec.release()
	return msgs, err
}

// ListTopics implements Client.
func (c *TCPClient) ListTopics() ([]string, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.enc.reset(reqListTopics)
	_, dec, err := c.roundTrip()
	if err != nil {
		return nil, err
	}
	n := int(dec.u32())
	if dec.err != nil || n < 0 || n > 1<<20 {
		dec.release()
		return nil, fmt.Errorf("stream: implausible topic count %d", n)
	}
	out := make([]string, 0, n)
	for i := 0; i < n; i++ {
		out = append(out, dec.str())
	}
	err = dec.err
	dec.release()
	return out, err
}

// PartitionCount implements Client.
func (c *TCPClient) PartitionCount(topicName string) (int, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.enc.reset(reqPartitionCount)
	c.enc.str(topicName)
	_, dec, err := c.roundTrip()
	if err != nil {
		return 0, err
	}
	n := int(dec.u32())
	err = dec.err
	dec.release()
	return n, err
}
