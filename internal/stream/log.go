package stream

import (
	"fmt"
	"sync"
	"time"

	"cad3/internal/flow"
)

// partitionLog is one partition's append-only message log. It retains a
// bounded number of messages: once the log exceeds maxRetained the oldest
// half is discarded and the base offset advances, like Kafka segment
// deletion. Offsets are stable across truncation.
//
// When the broker runs flow-controlled, the log also fronts an admission
// gate: appends consume credits (the broker calls Admit before append) and
// the drain side returns them — a fetch that advances the furthest-read
// offset releases that many credits, and retention eviction releases the
// credits of messages no reader ever claimed. Occupancy therefore tracks
// the un-drained backlog of the partition's fastest reader, the CAD3
// single-consumer-group semantics (the RSU ingestion loop on IN-DATA, the
// vehicle fleet collectively on OUT-DATA).
type partitionLog struct {
	mu          sync.Mutex
	base        int64 // offset of msgs[0]
	msgs        []Message
	maxRetained int
	maxAge      time.Duration // 0 = no age-based retention
	now         func() time.Time

	// gate is the partition's admission gate (nil = unbounded legacy
	// admission); credited is the highest offset accounted as drained.
	gate     *flow.Gate
	credited int64
}

// defaultMaxRetained bounds per-partition memory; at ~200 B/message this is
// ~50 MB across a 3-partition topic under sustained load.
const defaultMaxRetained = 1 << 16

func newPartitionLog(maxRetained int, maxAge time.Duration, now func() time.Time) *partitionLog {
	if maxRetained <= 0 {
		maxRetained = defaultMaxRetained
	}
	if now == nil {
		now = time.Now
	}
	return &partitionLog{maxRetained: maxRetained, maxAge: maxAge, now: now}
}

// append adds a message and returns its offset.
func (l *partitionLog) append(m Message) int64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	offset := l.base + int64(len(l.msgs))
	m.Offset = offset
	m.AppendedAt = l.now()
	l.msgs = append(l.msgs, m)
	if len(l.msgs) > l.maxRetained {
		l.dropLocked(len(l.msgs) / 2)
	}
	if l.maxAge > 0 {
		cutoff := m.AppendedAt.Add(-l.maxAge)
		drop := 0
		for drop < len(l.msgs)-1 && l.msgs[drop].AppendedAt.Before(cutoff) {
			drop++
		}
		if drop > 0 {
			l.dropLocked(drop)
		}
	}
	return offset
}

// appendBatch adds a run of messages destined for this partition in one
// lock acquisition, stamping them all with one append time (Kafka's
// LogAppendTime has batch granularity too). The messages receive
// contiguous offsets starting at the returned base. The slice contents
// are taken over by the log; the slice header itself is not retained.
func (l *partitionLog) appendBatch(msgs []Message, stamp time.Time) int64 {
	if len(msgs) == 0 {
		return 0
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	base := l.base + int64(len(l.msgs))
	for i := range msgs {
		msgs[i].Offset = base + int64(i)
		msgs[i].AppendedAt = stamp
	}
	l.msgs = append(l.msgs, msgs...)
	for len(l.msgs) > l.maxRetained {
		l.dropLocked(len(l.msgs) / 2)
	}
	if l.maxAge > 0 {
		cutoff := stamp.Add(-l.maxAge)
		drop := 0
		for drop < len(l.msgs)-1 && l.msgs[drop].AppendedAt.Before(cutoff) {
			drop++
		}
		if drop > 0 {
			l.dropLocked(drop)
		}
	}
	return base
}

// dropLocked discards the oldest n messages, advancing the base offset.
// Credits held by evicted-but-never-fetched messages return to the gate:
// eviction is the queue draining, just without a reader.
func (l *partitionLog) dropLocked(n int) {
	if n <= 0 {
		return
	}
	if n > len(l.msgs) {
		n = len(l.msgs)
	}
	// The log owns its message buffers (readers get clones), so evicted
	// entries hand their payloads back to the pool.
	for i := 0; i < n; i++ {
		recyclePayloads(&l.msgs[i])
	}
	// Compact in place: retention fires every maxRetained/2 appends under
	// sustained load, and reallocating the window each time made the GC
	// the hottest function in the produce path. Capacity stays bounded by
	// what maxRetained already allowed; the vacated tail is zeroed so
	// stale entries don't pin recycled buffers.
	remaining := len(l.msgs) - n
	copy(l.msgs, l.msgs[n:])
	tail := l.msgs[remaining:]
	for i := range tail {
		tail[i] = Message{}
	}
	l.msgs = l.msgs[:remaining]
	l.base += int64(n)
	l.creditThroughLocked(l.base)
}

// creditThroughLocked releases gate credits up to offset (exclusive) if
// that advances the drained frontier.
func (l *partitionLog) creditThroughLocked(offset int64) {
	if l.gate == nil || offset <= l.credited {
		return
	}
	l.gate.Release(offset - l.credited)
	l.credited = offset
}

// read returns up to max messages starting at offset. Reading below the
// base offset (truncated history) transparently resumes at the base, like
// a Kafka consumer resetting to earliest. Reading at or past the high
// watermark returns an empty slice.
func (l *partitionLog) read(offset int64, max int) []Message {
	l.mu.Lock()
	defer l.mu.Unlock()
	if offset < l.base {
		offset = l.base
	}
	start := int(offset - l.base)
	if start >= len(l.msgs) || max <= 0 {
		return nil
	}
	end := start + max
	if end > len(l.msgs) {
		end = len(l.msgs)
	}
	out := make([]Message, end-start)
	for i := range out {
		// Pooled clones: the reader owns them and may return them via
		// RecycleMessages once decoded.
		out[i] = pooledCloneMessage(l.msgs[start+i])
	}
	// Fetch credits: the furthest-ahead reader drains the queue.
	l.creditThroughLocked(l.base + int64(end))
	return out
}

// highWaterMark returns the offset the next append will receive.
func (l *partitionLog) highWaterMark() int64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.base + int64(len(l.msgs))
}

// baseOffset returns the earliest retained offset.
func (l *partitionLog) baseOffset() int64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.base
}

// topic is a named set of partition logs.
type topic struct {
	name       string
	partitions []*partitionLog
}

func newTopic(name string, partitions, maxRetained int, maxAge time.Duration, now func() time.Time) (*topic, error) {
	if name == "" {
		return nil, fmt.Errorf("stream: empty topic name")
	}
	if partitions <= 0 {
		return nil, fmt.Errorf("stream: topic %q needs >= 1 partition, got %d", name, partitions)
	}
	t := &topic{name: name, partitions: make([]*partitionLog, partitions)}
	for i := range t.partitions {
		t.partitions[i] = newPartitionLog(maxRetained, maxAge, now)
	}
	return t, nil
}
