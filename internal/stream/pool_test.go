package stream

import (
	"bytes"
	"fmt"
	"testing"
)

func newTestBrokerClient(t *testing.T, cfg BrokerConfig) Client {
	t.Helper()
	b := NewBroker(cfg)
	if err := b.CreateTopic(TopicInData, DefaultPartitions); err != nil {
		t.Fatal(err)
	}
	return NewInProcClient(b)
}

// TestSendPooledRoundTrip exercises the pooled producer path end to end:
// payloads encoded into pooled buffers survive the broker copy, and
// recycling polled messages does not corrupt later sends.
func TestSendPooledRoundTrip(t *testing.T) {
	client := newTestBrokerClient(t, BrokerConfig{})
	prod, err := NewProducer(client, TopicInData)
	if err != nil {
		t.Fatal(err)
	}
	cons, err := NewConsumer(client, TopicInData, 0)
	if err != nil {
		t.Fatal(err)
	}

	const rounds = 50
	var msgs []Message
	for i := 0; i < rounds; i++ {
		want := fmt.Sprintf("payload-%03d", i)
		if _, _, err := prod.SendPooled([]byte("car-1"), func(dst []byte) []byte {
			return append(dst, want...)
		}); err != nil {
			t.Fatal(err)
		}
		msgs = msgs[:0]
		msgs, err = cons.PollInto(msgs, 10)
		if err != nil {
			t.Fatal(err)
		}
		if len(msgs) != 1 {
			t.Fatalf("round %d: got %d messages, want 1", i, len(msgs))
		}
		if got := string(msgs[0].Value); got != want {
			t.Fatalf("round %d: value %q, want %q", i, got, want)
		}
		if got := string(msgs[0].Key); got != "car-1" {
			t.Fatalf("round %d: key %q, want car-1", i, got)
		}
		RecycleMessages(msgs)
	}
}

// TestPolledClonesSurviveEviction pins the aliasing hazard: a clone handed
// to a consumer must stay intact after broker retention evicts (and
// recycles) the log's own copy of the message.
func TestPolledClonesSurviveEviction(t *testing.T) {
	b := NewBroker(BrokerConfig{MaxRetainedPerPartition: 8})
	if err := b.CreateTopic(TopicInData, 1); err != nil {
		t.Fatal(err)
	}
	client := NewInProcClient(b)

	payload := func(i int) []byte { return []byte(fmt.Sprintf("value-%04d", i)) }
	if _, _, err := client.Produce(TopicInData, 0, nil, payload(0)); err != nil {
		t.Fatal(err)
	}
	msgs, err := client.Fetch(TopicInData, 0, 0, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(msgs) != 1 {
		t.Fatalf("got %d messages, want 1", len(msgs))
	}
	kept := msgs[0]

	// Overflow retention so message 0 is evicted and its broker-side
	// buffers go back to the pool, then churn the pool with new sends.
	for i := 1; i < 100; i++ {
		if _, _, err := client.Produce(TopicInData, 0, nil, payload(i)); err != nil {
			t.Fatal(err)
		}
	}
	if !bytes.Equal(kept.Value, payload(0)) {
		t.Fatalf("polled clone mutated after eviction: %q", kept.Value)
	}
}

// TestRecycledBuffersDoNotAliasLog asserts recycling a polled message and
// immediately producing (which draws from the same pool) leaves other
// consumers' reads of the original offset intact.
func TestRecycledBuffersDoNotAliasLog(t *testing.T) {
	client := newTestBrokerClient(t, BrokerConfig{})
	if _, _, err := client.Produce(TopicInData, 0, []byte("k0"), []byte("original")); err != nil {
		t.Fatal(err)
	}
	msgs, err := client.Fetch(TopicInData, 0, 0, 1)
	if err != nil {
		t.Fatal(err)
	}
	RecycleMessages(msgs)
	if _, _, err := client.Produce(TopicInData, 0, []byte("k1"), []byte("OVERWRITE")); err != nil {
		t.Fatal(err)
	}
	again, err := client.Fetch(TopicInData, 0, 0, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(again) != 1 || string(again[0].Value) != "original" {
		t.Fatalf("log copy corrupted by recycled buffer reuse: %+v", again)
	}
}

// TestPollIntoAppends asserts PollInto appends after existing elements and
// respects max relative to what it added, not the slice length.
func TestPollIntoAppends(t *testing.T) {
	client := newTestBrokerClient(t, BrokerConfig{})
	for i := 0; i < 5; i++ {
		if _, _, err := client.Produce(TopicInData, 0, nil, payloadN(i)); err != nil {
			t.Fatal(err)
		}
	}
	cons, err := NewConsumer(client, TopicInData, 0)
	if err != nil {
		t.Fatal(err)
	}
	dst := make([]Message, 2) // pre-existing elements must be preserved
	out, err := cons.PollInto(dst, 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != 5 {
		t.Fatalf("len(out) = %d, want 2 existing + 3 polled", len(out))
	}
	if string(out[2].Value) != "n-0" || string(out[4].Value) != "n-2" {
		t.Fatalf("unexpected polled window: %q %q", out[2].Value, out[4].Value)
	}
}

func payloadN(i int) []byte { return []byte(fmt.Sprintf("n-%d", i)) }

// TestSendPooledOverTCP runs the pooled produce/consume path across the
// wire protocol, where frames themselves are pooled too.
func TestSendPooledOverTCP(t *testing.T) {
	b := NewBroker(BrokerConfig{})
	srv, err := NewServer(b, "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	client, err := Dial(srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer client.Close()
	if err := client.CreateTopic(TopicOutData, 1); err != nil {
		t.Fatal(err)
	}
	prod, err := NewProducer(client, TopicOutData)
	if err != nil {
		t.Fatal(err)
	}
	cons, err := NewConsumer(client, TopicOutData, 0)
	if err != nil {
		t.Fatal(err)
	}
	var msgs []Message
	for i := 0; i < 20; i++ {
		want := fmt.Sprintf("tcp-%02d", i)
		if _, _, err := prod.SendPooled(nil, func(dst []byte) []byte {
			return append(dst, want...)
		}); err != nil {
			t.Fatal(err)
		}
		msgs = msgs[:0]
		msgs, err = cons.PollInto(msgs, 4)
		if err != nil {
			t.Fatal(err)
		}
		if len(msgs) != 1 || string(msgs[0].Value) != want {
			t.Fatalf("round %d: got %+v, want value %q", i, msgs, want)
		}
		RecycleMessages(msgs)
	}
}
