package stream

import (
	"bytes"
	"errors"
	"fmt"
	"net"
	"sync"
	"testing"
	"time"

	"cad3/internal/flow"
	"cad3/internal/obsv"
)

// TestPipelineNegotiation covers the hello handshake in all four
// pairings: the fallback to the synchronous protocol must be negotiated,
// never accidental.
func TestPipelineNegotiation(t *testing.T) {
	cases := []struct {
		name          string
		server        ServerConfig
		dial          DialConfig
		wantPipelined bool
	}{
		{"new client, new server", ServerConfig{}, DialConfig{}, true},
		{"new client, old server", ServerConfig{DisablePipelining: true}, DialConfig{}, false},
		{"old client, new server", ServerConfig{}, DialConfig{DisablePipelining: true}, false},
		{"old client, old server", ServerConfig{DisablePipelining: true}, DialConfig{DisablePipelining: true}, false},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			b := NewBroker(BrokerConfig{})
			s, err := NewServerCfg(b, "127.0.0.1:0", tc.server)
			if err != nil {
				t.Fatal(err)
			}
			defer s.Close()
			c, err := DialCfg(s.Addr(), tc.dial)
			if err != nil {
				t.Fatal(err)
			}
			defer c.Close()
			if c.Pipelined() != tc.wantPipelined {
				t.Fatalf("Pipelined() = %v, want %v", c.Pipelined(), tc.wantPipelined)
			}
			// Whatever was negotiated, the client must work end to end on
			// the same connection the hello used.
			if err := c.CreateTopic("t", 2); err != nil {
				t.Fatal(err)
			}
			part, off, err := c.Produce("t", AutoPartition, []byte("k"), []byte("v"))
			if err != nil {
				t.Fatal(err)
			}
			msgs, err := c.Fetch("t", part, off, 10)
			if err != nil || len(msgs) != 1 || string(msgs[0].Value) != "v" {
				t.Fatalf("Fetch = %v, %v", msgs, err)
			}
			if n, err := c.PartitionCount("t"); err != nil || n != 2 {
				t.Fatalf("PartitionCount = %d, %v", n, err)
			}
			if topics, err := c.ListTopics(); err != nil || len(topics) != 1 {
				t.Fatalf("ListTopics = %v, %v", topics, err)
			}
		})
	}
}

// TestPipelineConcurrentProducers multiplexes many goroutines over one
// pipelined connection: every acknowledged record must be durable and
// distinct.
func TestPipelineConcurrentProducers(t *testing.T) {
	b, s := startServer(t)
	c, err := Dial(s.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if !c.Pipelined() {
		t.Fatal("expected a pipelined connection")
	}
	if err := c.CreateTopic("t", 1); err != nil {
		t.Fatal(err)
	}

	const workers, perWorker = 8, 200
	var wg sync.WaitGroup
	offsets := make([][]int64, workers)
	errs := make([]error, workers)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				_, off, err := c.Produce("t", 0, nil, []byte(fmt.Sprintf("w%d-%d", w, i)))
				if err != nil {
					errs[w] = err
					return
				}
				offsets[w] = append(offsets[w], off)
			}
		}(w)
	}
	wg.Wait()
	for w, err := range errs {
		if err != nil {
			t.Fatalf("worker %d: %v", w, err)
		}
	}
	seen := make(map[int64]bool, workers*perWorker)
	for _, offs := range offsets {
		for _, off := range offs {
			if seen[off] {
				t.Fatalf("offset %d acknowledged twice", off)
			}
			seen[off] = true
		}
	}
	if got := len(seen); got != workers*perWorker {
		t.Fatalf("acked %d offsets, want %d", got, workers*perWorker)
	}
	if hw, _ := b.HighWaterMark("t", 0); hw != int64(workers*perWorker) {
		t.Fatalf("high watermark %d, want %d", hw, workers*perWorker)
	}
}

// TestBatchProduceRoundTrip sends a mixed batch (keyed, keyless, empty
// value) in one frame and verifies every record's result and durability.
func TestBatchProduceRoundTrip(t *testing.T) {
	for _, pipelined := range []bool{true, false} {
		name := "pipelined"
		if !pipelined {
			name = "sync-fallback"
		}
		t.Run(name, func(t *testing.T) {
			_, s := startServer(t)
			c, err := DialCfg(s.Addr(), DialConfig{DisablePipelining: !pipelined})
			if err != nil {
				t.Fatal(err)
			}
			defer c.Close()
			if err := c.CreateTopic("t", 3); err != nil {
				t.Fatal(err)
			}
			recs := []BatchRecord{
				{Key: []byte("car-1"), Value: []byte("v0")},
				{Value: []byte("v1")}, // keyless: round-robin
				{Key: []byte("car-2"), Value: []byte("v2")},
				{Key: []byte("car-1"), Value: nil}, // empty value
			}
			res := make([]BatchResult, len(recs))
			if err := c.ProduceBatchInto("t", AutoPartition, recs, res); err != nil {
				t.Fatal(err)
			}
			for i, r := range res {
				if r.Err != nil {
					t.Fatalf("record %d: %v", i, r.Err)
				}
				msgs, err := c.Fetch("t", r.Partition, r.Offset, 1)
				if err != nil || len(msgs) != 1 {
					t.Fatalf("record %d not durable: %v, %v", i, msgs, err)
				}
				if !bytes.Equal(msgs[0].Value, recs[i].Value) {
					t.Fatalf("record %d: fetched %q want %q", i, msgs[0].Value, recs[i].Value)
				}
			}
			// Same key must land on the same partition.
			if res[0].Partition != res[3].Partition {
				t.Fatalf("key affinity broken: partitions %d vs %d", res[0].Partition, res[3].Partition)
			}
		})
	}
}

// TestBatchPerRecordErrors mixes records against a missing topic into the
// batch response: the batch itself succeeds, the failures are
// per-record.
func TestBatchPerRecordErrors(t *testing.T) {
	_, s := startServer(t)
	c, err := Dial(s.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	recs := []BatchRecord{{Value: []byte("v")}}
	res := make([]BatchResult, 1)
	if err := c.ProduceBatchInto("nope", AutoPartition, recs, res); err != nil {
		t.Fatalf("transport error for an application failure: %v", err)
	}
	if !errors.Is(res[0].Err, ErrUnknownTopic) {
		t.Fatalf("res[0].Err = %v, want ErrUnknownTopic", res[0].Err)
	}
}

// TestBatchBackpressureResults verifies a full admission gate surfaces
// per-record backpressure (with the broker's retry hint) through the
// batch path.
func TestBatchBackpressureResults(t *testing.T) {
	b := NewBroker(BrokerConfig{FlowCapacity: 2})
	s, err := NewServer(b, "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	c, err := Dial(s.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if err := c.CreateTopic("t", 1); err != nil {
		t.Fatal(err)
	}
	recs := make([]BatchRecord, 8)
	for i := range recs {
		recs[i] = BatchRecord{Value: []byte("v")}
	}
	res := make([]BatchResult, len(recs))
	if err := c.ProduceBatchInto("t", 0, recs, res); err != nil {
		t.Fatal(err)
	}
	var ok, refused int
	for _, r := range res {
		switch {
		case r.Err == nil:
			ok++
		case errors.Is(r.Err, flow.ErrBackpressure):
			refused++
			if r.RetryAfter <= 0 {
				t.Fatalf("backpressure without a retry hint: %+v", r)
			}
		default:
			t.Fatalf("unexpected error class: %v", r.Err)
		}
	}
	if ok == 0 || refused == 0 || ok+refused != len(recs) {
		t.Fatalf("ok=%d refused=%d over %d records: want a mix", ok, refused, len(recs))
	}
}

// TestPendingBatchWindow keeps several batches in flight before awaiting
// any of them.
func TestPendingBatchWindow(t *testing.T) {
	b, s := startServer(t)
	c, err := Dial(s.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if err := c.CreateTopic("t", 1); err != nil {
		t.Fatal(err)
	}
	const batches, per = 4, 16
	pending := make([]PendingBatch, 0, batches)
	for bi := 0; bi < batches; bi++ {
		recs := make([]BatchRecord, per)
		for i := range recs {
			recs[i] = BatchRecord{Value: []byte(fmt.Sprintf("b%d-%d", bi, i))}
		}
		pb, err := c.ProduceBatchIssue("t", 0, recs)
		if err != nil {
			t.Fatal(err)
		}
		pending = append(pending, pb)
	}
	res := make([]BatchResult, per)
	for bi := range pending {
		if err := pending[bi].Await(res); err != nil {
			t.Fatalf("batch %d: %v", bi, err)
		}
		for i, r := range res {
			if r.Err != nil {
				t.Fatalf("batch %d record %d: %v", bi, i, r.Err)
			}
		}
	}
	if hw, _ := b.HighWaterMark("t", 0); hw != int64(batches*per) {
		t.Fatalf("high watermark %d, want %d", hw, batches*per)
	}
}

// TestBatchProducerFlush drives the accumulating producer over both
// client shapes and checks the OnResult stream and durability.
func TestBatchProducerFlush(t *testing.T) {
	b, s := startServer(t)
	c, err := Dial(s.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if err := c.CreateTopic("t", 2); err != nil {
		t.Fatal(err)
	}
	var results int
	bp, err := NewBatchProducer(c, "t", AutoPartition, BatchProducerConfig{FlushEvery: 8})
	if err != nil {
		t.Fatal(err)
	}
	bp.OnResult = func(r BatchResult) {
		if r.Err != nil {
			t.Errorf("record refused: %v", r.Err)
		}
		results++
	}
	key := []byte("car-9")
	for i := 0; i < 20; i++ {
		if err := bp.Add(key, []byte(fmt.Sprintf("v%d", i))); err != nil {
			t.Fatal(err)
		}
	}
	if err := bp.Flush(); err != nil {
		t.Fatal(err)
	}
	if results != 20 {
		t.Fatalf("OnResult saw %d records, want 20", results)
	}
	hw0, _ := b.HighWaterMark("t", 0)
	hw1, _ := b.HighWaterMark("t", 1)
	if total := hw0 + hw1; total != 20 {
		t.Fatalf("broker holds %d records, want 20", total)
	}
}

// TestMaxFrameSizeServerReject: a server with a small frame limit must
// refuse an oversized request frame by dropping the connection, and the
// broker must not see the record.
func TestMaxFrameSizeServerReject(t *testing.T) {
	b := NewBroker(BrokerConfig{})
	s, err := NewServerCfg(b, "127.0.0.1:0", ServerConfig{MaxFrameSize: 128})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	// DisablePipelining: the raw v1 path lets us push an oversized frame
	// without the client-side batch size check interfering.
	c, err := DialCfg(s.Addr(), DialConfig{DisablePipelining: true})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if err := c.CreateTopic("t", 1); err != nil {
		t.Fatal(err)
	}
	if _, _, err := c.Produce("t", 0, nil, make([]byte, 1024)); err == nil {
		t.Fatal("oversized frame accepted")
	}
	if hw, _ := b.HighWaterMark("t", 0); hw != 0 {
		t.Fatalf("oversized record reached the broker (hw=%d)", hw)
	}
}

// TestMaxFrameSizeClientReject: a client with a small frame limit must
// reject an oversized response frame instead of trusting the length
// prefix.
func TestMaxFrameSizeClientReject(t *testing.T) {
	_, s := startServer(t)
	big, err := Dial(s.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer big.Close()
	if err := big.CreateTopic("t", 1); err != nil {
		t.Fatal(err)
	}
	if _, _, err := big.Produce("t", 0, nil, make([]byte, 4096)); err != nil {
		t.Fatal(err)
	}
	for _, pipelined := range []bool{true, false} {
		name := "pipelined"
		if !pipelined {
			name = "sync"
		}
		t.Run(name, func(t *testing.T) {
			small, err := DialCfg(s.Addr(), DialConfig{MaxFrameSize: 256, DisablePipelining: !pipelined})
			if err != nil {
				t.Fatal(err)
			}
			defer small.Close()
			_, err = small.Fetch("t", 0, 0, 10)
			if !errors.Is(err, errFrameTooLarge) {
				t.Fatalf("Fetch err = %v, want errFrameTooLarge", err)
			}
		})
	}
}

// TestBatchIssueRejectsOversizedFrame: the client refuses to assemble a
// batch frame bigger than the server's announced limit instead of
// having it rejected on arrival.
func TestBatchIssueRejectsOversizedFrame(t *testing.T) {
	b := NewBroker(BrokerConfig{})
	s, err := NewServerCfg(b, "127.0.0.1:0", ServerConfig{MaxFrameSize: 512})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	c, err := Dial(s.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if c.peerMax != 512 {
		t.Fatalf("peerMax = %d, want the server's announced 512", c.peerMax)
	}
	recs := []BatchRecord{{Value: make([]byte, 1024)}}
	if _, err := c.ProduceBatchIssue("t", 0, recs); err == nil {
		t.Fatal("oversized batch frame issued")
	}
}

// TestPipelineTimeoutPoisonsConnection: a request timeout on a pipelined
// connection must fail fast and kill the connection (late responses can
// no longer line up), not hang or misdeliver.
func TestPipelineTimeoutPoisonsConnection(t *testing.T) {
	// A listener that accepts the hello exchange but then swallows
	// requests: the server side of the handshake is replayed manually.
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	go func() {
		conn, err := ln.Accept()
		if err != nil {
			return
		}
		defer conn.Close()
		// Read the client hello, answer v2, then go silent.
		if _, _, err := readFrame(conn, DefaultMaxFrameSize); err != nil {
			return
		}
		var enc wireEncoder
		enc.reset(respHello)
		var body [helloBodySize]byte
		putHello(body[:], protocolV2, DefaultMaxFrameSize, 0)
		enc.buf = append(enc.buf, body[:]...)
		if _, err := conn.Write(enc.frame()); err != nil {
			return
		}
		// Swallow everything else until the client gives up.
		buf := make([]byte, 4096)
		for {
			if _, err := conn.Read(buf); err != nil {
				return
			}
		}
	}()

	c, err := DialCfg(ln.Addr().String(), DialConfig{RequestTimeout: 50 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if !c.Pipelined() {
		t.Fatal("handshake failed")
	}
	start := time.Now()
	_, _, err = c.Produce("t", 0, nil, []byte("v"))
	if err == nil {
		t.Fatal("request against a silent server succeeded")
	}
	if elapsed := time.Since(start); elapsed > 2*time.Second {
		t.Fatalf("timeout took %v", elapsed)
	}
	// The connection is poisoned: subsequent requests fail immediately.
	if _, _, err := c.Produce("t", 0, nil, []byte("v")); err == nil {
		t.Fatal("poisoned connection accepted another request")
	}
}

// TestPoolKeyAffinityAndFailover: keyed requests stick to one link;
// killing that link's connection mid-stream redials without losing any
// acknowledged record.
func TestPoolConnKillMidWindowLosesNoAckedRecords(t *testing.T) {
	b, s := startServer(t)
	reg := obsv.NewRegistry()
	pc, err := DialPool(s.Addr(), PoolConfig{
		Size:    2,
		Metrics: reg,
		Breaker: flow.BreakerConfig{FailThreshold: 3, Cooldown: 10 * time.Millisecond},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer pc.Close()
	if err := pc.CreateTopic("t", 1); err != nil {
		t.Fatal(err)
	}

	const total = 500
	key := []byte("car-1")
	home := pc.linkIndex(key) // keyed requests stick to this link
	acked := make(map[int64]string, total)
	for i := 0; i < total; i++ {
		if i == total/2 {
			// Kill the home link's connection mid-window, underneath the
			// pool.
			pc.links[home].mu.Lock()
			victim := pc.links[home].c
			pc.links[home].mu.Unlock()
			if victim != nil {
				_ = victim.conn.Close()
			}
		}
		val := fmt.Sprintf("v%d", i)
		_, off, err := pc.Produce("t", 0, key, []byte(val))
		if err != nil {
			// The request that hit the dying link may fail; unacked
			// records make no durability promise.
			continue
		}
		acked[off] = val
	}
	if len(acked) < total/2 {
		t.Fatalf("only %d/%d records acked — pool did not recover", len(acked), total)
	}
	// Every acknowledged record must be durable with the right payload.
	msgs, err := b.Fetch("t", 0, 0, total+10)
	if err != nil {
		t.Fatal(err)
	}
	byOff := make(map[int64]string, len(msgs))
	for _, m := range msgs {
		byOff[m.Offset] = string(m.Value)
	}
	for off, want := range acked {
		if got, ok := byOff[off]; !ok || got != want {
			t.Fatalf("acked offset %d: stored %q/%v, want %q", off, got, ok, want)
		}
	}
	if n := reg.Counter("wire.transport_errors").Value(); n == 0 {
		t.Fatal("conn kill left no trace in wire.transport_errors")
	}
}

// TestPoolBreakerTripRecovery is the full chaos loop: server down →
// breakers trip (observable in wire.* metrics) → pool fails fast with
// flow.ErrCircuitOpen → server back → half-open probe closes the breaker
// and traffic resumes.
func TestPoolBreakerTripRecovery(t *testing.T) {
	b := NewBroker(BrokerConfig{})
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	s := NewServerOn(b, ln)
	addr := s.Addr()

	now := time.Unix(0, 0)
	var nowMu sync.Mutex
	clock := func() time.Time {
		nowMu.Lock()
		defer nowMu.Unlock()
		return now
	}
	reg := obsv.NewRegistry()
	pc, err := DialPool(addr, PoolConfig{
		Size:    2,
		Metrics: reg,
		Breaker: flow.BreakerConfig{FailThreshold: 2, Cooldown: time.Second, Now: clock},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer pc.Close()
	if err := pc.CreateTopic("t", 1); err != nil {
		t.Fatal(err)
	}

	// Take the server down and hammer until every link's breaker trips.
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(5 * time.Second)
	for {
		_, _, err := pc.Produce("t", 0, nil, []byte("v"))
		if errors.Is(err, flow.ErrCircuitOpen) {
			break
		}
		if err == nil {
			t.Fatal("produce succeeded against a closed server")
		}
		if time.Now().After(deadline) {
			t.Fatal("breakers never tripped")
		}
	}
	if trips := reg.Counter("wire.breaker.trips").Value(); trips < 2 {
		t.Fatalf("wire.breaker.trips = %d, want >= 2", trips)
	}
	if open := reg.Gauge("wire.breaker.open").Value(); open != 2 {
		t.Fatalf("wire.breaker.open = %d, want 2", open)
	}

	// Bring the server back on the same address, then release the
	// cooldown: the next request is the half-open probe and must close
	// the breaker.
	ln2, err := net.Listen("tcp", addr)
	if err != nil {
		t.Fatalf("rebind %s: %v", addr, err)
	}
	s2 := NewServerOn(b, ln2)
	defer s2.Close()
	nowMu.Lock()
	now = now.Add(2 * time.Second)
	nowMu.Unlock()

	var lastErr error
	for i := 0; i < 10; i++ {
		if _, _, lastErr = pc.Produce("t", 0, nil, []byte("back")); lastErr == nil {
			break
		}
	}
	if lastErr != nil {
		t.Fatalf("pool did not recover: %v", lastErr)
	}
	if probes := reg.Counter("wire.breaker.probes").Value(); probes == 0 {
		t.Fatal("recovery happened without a half-open probe")
	}
	if open := reg.Gauge("wire.breaker.open").Value(); open >= 2 {
		t.Fatalf("wire.breaker.open = %d after recovery", open)
	}
}

// TestPoolCircuitOpenFloorsVehiclePacer closes the control loop the
// breaker exists for: flow.ErrCircuitOpen from the pool must drive an
// AIMD pacer straight to its decimation floor.
func TestPoolCircuitOpenFloorsPacer(t *testing.T) {
	pacer := flow.NewPacer(flow.PacerConfig{MaxDecimation: 16})
	if pacer.Decimation() != 1 {
		t.Fatal("pacer not at full rate")
	}
	// The vehicle-side contract, exercised without a vehicle: a sender
	// that sees circuit-open cuts to the floor at once.
	err := error(flow.ErrCircuitOpen)
	if errors.Is(err, flow.ErrCircuitOpen) {
		pacer.Floor()
	}
	if got := pacer.Decimation(); got != 16 {
		t.Fatalf("Decimation = %d after Floor, want 16", got)
	}
}
