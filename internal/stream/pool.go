package stream

import "sync"

// Payload buffer pooling. The telemetry fast path produces and consumes
// hundreds of small (~200 B) messages per simulated second; recycling
// their backing buffers through a sync.Pool keeps the broker's per-message
// copies and the consumers' clones off the allocator.
//
// Ownership contract:
//
//   - The broker owns the copies it makes on Produce. They are recycled
//     automatically when retention evicts them.
//   - Messages returned by Fetch/Poll/PollInto own their Key and Value
//     buffers. A consumer that has finished with them MAY hand them back
//     with RecycleMessages; one that retains them (or does nothing) simply
//     leaves them to the garbage collector. Never recycle a message whose
//     Key/Value still alias live data.
//   - Buffers obtained from GetPayload are returned with PutPayload once
//     the payload has been handed to Send/Produce (the broker and the TCP
//     client both copy before returning).

const (
	// pooledBufCap is the capacity of freshly minted pooled payload
	// buffers — sized for the codec's fixed 200 B telemetry packet with
	// headroom for warning/summary payloads and keys.
	pooledBufCap = 256
	// maxPooledBufCap bounds what PutPayload retains, so one oversized
	// payload does not pin a large buffer in the pool forever.
	maxPooledBufCap = 4096
	// maxPooledFrameCap bounds pooled wire-frame bodies (a fetch response
	// carries many messages per frame).
	maxPooledFrameCap = 1 << 16
)

var payloadPool = sync.Pool{
	New: func() any {
		b := make([]byte, 0, pooledBufCap)
		return &b
	},
}

// GetPayload returns an empty length-zero buffer from the pool, ready for
// append-style encoding (e.g. core.AppendRecord).
func GetPayload() []byte {
	return (*payloadPool.Get().(*[]byte))[:0]
}

// PutPayload returns a buffer to the pool. Nil and oversized buffers are
// dropped. The caller must not touch the buffer afterwards.
func PutPayload(b []byte) {
	if cap(b) == 0 || cap(b) > maxPooledBufCap {
		return
	}
	b = b[:0]
	payloadPool.Put(&b)
}

// RecycleMessages returns the Key/Value buffers of polled messages to the
// pool and nils them out. Call it only when the messages' payloads have
// been fully decoded (copied into structs) and nothing aliases them.
func RecycleMessages(msgs []Message) {
	for i := range msgs {
		PutPayload(msgs[i].Key)
		PutPayload(msgs[i].Value)
		msgs[i].Key, msgs[i].Value = nil, nil
	}
}

// pooledClone deep-copies b into a pooled buffer (nil stays nil).
func pooledClone(b []byte) []byte {
	if b == nil {
		return nil
	}
	return append(GetPayload(), b...)
}

// pooledCloneMessage deep-copies a message using pooled buffers.
func pooledCloneMessage(m Message) Message {
	m.Key = pooledClone(m.Key)
	m.Value = pooledClone(m.Value)
	return m
}

// recyclePayloads returns a message's buffers to the pool (used by the
// broker when retention evicts log entries it owns).
func recyclePayloads(m *Message) {
	PutPayload(m.Key)
	PutPayload(m.Value)
	m.Key, m.Value = nil, nil
}

var framePool = sync.Pool{
	New: func() any {
		b := make([]byte, 0, 4096)
		return &b
	},
}

// getFrame returns an n-byte buffer for a wire frame body.
func getFrame(n int) []byte {
	b := *framePool.Get().(*[]byte)
	if cap(b) < n {
		return make([]byte, n)
	}
	return b[:n]
}

// putFrame returns a frame body to the pool.
func putFrame(b []byte) {
	if cap(b) == 0 || cap(b) > maxPooledFrameCap {
		return
	}
	b = b[:0]
	framePool.Put(&b)
}
