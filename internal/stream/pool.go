package stream

// Payload buffer pooling. The telemetry fast path produces and consumes
// hundreds of small (~200 B) messages per simulated second; recycling
// their backing buffers through a bounded free list keeps the broker's
// per-message copies and the consumers' clones off the allocator.
//
// Ownership contract:
//
//   - The broker owns the copies it makes on Produce. They are recycled
//     automatically when retention evicts them.
//   - Messages returned by Fetch/Poll/PollInto own their Key and Value
//     buffers. A consumer that has finished with them MAY hand them back
//     with RecycleMessages; one that retains them (or does nothing) simply
//     leaves them to the garbage collector. Never recycle a message whose
//     Key/Value still alias live data.
//   - Buffers obtained from GetPayload are returned with PutPayload once
//     the payload has been handed to Send/Produce (the broker and the TCP
//     client both copy before returning).

const (
	// pooledBufCap is the capacity of freshly minted pooled payload
	// buffers — sized for the codec's fixed 200 B telemetry packet with
	// headroom for warning/summary payloads and keys.
	pooledBufCap = 256
	// maxPooledBufCap bounds what PutPayload retains, so one oversized
	// payload does not pin a large buffer in the pool forever.
	maxPooledBufCap = 4096
	// maxPooledFrameCap bounds pooled wire-frame bodies (a fetch response
	// carries many messages per frame).
	maxPooledFrameCap = 1 << 16
)

// payloadFree is a bounded free list of payload buffers. A buffered
// channel instead of a sync.Pool because Put into a sync.Pool must box
// the slice header (`Put(&b)` escapes), costing one heap allocation per
// recycled buffer — exactly the per-message cost pooling exists to
// remove. Channel send/receive copies the header into the ring, so both
// directions are allocation-free; a full ring simply drops the buffer to
// the garbage collector.
var payloadFree = make(chan []byte, 1024)

// GetPayload returns an empty length-zero buffer from the pool, ready for
// append-style encoding (e.g. core.AppendRecord).
func GetPayload() []byte {
	select {
	case b := <-payloadFree:
		guardLease(b)
		return b[:0]
	default:
		return make([]byte, 0, pooledBufCap)
	}
}

// PutPayload returns a buffer to the pool. Nil and oversized buffers are
// dropped. The caller must not touch the buffer afterwards.
//
//cad3:noalloc
func PutPayload(b []byte) {
	if cap(b) == 0 || cap(b) > maxPooledBufCap {
		return
	}
	// Admit into the guard before the send: once the header is in the
	// ring another goroutine may lease it immediately.
	guardAdmit(b)
	select {
	case payloadFree <- b[:0]:
	default: // free list full: let the GC take it
		guardRetract(b)
	}
}

// RecycleMessages returns the Key/Value buffers of polled messages to the
// pool and nils them out. Call it only when the messages' payloads have
// been fully decoded (copied into structs) and nothing aliases them.
//
//cad3:noalloc
func RecycleMessages(msgs []Message) {
	for i := range msgs {
		PutPayload(msgs[i].Key)
		PutPayload(msgs[i].Value)
		msgs[i].Key, msgs[i].Value = nil, nil
	}
}

// pooledClone deep-copies b into a pooled buffer (nil stays nil).
func pooledClone(b []byte) []byte {
	if b == nil {
		return nil
	}
	return append(GetPayload(), b...)
}

// pooledCloneMessage deep-copies a message using pooled buffers.
func pooledCloneMessage(m Message) Message {
	m.Key = pooledClone(m.Key)
	m.Value = pooledClone(m.Value)
	return m
}

// recyclePayloads returns a message's buffers to the pool (used by the
// broker when retention evicts log entries it owns).
func recyclePayloads(m *Message) {
	PutPayload(m.Key)
	PutPayload(m.Value)
	m.Key, m.Value = nil, nil
}

// frameFree recycles wire-frame bodies, same shape as payloadFree.
var frameFree = make(chan []byte, 64)

// getFrame returns an n-byte buffer for a wire frame body.
func getFrame(n int) []byte {
	select {
	case b := <-frameFree:
		guardLease(b)
		if cap(b) >= n {
			return b[:n]
		}
	default:
	}
	return make([]byte, n)
}

// putFrame returns a frame body to the pool.
func putFrame(b []byte) {
	if cap(b) == 0 || cap(b) > maxPooledFrameCap {
		return
	}
	guardAdmit(b)
	select {
	case frameFree <- b[:0]:
	default:
		guardRetract(b)
	}
}
