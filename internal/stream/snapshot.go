package stream

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"time"
)

// Broker crash recovery: a snapshot captures every topic's partition
// logs (retained messages plus their base offsets) so a crashed broker
// can be rebuilt without losing the offsets consumers hold — messages
// produced after the snapshot are lost, exactly the at-most-once window
// a periodic-checkpoint deployment accepts. Snapshots serialize to JSON
// ([]byte fields ride base64), so they can live on disk across process
// restarts.

// SnapshotVersion guards the serialized layout.
const SnapshotVersion = 1

// MessageSnapshot is one retained message.
type MessageSnapshot struct {
	Key          []byte `json:"k,omitempty"`
	Value        []byte `json:"v"`
	AppendedAtNs int64  `json:"atNs"`
}

// PartitionSnapshot is one partition log: its base offset and retained
// messages (offsets are implicit: Base+i).
type PartitionSnapshot struct {
	Base     int64             `json:"base"`
	Messages []MessageSnapshot `json:"msgs"`
}

// TopicSnapshot is one topic's partitions.
type TopicSnapshot struct {
	Name       string              `json:"name"`
	Partitions []PartitionSnapshot `json:"partitions"`
}

// BrokerSnapshot is a point-in-time copy of a broker's full state.
type BrokerSnapshot struct {
	Version   int             `json:"version"`
	TakenAtMs int64           `json:"takenAtMs"`
	Topics    []TopicSnapshot `json:"topics"`
}

// Snapshot captures the broker's topics and retained messages. The copy
// is deep: the snapshot stays valid however long the broker keeps
// running (or however quickly it crashes).
func (b *Broker) Snapshot() *BrokerSnapshot {
	b.mu.RLock()
	names := make([]string, 0, len(b.topics))
	for name := range b.topics {
		names = append(names, name)
	}
	sort.Strings(names)
	topics := make([]*topic, len(names))
	for i, name := range names {
		topics[i] = b.topics[name]
	}
	now := b.cfg.Now
	b.mu.RUnlock()
	if now == nil {
		now = time.Now
	}

	snap := &BrokerSnapshot{Version: SnapshotVersion, TakenAtMs: now().UnixMilli()}
	for i, t := range topics {
		ts := TopicSnapshot{Name: names[i], Partitions: make([]PartitionSnapshot, len(t.partitions))}
		for p, pl := range t.partitions {
			ts.Partitions[p] = pl.snapshot()
		}
		snap.Topics = append(snap.Topics, ts)
	}
	return snap
}

// snapshot deep-copies one partition log.
func (l *partitionLog) snapshot() PartitionSnapshot {
	l.mu.Lock()
	defer l.mu.Unlock()
	ps := PartitionSnapshot{Base: l.base, Messages: make([]MessageSnapshot, len(l.msgs))}
	for i, m := range l.msgs {
		ms := MessageSnapshot{AppendedAtNs: m.AppendedAt.UnixNano()}
		if m.Key != nil {
			ms.Key = append([]byte(nil), m.Key...)
		}
		if m.Value != nil {
			ms.Value = append([]byte(nil), m.Value...)
		}
		ps.Messages[i] = ms
	}
	return ps
}

// RestoreBroker builds a fresh broker from a snapshot: same topics, same
// partition counts, same retained messages at the same offsets, so
// consumers resume from their committed offsets without rewinding past
// the snapshot point.
func RestoreBroker(cfg BrokerConfig, snap *BrokerSnapshot) (*Broker, error) {
	if snap == nil {
		return nil, fmt.Errorf("stream: nil broker snapshot")
	}
	if snap.Version != SnapshotVersion {
		return nil, fmt.Errorf("stream: snapshot version %d, want %d", snap.Version, SnapshotVersion)
	}
	b := NewBroker(cfg)
	for _, ts := range snap.Topics {
		if err := b.CreateTopic(ts.Name, len(ts.Partitions)); err != nil {
			return nil, fmt.Errorf("restore topic %q: %w", ts.Name, err)
		}
		t := b.topics[ts.Name]
		for p, ps := range ts.Partitions {
			pl := t.partitions[p]
			pl.mu.Lock()
			pl.base = ps.Base
			pl.msgs = make([]Message, len(ps.Messages))
			for i, ms := range ps.Messages {
				// The log owns pooled copies, matching what append
				// creates — eviction recycles them safely.
				pl.msgs[i] = Message{
					Topic:      ts.Name,
					Partition:  int32(p),
					Offset:     ps.Base + int64(i),
					Key:        pooledClone(ms.Key),
					Value:      pooledClone(ms.Value),
					AppendedAt: time.Unix(0, ms.AppendedAtNs),
				}
			}
			// A flow-controlled restore re-seats the restored backlog as
			// gate occupancy: the messages were admitted before the crash,
			// so they re-enter as credit debt, not via re-admission.
			if pl.gate != nil {
				pl.credited = ps.Base
				pl.gate.Acquire(int64(len(ps.Messages)))
			}
			pl.mu.Unlock()
		}
	}
	return b, nil
}

// WriteSnapshot serializes a snapshot as JSON.
func WriteSnapshot(w io.Writer, snap *BrokerSnapshot) error {
	if err := json.NewEncoder(w).Encode(snap); err != nil {
		return fmt.Errorf("stream: write snapshot: %w", err)
	}
	return nil
}

// ReadSnapshot deserializes a snapshot written by WriteSnapshot.
func ReadSnapshot(r io.Reader) (*BrokerSnapshot, error) {
	var snap BrokerSnapshot
	if err := json.NewDecoder(r).Decode(&snap); err != nil {
		return nil, fmt.Errorf("stream: read snapshot: %w", err)
	}
	return &snap, nil
}

// GroupSnapshot captures a consumer group's committed offsets and
// membership, so a restarted node's group resumes exactly where the
// crashed one left off (at-least-once: in-flight uncommitted messages
// are re-read).
type GroupSnapshot struct {
	Topic      string   `json:"topic"`
	Offsets    []int64  `json:"offsets"`
	Members    []string `json:"members"`
	Generation int64    `json:"generation"`
}

// Snapshot captures the group's committed state.
func (g *Group) Snapshot() GroupSnapshot {
	g.mu.Lock()
	defer g.mu.Unlock()
	snap := GroupSnapshot{Topic: g.topic, Generation: g.generation}
	snap.Offsets = append(snap.Offsets, g.offsets...)
	snap.Members = append(snap.Members, g.members...)
	return snap
}

// RestoreGroup rebuilds a group against a (possibly restarted) broker
// from its snapshot. The topic must exist with at least the snapshotted
// partition count: partitions added since the snapshot resume from the
// earliest offset (a grown topic re-reads nothing it already committed,
// and reads the new partitions from their start), while a topic that
// shrank below the snapshot is an error — committed offsets would
// silently vanish.
func RestoreGroup(client Client, snap GroupSnapshot) (*Group, error) {
	g, err := NewGroup(client, snap.Topic, 0)
	if err != nil {
		return nil, err
	}
	g.mu.Lock()
	defer g.mu.Unlock()
	if len(snap.Offsets) > g.partitions {
		return nil, fmt.Errorf("stream: group snapshot has %d offsets, topic %q has %d partitions",
			len(snap.Offsets), snap.Topic, g.partitions)
	}
	copy(g.offsets, snap.Offsets)
	g.members = append(g.members[:0], snap.Members...)
	g.generation = snap.Generation
	return g, nil
}

// Member returns the handle of an existing member (after RestoreGroup,
// which re-seats the snapshotted membership without bumping the
// generation). Unknown ids get ErrUnknownMember.
func (g *Group) Member(id string) (*GroupMember, error) {
	g.mu.Lock()
	defer g.mu.Unlock()
	for _, m := range g.members {
		if m == id {
			return &GroupMember{group: g, id: id}, nil
		}
	}
	return nil, fmt.Errorf("%w: %q", ErrUnknownMember, id)
}

// SetOffsets positions a consumer's per-partition offsets (checkpoint
// restore). The length must match the partition count.
//
// The reposition serializes behind the consumer mutex — the same mutex
// PollInto holds for its entire fetch loop — so a concurrent poll either
// completes wholly before the restore or starts wholly after it; it can
// never observe half-restored offsets. The round-robin cursor resets
// with the offsets, keeping the first post-restore poll deterministic.
func (c *Consumer) SetOffsets(offsets []int64) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if len(offsets) != len(c.offsets) {
		return fmt.Errorf("stream: %d offsets for %d partitions of %q",
			len(offsets), len(c.offsets), c.topic)
	}
	copy(c.offsets, offsets)
	c.next = 0
	return nil
}
