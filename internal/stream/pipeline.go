package stream

// Client-side windowed pipelining (protocol v2). A pipelined TCPClient
// decouples request issue from response read: callers encode and write
// their frame under the client mutex (fixing the on-wire order), park a
// response channel in a FIFO ring, and block on that channel alone while
// other callers keep the connection busy. A dedicated reader goroutine
// matches each inbound frame to the oldest waiter — responses arrive in
// request order because the server handles frames sequentially — and
// verifies the echoed correlation ID as an integrity check. The in-flight
// window is a token semaphore sized at DialConfig.Window.
//
// See DESIGN.md §12 for the full protocol and failure semantics.

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"net"
	"sync"
	"time"
)

// errPipeBroken wraps the first terminal error of a pipelined connection;
// every in-flight and subsequent request fails with it.
var errPipeBroken = errors.New("stream: pipelined connection broken")

// errUnexpectedResponse is the cold-path constructor for a response
// frame of the wrong type — a protocol violation, hoisted out of the
// //cad3:noalloc request bodies.
func errUnexpectedResponse(msgType byte) error {
	return fmt.Errorf("stream: unexpected response type %d", msgType)
}

// pipeResp is one response delivered to a waiter. buf is the pooled
// frame payload past the correlation ID; the waiter releases it.
type pipeResp struct {
	msgType byte
	buf     []byte
	err     error
}

// pipeWaiter is one in-flight request: the correlation ID it was issued
// under and the channel its response is delivered on.
type pipeWaiter struct {
	corr uint32
	ch   chan pipeResp
}

// pipeState is the pipelining machinery of one TCPClient.
type pipeState struct {
	// window is the in-flight token semaphore: issue acquires, await
	// releases after the response channel is drained and recycled.
	window chan struct{}
	// free recycles response channels; holding a window token guarantees
	// a receive cannot block (channels return before tokens).
	free chan chan pipeResp
	// stop is closed by Close; the reader goroutine exits on it and
	// issuers refuse instead of blocking on a dead window.
	stop chan struct{}
	// done is closed by the reader goroutine on exit.
	done chan struct{}
	// br buffers the connection for the reader.
	br *bufio.Reader

	mu   sync.Mutex
	next uint32       // next correlation ID
	ring []pipeWaiter // FIFO of in-flight waiters, capacity = window
	head uint32       // ring read index (reader)
	tail uint32       // ring write index (issuers)
	err  error        // first terminal error; set once, then sticky
}

// newPipeState sizes the machinery for a window of w in-flight requests.
func newPipeState(conn net.Conn, w int) *pipeState {
	p := &pipeState{
		window: make(chan struct{}, w),
		free:   make(chan chan pipeResp, w),
		stop:   make(chan struct{}),
		done:   make(chan struct{}),
		br:     bufio.NewReaderSize(conn, 64<<10),
		ring:   make([]pipeWaiter, w),
	}
	for i := 0; i < w; i++ {
		p.window <- struct{}{}
		p.free <- make(chan pipeResp, 1)
	}
	return p
}

// newTCPClient negotiates the protocol on a fresh connection. Unless
// pipelining is disabled it sends a hello; a v2 server answers respHello
// and the connection runs pipelined, while an old server answers
// respError (unknown request type) and the same connection falls back to
// the synchronous v1 path — the fallback is negotiated, not accidental.
func newTCPClient(conn net.Conn, cfg DialConfig) (*TCPClient, error) {
	cfg = cfg.withDefaults()
	c := &TCPClient{
		conn:     conn,
		maxFrame: uint32(cfg.MaxFrameSize),
		peerMax:  uint32(cfg.MaxFrameSize),
		timeout:  cfg.RequestTimeout,
	}
	if cfg.DisablePipelining {
		return c, nil
	}

	c.enc.reset(reqHello)
	var body [helloBodySize]byte
	putHello(body[:], protocolV2, c.maxFrame, uint32(cfg.Window))
	c.enc.buf = append(c.enc.buf, body[:]...)
	if _, err := conn.Write(c.enc.frame()); err != nil {
		_ = conn.Close()
		return nil, fmt.Errorf("stream hello write: %w", err)
	}
	msgType, payload, err := readFrame(conn, c.maxFrame)
	if err != nil {
		_ = conn.Close()
		return nil, fmt.Errorf("stream hello read: %w", err)
	}
	switch {
	case msgType == respHello && len(payload) >= helloBodySize:
		version, peerMax, _ := readHelloBody(payload)
		putFrame(payload)
		if peerMax > 0 {
			c.peerMax = peerMax
		}
		if version < protocolV2 {
			return c, nil // server too old to pipeline: stay synchronous
		}
	case msgType == respError:
		// Pre-v2 server: it rejected the hello as an unknown request and
		// is ready for the next synchronous request on this connection.
		putFrame(payload)
		return c, nil
	default:
		putFrame(payload)
		_ = conn.Close()
		return nil, fmt.Errorf("stream hello: unexpected response type %d", msgType)
	}

	c.pipe = newPipeState(conn, cfg.Window)
	c.enc.v2 = true
	go c.readLoop()
	return c, nil
}

// readLoop is the dedicated reader of a pipelined connection: it owns the
// read side, delivering each response frame to the oldest in-flight
// waiter. It exits when the connection dies or Close fires the stop
// channel (Close also closes the conn, so the blocking read returns), and
// fails every parked waiter on the way out so no caller hangs.
func (c *TCPClient) readLoop() {
	p := c.pipe
	defer close(p.done)
	for {
		select {
		case <-p.stop:
			p.fail(ErrClientClosed)
			return
		default:
		}
		msgType, payload, err := readFrame(p.br, c.maxFrame)
		if err != nil {
			select {
			case <-p.stop:
				err = ErrClientClosed
			default:
			}
			p.fail(err)
			return
		}
		if len(payload) < corrSize {
			putFrame(payload)
			p.fail(errors.New("stream: v2 frame missing correlation ID"))
			_ = c.conn.Close()
			return
		}
		corr := binary.BigEndian.Uint32(payload)
		p.mu.Lock()
		if p.head == p.tail {
			p.mu.Unlock()
			putFrame(payload)
			p.fail(errors.New("stream: response with no request in flight"))
			_ = c.conn.Close()
			return
		}
		w := p.ring[p.head%uint32(len(p.ring))]
		p.head++
		p.mu.Unlock()
		if w.corr != corr {
			putFrame(payload)
			w.ch <- pipeResp{err: fmt.Errorf("stream: correlation mismatch: got %d want %d", corr, w.corr)}
			p.fail(errors.New("stream: correlation mismatch"))
			_ = c.conn.Close()
			return
		}
		w.ch <- pipeResp{msgType: msgType, buf: payload[corrSize:]}
	}
}

// fail marks the pipe broken and delivers the error to every parked
// waiter. Idempotent; the first error wins. The waiters are unparked
// under the lock but delivered to after it: each response channel is
// buffered for exactly one outstanding response, so the sends cannot
// block — but keeping them outside the critical section means even a
// misbehaving waiter can only stall fail, never every issuer parked on
// p.mu.
func (p *pipeState) fail(err error) {
	p.mu.Lock()
	if p.err == nil {
		p.err = err
	}
	sticky := p.err
	var failed []pipeWaiter
	for p.head != p.tail {
		failed = append(failed, p.ring[p.head%uint32(len(p.ring))])
		p.head++
	}
	p.mu.Unlock()
	for _, w := range failed {
		w.ch <- pipeResp{err: sticky}
	}
}

// acquire takes a window token and a recycled response channel. It
// refuses immediately once the pipe is stopped or broken.
//
//cad3:noalloc
func (p *pipeState) acquire() (chan pipeResp, error) {
	select {
	case <-p.window:
	case <-p.stop:
		return nil, ErrClientClosed
	}
	p.mu.Lock()
	err := p.err
	p.mu.Unlock()
	if err != nil {
		p.window <- struct{}{}
		return nil, p.brokenErr(err)
	}
	// Guaranteed non-blocking: channels outnumber outstanding tokens.
	ch := <-p.free
	return ch, nil
}

// release recycles the response channel (which must be drained) and
// returns the window token, in that order — so a token holder always
// finds a free channel.
//
//cad3:noalloc
func (p *pipeState) release(ch chan pipeResp) {
	p.free <- ch
	p.window <- struct{}{}
}

// brokenErr wraps a terminal pipe error unless it is already a clean
// close.
func (p *pipeState) brokenErr(err error) error {
	if errors.Is(err, ErrClientClosed) {
		return ErrClientClosed
	}
	return fmt.Errorf("%w: %w", errPipeBroken, err)
}

// enqueue parks the waiter in the FIFO ring and returns the correlation
// ID assigned to it. Must be called with c.mu held (the caller writes the
// frame before unlocking, so ring order equals wire order).
//
//cad3:noalloc
func (p *pipeState) enqueue(ch chan pipeResp) (uint32, error) {
	p.mu.Lock()
	if p.err != nil {
		err := p.err
		p.mu.Unlock()
		return 0, p.brokenErr(err)
	}
	corr := p.next
	p.next++
	p.ring[p.tail%uint32(len(p.ring))] = pipeWaiter{corr: corr, ch: ch}
	p.tail++
	p.mu.Unlock()
	return corr, nil
}

// pipeIssue finishes an issue under c.mu: enqueue the waiter, stamp the
// encoder with the correlation ID (the caller encodes the body after
// this returns), and report the corr. Split from pipeAwait so batch
// senders can keep several frames in flight.
func (c *TCPClient) pipeIssueLocked(ch chan pipeResp, msgType byte) error {
	corr, err := c.pipe.enqueue(ch)
	if err != nil {
		return err
	}
	c.enc.corr = corr
	c.enc.reset(msgType)
	return nil
}

// pipeWrite flushes the encoded frame under c.mu. A write error poisons
// the connection: responses can no longer line up, so the conn is closed
// and the reader fails every waiter (including ours).
func (c *TCPClient) pipeWriteLocked() error {
	if _, err := c.conn.Write(c.enc.frame()); err != nil {
		_ = c.conn.Close()
		return fmt.Errorf("stream write: %w", err)
	}
	return nil
}

// pipeAwait blocks for the response on ch and recycles the channel and
// window token. On timeout the connection is poisoned (a late response
// would desynchronize the ring) and the reader's fail path still delivers
// to ch, keeping the channel clean before it is recycled.
func (c *TCPClient) pipeAwait(ch chan pipeResp) (byte, wireDecoder, error) {
	var r pipeResp
	if c.timeout > 0 {
		timer := time.NewTimer(c.timeout)
		select {
		case r = <-ch:
			timer.Stop()
		case <-timer.C:
			_ = c.conn.Close() // reader fails all waiters, including ours
			r = <-ch
			if r.buf != nil {
				putFrame(r.buf)
			}
			c.pipe.release(ch)
			return 0, wireDecoder{}, fmt.Errorf("stream: request timed out after %v", c.timeout)
		}
	} else {
		r = <-ch
	}
	c.pipe.release(ch)
	if r.err != nil {
		return 0, wireDecoder{}, c.pipe.brokenErr(r.err)
	}
	dec := wireDecoder{buf: r.buf}
	if r.msgType == respError {
		msg := dec.str()
		dec.release()
		return 0, wireDecoder{}, remoteError(msg)
	}
	return r.msgType, dec, nil
}

// pipeCall runs one fully-encoded request/response cycle. encodeLocked
// writes the request body into c.enc (called with c.mu held, after the
// type byte and correlation ID are in place).
func (c *TCPClient) pipeDo(msgType byte, encodeLocked func(enc *wireEncoder)) (byte, wireDecoder, error) {
	p := c.pipe
	ch, err := p.acquire()
	if err != nil {
		return 0, wireDecoder{}, err
	}
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		p.release(ch)
		return 0, wireDecoder{}, ErrClientClosed
	}
	if err := c.pipeIssueLocked(ch, msgType); err != nil {
		c.mu.Unlock()
		p.release(ch)
		return 0, wireDecoder{}, err
	}
	if encodeLocked != nil {
		encodeLocked(&c.enc)
	}
	err = c.pipeWriteLocked()
	c.mu.Unlock()
	if err != nil {
		// Already enqueued: the reader delivers the failure to ch; drain
		// it so the channel recycles clean.
		r := <-ch
		if r.buf != nil {
			putFrame(r.buf)
		}
		p.release(ch)
		return 0, wireDecoder{}, err
	}
	return c.pipeAwait(ch)
}

// producePipe is Produce on a pipelined connection. Explicit body (no
// pipeDo closure): this is the per-record hot path and a capturing
// closure would cost an allocation per send.
//
//cad3:noalloc
func (c *TCPClient) producePipe(topicName string, partition int32, key, value []byte) (int32, int64, error) {
	p := c.pipe
	ch, err := p.acquire()
	if err != nil {
		return 0, 0, err
	}
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		p.release(ch)
		return 0, 0, ErrClientClosed
	}
	if err := c.pipeIssueLocked(ch, reqProduce); err != nil {
		c.mu.Unlock()
		p.release(ch)
		return 0, 0, err
	}
	c.enc.str(topicName)
	c.enc.u32(uint32(partition))
	c.enc.bytes(key)
	c.enc.bytes(value)
	err = c.pipeWriteLocked()
	c.mu.Unlock()
	if err != nil {
		r := <-ch
		if r.buf != nil {
			putFrame(r.buf)
		}
		p.release(ch)
		return 0, 0, err
	}
	msgType, dec, err := c.pipeAwait(ch)
	if err != nil {
		return 0, 0, err
	}
	if msgType != respProduce {
		dec.release()
		return 0, 0, errUnexpectedResponse(msgType)
	}
	part := int32(dec.u32())
	off := int64(dec.u64())
	err = dec.err
	dec.release()
	return part, off, err
}

// createTopicPipe is CreateTopic on a pipelined connection.
func (c *TCPClient) createTopicPipe(name string, partitions int) error {
	_, dec, err := c.pipeDo(reqCreateTopic, func(enc *wireEncoder) {
		enc.str(name)
		enc.u32(uint32(partitions))
	})
	if err != nil {
		return err
	}
	dec.release()
	return nil
}

// fetchPipe is Fetch on a pipelined connection.
func (c *TCPClient) fetchPipe(topicName string, partition int32, offset int64, max int) ([]Message, error) {
	msgType, dec, err := c.pipeDo(reqFetch, func(enc *wireEncoder) {
		enc.str(topicName)
		enc.u32(uint32(partition))
		enc.u64(uint64(offset))
		enc.u32(uint32(max))
	})
	if err != nil {
		return nil, err
	}
	if msgType != respFetch {
		dec.release()
		return nil, errUnexpectedResponse(msgType)
	}
	msgs := dec.messages(topicName)
	err = dec.err
	dec.release()
	return msgs, err
}

// listTopicsPipe is ListTopics on a pipelined connection.
func (c *TCPClient) listTopicsPipe() ([]string, error) {
	_, dec, err := c.pipeDo(reqListTopics, nil)
	if err != nil {
		return nil, err
	}
	n := int(dec.u32())
	if dec.err != nil || n < 0 || n > 1<<20 {
		dec.release()
		return nil, fmt.Errorf("stream: implausible topic count %d", n)
	}
	out := make([]string, 0, n)
	for i := 0; i < n; i++ {
		out = append(out, dec.str())
	}
	err = dec.err
	dec.release()
	return out, err
}

// partitionCountPipe is PartitionCount on a pipelined connection.
func (c *TCPClient) partitionCountPipe(topicName string) (int, error) {
	_, dec, err := c.pipeDo(reqPartitionCount, func(enc *wireEncoder) {
		enc.str(topicName)
	})
	if err != nil {
		return 0, err
	}
	n := int(dec.u32())
	err = dec.err
	dec.release()
	return n, err
}
