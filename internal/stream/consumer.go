package stream

import (
	"fmt"
	"sync"
)

// Consumer pulls messages from every partition of one topic, tracking its
// own per-partition offsets (there are no consumer groups: CAD3's
// consumers — the Spark ingestion loop and the vehicles' warning listeners
// — each read the whole topic). It is safe for concurrent use.
type Consumer struct {
	client Client
	topic  string

	mu         sync.Mutex
	offsets    []int64
	next       int // round-robin partition cursor
	totalBytes int64
	totalMsgs  int64
}

// NewConsumer creates a consumer positioned at the given start offset on
// every partition of the topic (0 = earliest retained).
func NewConsumer(client Client, topicName string, startOffset int64) (*Consumer, error) {
	if client == nil {
		return nil, fmt.Errorf("stream: consumer requires a client")
	}
	n, err := client.PartitionCount(topicName)
	if err != nil {
		return nil, fmt.Errorf("consumer for %q: %w", topicName, err)
	}
	offsets := make([]int64, n)
	for i := range offsets {
		offsets[i] = startOffset
	}
	return &Consumer{client: client, topic: topicName, offsets: offsets}, nil
}

// Poll fetches up to max messages, cycling through partitions round-robin
// and advancing offsets past what it returns. An empty result means no new
// messages were available.
//
// The caller owns the returned messages' Key/Value buffers; once they are
// fully decoded it may hand them back with RecycleMessages (optional — not
// doing so just leaves them to the GC).
func (c *Consumer) Poll(max int) ([]Message, error) {
	return c.PollInto(nil, max)
}

// PollInto is Poll appending into a caller-supplied slice, so a steady
// drain loop can reuse one backing array: msgs = msgs[:0] each round, then
// msgs, err = c.PollInto(msgs, max). Ownership of the messages' payload
// buffers is the same as Poll's.
func (c *Consumer) PollInto(dst []Message, max int) ([]Message, error) {
	if max <= 0 {
		return dst, nil
	}
	c.mu.Lock()
	defer c.mu.Unlock()

	out := dst
	base := len(dst)
	var firstErr error
	n := len(c.offsets)
	for tried := 0; tried < n && len(out)-base < max; tried++ {
		part := int32((c.next + tried) % n)
		//cad3:allow lockdiscipline c.mu must cover the fetch: SwapClient's failover contract (documented there) requires that a swap never interleaves with a poll advancing offsets
		msgs, err := c.client.Fetch(c.topic, part, c.offsets[part], max-(len(out)-base))
		if err != nil {
			// Keep draining the healthy partitions; report the first
			// failure so callers can degrade gracefully.
			if firstErr == nil {
				firstErr = fmt.Errorf("fetch %q/%d: %w", c.topic, part, err)
			}
			continue
		}
		if len(msgs) > 0 {
			c.offsets[part] = msgs[len(msgs)-1].Offset + 1
			for i := range msgs {
				c.totalBytes += int64(msgs[i].WireSize())
			}
			c.totalMsgs += int64(len(msgs))
			out = append(out, msgs...)
		}
	}
	c.next = (c.next + 1) % n
	return out, firstErr
}

// SwapClient rebinds the consumer to a new client — the failover path
// after a broker is replaced. Offsets are preserved: the new broker must
// serve the same topic with at least as many partitions (extra
// partitions start from the earliest offset; fewer is an error, since
// committed offsets would silently vanish). The swap serializes behind
// the consumer mutex, so it never interleaves with a PollInto in flight.
func (c *Consumer) SwapClient(client Client) error {
	if client == nil {
		return fmt.Errorf("stream: consumer requires a client")
	}
	n, err := client.PartitionCount(c.topic)
	if err != nil {
		return fmt.Errorf("swap consumer for %q: %w", c.topic, err)
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if n < len(c.offsets) {
		return fmt.Errorf("stream: swap would shrink %q from %d to %d partitions",
			c.topic, len(c.offsets), n)
	}
	for len(c.offsets) < n {
		c.offsets = append(c.offsets, 0)
	}
	c.client = client
	c.next = 0
	return nil
}

// SeekTo positions every partition offset.
func (c *Consumer) SeekTo(offset int64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	for i := range c.offsets {
		c.offsets[i] = offset
	}
}

// Offsets returns a copy of the per-partition offsets.
func (c *Consumer) Offsets() []int64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make([]int64, len(c.offsets))
	copy(out, c.offsets)
	return out
}

// Received returns the cumulative (messages, wire bytes) consumed.
func (c *Consumer) Received() (int64, int64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.totalMsgs, c.totalBytes
}

// Topic returns the topic the consumer reads.
func (c *Consumer) Topic() string { return c.topic }
