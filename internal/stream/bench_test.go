package stream

import (
	"fmt"
	"testing"
)

func BenchmarkProduce(b *testing.B) {
	broker := NewBroker(BrokerConfig{})
	if err := broker.CreateTopic("t", 3); err != nil {
		b.Fatal(err)
	}
	payload := make([]byte, 200)
	key := []byte("car-42")
	b.ResetTimer()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, _, err := broker.Produce("t", AutoPartition, key, payload); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFetch64(b *testing.B) {
	broker := NewBroker(BrokerConfig{})
	if err := broker.CreateTopic("t", 1); err != nil {
		b.Fatal(err)
	}
	payload := make([]byte, 200)
	for i := 0; i < 1<<14; i++ {
		if _, _, err := broker.Produce("t", 0, nil, payload); err != nil {
			b.Fatal(err)
		}
	}
	b.ResetTimer()
	b.ReportAllocs()
	var off int64
	for i := 0; i < b.N; i++ {
		msgs, err := broker.Fetch("t", 0, off, 64)
		if err != nil {
			b.Fatal(err)
		}
		if len(msgs) == 0 {
			off = 0
			continue
		}
		off = msgs[len(msgs)-1].Offset + 1
	}
}

func BenchmarkWireEncodeDecode(b *testing.B) {
	msgs := make([]Message, 64)
	for i := range msgs {
		msgs[i] = Message{
			Topic: "IN-DATA", Partition: int32(i % 3), Offset: int64(i),
			Key: []byte(fmt.Sprintf("car-%d", i)), Value: make([]byte, 200),
		}
	}
	b.ResetTimer()
	b.ReportAllocs()
	var enc wireEncoder
	for i := 0; i < b.N; i++ {
		enc.reset(respFetch)
		enc.messages(msgs)
		frame := enc.frame()
		dec := wireDecoder{buf: frame[5:]}
		if out := dec.messages("IN-DATA"); len(out) != 64 || dec.err != nil {
			b.Fatalf("decode: %d msgs, err %v", len(out), dec.err)
		}
	}
}

func BenchmarkTCPRoundTrip(b *testing.B) {
	broker := NewBroker(BrokerConfig{})
	s, err := NewServer(broker, "127.0.0.1:0")
	if err != nil {
		b.Fatal(err)
	}
	defer s.Close()
	c, err := Dial(s.Addr())
	if err != nil {
		b.Fatal(err)
	}
	defer c.Close()
	if err := c.CreateTopic("t", 3); err != nil {
		b.Fatal(err)
	}
	payload := make([]byte, 200)
	b.ResetTimer()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, _, err := c.Produce("t", AutoPartition, nil, payload); err != nil {
			b.Fatal(err)
		}
	}
}

// benchWireServer stands up a TCP broker for the throughput benchmarks.
func benchWireServer(b *testing.B) *Server {
	b.Helper()
	broker := NewBroker(BrokerConfig{})
	s, err := NewServer(broker, "127.0.0.1:0")
	if err != nil {
		b.Fatal(err)
	}
	b.Cleanup(func() { s.Close() })
	if err := broker.CreateTopic("t", 3); err != nil {
		b.Fatal(err)
	}
	return s
}

// BenchmarkWireThroughput compares messages/second over a real TCP
// connection across the three wire shapes: the synchronous v1 protocol
// (one round trip per record), the pipelined v2 protocol (window of
// in-flight requests), and batched produce over v2 (many records per
// frame). Payloads are vehicle-telemetry sized (64 B — a CAN/GPS sample)
// so the wire cost, not the broker's payload copy, dominates. ns/op is
// per record; msgs/sec is reported explicitly.
func BenchmarkWireThroughput(b *testing.B) {
	payload := make([]byte, 64)
	key := []byte("car-42")

	b.Run("sync", func(b *testing.B) {
		s := benchWireServer(b)
		c, err := DialCfg(s.Addr(), DialConfig{DisablePipelining: true})
		if err != nil {
			b.Fatal(err)
		}
		defer c.Close()
		b.ResetTimer()
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, _, err := c.Produce("t", AutoPartition, key, payload); err != nil {
				b.Fatal(err)
			}
		}
		b.ReportMetric(float64(b.N)/b.Elapsed().Seconds(), "msgs/sec")
	})

	b.Run("pipelined", func(b *testing.B) {
		s := benchWireServer(b)
		c, err := Dial(s.Addr())
		if err != nil {
			b.Fatal(err)
		}
		defer c.Close()
		if !c.Pipelined() {
			b.Fatal("expected a pipelined connection")
		}
		// Keep the window full from a fixed set of senders: each goroutine
		// is a synchronous caller, the connection pipelines them.
		const senders = 16
		b.ResetTimer()
		b.ReportAllocs()
		b.SetParallelism(senders)
		b.RunParallel(func(pb *testing.PB) {
			for pb.Next() {
				if _, _, err := c.Produce("t", AutoPartition, key, payload); err != nil {
					b.Fatal(err)
				}
			}
		})
		b.ReportMetric(float64(b.N)/b.Elapsed().Seconds(), "msgs/sec")
	})

	b.Run("batched", func(b *testing.B) {
		s := benchWireServer(b)
		c, err := Dial(s.Addr())
		if err != nil {
			b.Fatal(err)
		}
		defer c.Close()
		const batch, window = 128, 4
		recs := make([]BatchRecord, batch)
		for i := range recs {
			recs[i] = BatchRecord{Key: key, Value: payload}
		}
		res := make([]BatchResult, batch)
		b.ResetTimer()
		b.ReportAllocs()
		// b.N counts records; keep `window` batches in flight so the wire
		// never drains.
		var pending [window]PendingBatch
		inFlight := 0
		sent := 0
		for sent < b.N {
			if inFlight == window {
				if err := pending[0].Await(res); err != nil {
					b.Fatal(err)
				}
				copy(pending[:], pending[1:])
				inFlight--
			}
			pb, err := c.ProduceBatchIssue("t", AutoPartition, recs)
			if err != nil {
				b.Fatal(err)
			}
			pending[inFlight] = pb
			inFlight++
			sent += batch
		}
		for i := 0; i < inFlight; i++ {
			if err := pending[i].Await(res); err != nil {
				b.Fatal(err)
			}
		}
		b.ReportMetric(float64(sent)/b.Elapsed().Seconds(), "msgs/sec")
	})
}

// BenchmarkWireBatchEncode measures the client-side cost of assembling a
// 64-record batch frame (header + vectored iov), independent of the
// network: this is the //cad3:noalloc hot path.
func BenchmarkWireBatchEncode(b *testing.B) {
	recs := make([]BatchRecord, 64)
	payload := make([]byte, 200)
	for i := range recs {
		recs[i] = BatchRecord{Key: []byte("car-42"), Value: payload}
	}
	c := &TCPClient{peerMax: DefaultMaxFrameSize}
	b.ResetTimer()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		total := batchFrameSize("t", recs)
		c.encodeBatchLocked("t", AutoPartition, recs, total)
	}
}
