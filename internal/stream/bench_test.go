package stream

import (
	"fmt"
	"testing"
)

func BenchmarkProduce(b *testing.B) {
	broker := NewBroker(BrokerConfig{})
	if err := broker.CreateTopic("t", 3); err != nil {
		b.Fatal(err)
	}
	payload := make([]byte, 200)
	key := []byte("car-42")
	b.ResetTimer()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, _, err := broker.Produce("t", AutoPartition, key, payload); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFetch64(b *testing.B) {
	broker := NewBroker(BrokerConfig{})
	if err := broker.CreateTopic("t", 1); err != nil {
		b.Fatal(err)
	}
	payload := make([]byte, 200)
	for i := 0; i < 1<<14; i++ {
		if _, _, err := broker.Produce("t", 0, nil, payload); err != nil {
			b.Fatal(err)
		}
	}
	b.ResetTimer()
	b.ReportAllocs()
	var off int64
	for i := 0; i < b.N; i++ {
		msgs, err := broker.Fetch("t", 0, off, 64)
		if err != nil {
			b.Fatal(err)
		}
		if len(msgs) == 0 {
			off = 0
			continue
		}
		off = msgs[len(msgs)-1].Offset + 1
	}
}

func BenchmarkWireEncodeDecode(b *testing.B) {
	msgs := make([]Message, 64)
	for i := range msgs {
		msgs[i] = Message{
			Topic: "IN-DATA", Partition: int32(i % 3), Offset: int64(i),
			Key: []byte(fmt.Sprintf("car-%d", i)), Value: make([]byte, 200),
		}
	}
	b.ResetTimer()
	b.ReportAllocs()
	var enc wireEncoder
	for i := 0; i < b.N; i++ {
		enc.reset(respFetch)
		enc.messages(msgs)
		frame := enc.frame()
		dec := wireDecoder{buf: frame[5:]}
		if out := dec.messages(); len(out) != 64 || dec.err != nil {
			b.Fatalf("decode: %d msgs, err %v", len(out), dec.err)
		}
	}
}

func BenchmarkTCPRoundTrip(b *testing.B) {
	broker := NewBroker(BrokerConfig{})
	s, err := NewServer(broker, "127.0.0.1:0")
	if err != nil {
		b.Fatal(err)
	}
	defer s.Close()
	c, err := Dial(s.Addr())
	if err != nil {
		b.Fatal(err)
	}
	defer c.Close()
	if err := c.CreateTopic("t", 3); err != nil {
		b.Fatal(err)
	}
	payload := make([]byte, 200)
	b.ResetTimer()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, _, err := c.Produce("t", AutoPartition, nil, payload); err != nil {
			b.Fatal(err)
		}
	}
}
