package stream

import (
	"errors"
	"fmt"
	"hash/fnv"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"cad3/internal/flow"
	"cad3/internal/obsv"
)

// Broker errors that callers match with errors.Is.
var (
	ErrTopicExists    = errors.New("stream: topic already exists")
	ErrUnknownTopic   = errors.New("stream: unknown topic")
	ErrBadPartition   = errors.New("stream: partition out of range")
	ErrBrokerClosed   = errors.New("stream: broker closed")
	ErrPartitionDown  = errors.New("stream: partition unavailable")
	ErrValueTooLarge  = errors.New("stream: value exceeds max message size")
	ErrEmptyTopicName = errors.New("stream: empty topic name")
)

// MaxMessageSize bounds a single message value (1 MiB, as Kafka's default).
const MaxMessageSize = 1 << 20

// AutoPartition selects key-hash (or round-robin for nil keys)
// partitioning on Produce.
const AutoPartition int32 = -1

// BrokerConfig tunes a broker.
type BrokerConfig struct {
	// MaxRetainedPerPartition bounds per-partition log memory. Values
	// <= 0 select the default (65536 messages).
	MaxRetainedPerPartition int
	// RetentionAge additionally drops messages older than this (0 keeps
	// them until the size bound evicts them), like Kafka's time-based
	// retention.
	RetentionAge time.Duration
	// Now injects the clock (virtual time in simulations). Nil selects
	// time.Now.
	Now func() time.Time
	// Metrics, when set, receives broker throughput counters
	// (broker.produced/fetched messages and bytes) and, when flow control
	// is on, the flow.<topic>.* admission counters. Trace-context arrival
	// stamping is independent of this field — traced payloads are always
	// stamped.
	Metrics *obsv.Registry
	// FlowCapacity bounds each partition's un-drained backlog (messages):
	// produce consumes a credit, fetch (or retention eviction) returns it,
	// and a partition over its bound answers telemetry with
	// flow.ErrBackpressure per FlowPolicy. Values <= 0 disable admission
	// control (the legacy unbounded hand-off).
	FlowCapacity int
	// FlowPolicy decides admission when FlowCapacity > 0. Nil selects
	// flow.PriorityShed{}: telemetry sheds under pressure, warnings and
	// summaries never do.
	FlowPolicy flow.Policy
	// FlowRetryHint is the base retry-after hint refused producers get.
	// Values <= 0 select flow.DefaultRetryHint.
	FlowRetryHint time.Duration
}

// ClassForTopic maps the CAD3 topics onto flow priority classes: IN-DATA
// telemetry is sheddable, OUT-DATA warnings and CO-DATA summaries are not.
func ClassForTopic(name string) flow.Class {
	switch name {
	case TopicInData:
		return flow.ClassTelemetry
	case TopicOutData:
		return flow.ClassWarning
	case TopicCoData:
		return flow.ClassSummary
	default:
		return flow.ClassOther
	}
}

// Broker is an in-memory, thread-safe event broker: the per-RSU Kafka
// substitute. One broker instance backs one RSU.
type Broker struct {
	cfg    BrokerConfig
	mu     sync.RWMutex
	topics map[string]*topic
	closed bool
	rr     atomic.Uint64 // round-robin counter for nil-key produce
	// downPartitions supports failure injection in tests: a (topic,
	// partition) marked down rejects produce and fetch.
	downMu sync.RWMutex
	down   map[string]map[int32]bool

	// Replication role state per (topic, partition). Absent entries lead
	// at epoch 0, so a broker nobody replicates stays oblivious. See
	// replication.go.
	roleMu sync.RWMutex
	roles  map[string]map[int32]partRole

	// Counters for bandwidth accounting.
	bytesIn  atomic.Int64
	bytesOut atomic.Int64

	// Cached registry handles (nil when cfg.Metrics is nil) so the
	// produce/fetch paths never take the registry lookup lock.
	mProducedMsgs, mProducedBytes *obsv.Counter
	mFetchedMsgs, mFetchedBytes   *obsv.Counter
	mReplRecords, mReplFenced     *obsv.Counter
}

// NewBroker creates an empty broker.
func NewBroker(cfg BrokerConfig) *Broker {
	b := &Broker{
		cfg:    cfg,
		topics: make(map[string]*topic),
		down:   make(map[string]map[int32]bool),
		roles:  make(map[string]map[int32]partRole),
	}
	if cfg.Metrics != nil {
		b.mProducedMsgs = cfg.Metrics.Counter("broker.produced.msgs")
		b.mProducedBytes = cfg.Metrics.Counter("broker.produced.bytes")
		b.mFetchedMsgs = cfg.Metrics.Counter("broker.fetched.msgs")
		b.mFetchedBytes = cfg.Metrics.Counter("broker.fetched.bytes")
		b.mReplRecords = cfg.Metrics.Counter("repl.records")
		b.mReplFenced = cfg.Metrics.Counter("repl.fenced")
	}
	return b
}

// now returns the broker clock for trace-arrival stamping.
func (b *Broker) now() time.Time {
	if b.cfg.Now != nil {
		return b.cfg.Now()
	}
	return time.Now()
}

// CreateTopic creates a topic with the given partition count. Creating an
// existing topic with the same partition count is a no-op; with a
// different count it returns ErrTopicExists.
func (b *Broker) CreateTopic(name string, partitions int) error {
	if name == "" {
		return ErrEmptyTopicName
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.closed {
		return ErrBrokerClosed
	}
	if existing, ok := b.topics[name]; ok {
		if len(existing.partitions) == partitions {
			return nil
		}
		return fmt.Errorf("%w: %q with %d partitions", ErrTopicExists, name, len(existing.partitions))
	}
	t, err := newTopic(name, partitions, b.cfg.MaxRetainedPerPartition, b.cfg.RetentionAge, b.cfg.Now)
	if err != nil {
		return err
	}
	if b.cfg.FlowCapacity > 0 {
		// One admission gate per partition; counters are shared per topic
		// (same registry names resolve to the same handles), occupancy is
		// re-registered below as the partition sum.
		for _, pl := range t.partitions {
			pl.gate = flow.NewGate(flow.GateConfig{
				Capacity:  b.cfg.FlowCapacity,
				Policy:    b.cfg.FlowPolicy,
				RetryHint: b.cfg.FlowRetryHint,
				Metrics:   b.cfg.Metrics,
				Name:      "flow." + name,
			})
		}
		if b.cfg.Metrics != nil {
			parts := t.partitions
			b.cfg.Metrics.RegisterGaugeFunc("flow."+name+".occupancy", func() int64 {
				var total int64
				for _, pl := range parts {
					total += pl.gate.Occupancy()
				}
				return total
			})
		}
	}
	b.topics[name] = t
	return nil
}

// FlowEnabled reports whether the broker admits under flow control.
func (b *Broker) FlowEnabled() bool { return b.cfg.FlowCapacity > 0 }

// FlowStats sums the named topic's per-partition gate statistics. A
// zero-value Stats is returned for unknown topics or a flow-disabled
// broker.
func (b *Broker) FlowStats(topicName string) flow.Stats {
	b.mu.RLock()
	t, ok := b.topics[topicName]
	b.mu.RUnlock()
	if !ok {
		return flow.Stats{}
	}
	var total flow.Stats
	for _, pl := range t.partitions {
		if pl.gate == nil {
			continue
		}
		s := pl.gate.Stats()
		total.Admitted += s.Admitted
		total.Rejected += s.Rejected
		total.Occupancy += s.Occupancy
		total.Capacity += s.Capacity
		for c := range s.Shed {
			total.Shed[c] += s.Shed[c]
		}
	}
	return total
}

// Topics returns the topic names, sorted.
func (b *Broker) Topics() []string {
	b.mu.RLock()
	defer b.mu.RUnlock()
	out := make([]string, 0, len(b.topics))
	for name := range b.topics {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}

// PartitionCount returns the number of partitions of a topic. A closed
// broker refuses metadata requests too (heartbeats must see it as dead).
func (b *Broker) PartitionCount(name string) (int, error) {
	b.mu.RLock()
	defer b.mu.RUnlock()
	if b.closed {
		return 0, ErrBrokerClosed
	}
	t, ok := b.topics[name]
	if !ok {
		return 0, fmt.Errorf("%w: %q", ErrUnknownTopic, name)
	}
	return len(t.partitions), nil
}

// Produce appends a message. partition AutoPartition selects a partition
// by FNV key hash, or round-robin when key is nil. It returns the chosen
// partition and the assigned offset.
func (b *Broker) Produce(topicName string, partition int32, key, value []byte) (int32, int64, error) {
	if len(value) > MaxMessageSize {
		return 0, 0, ErrValueTooLarge
	}
	b.mu.RLock()
	if b.closed {
		b.mu.RUnlock()
		return 0, 0, ErrBrokerClosed
	}
	t, ok := b.topics[topicName]
	b.mu.RUnlock()
	if !ok {
		return 0, 0, fmt.Errorf("%w: %q", ErrUnknownTopic, topicName)
	}

	if partition == AutoPartition {
		partition = b.pickPartition(topicName, key, len(t.partitions))
	}
	if partition < 0 || int(partition) >= len(t.partitions) {
		return 0, 0, fmt.Errorf("%w: %q/%d", ErrBadPartition, topicName, partition)
	}
	if b.partitionDown(topicName, partition) {
		return 0, 0, fmt.Errorf("%w: %q/%d", ErrPartitionDown, topicName, partition)
	}
	// Follower partitions refuse produces with the current leader hint;
	// only replication (ReplicaAppend) may write them.
	if err := b.leaderCheck(topicName, partition); err != nil {
		return 0, 0, err
	}

	// Admission control: a flow-controlled partition takes a credit or
	// refuses. The refusal returns the gate's preallocated backpressure
	// error untouched — no wrapping, no allocation — so senders can match
	// flow.ErrBackpressure and read the retry-after hint.
	if gate := t.partitions[partition].gate; gate != nil {
		if err := gate.Admit(ClassForTopic(topicName)); err != nil {
			return 0, 0, err
		}
	}

	// The broker owns its copy of the payload (pooled — recycled when
	// retention evicts it), so the producer may recycle its buffer as
	// soon as Produce returns.
	msg := pooledCloneMessage(Message{Topic: topicName, Partition: partition, Key: key, Value: value})
	// Log-append-time trace stamping (like Kafka's LogAppendTime): a
	// traced telemetry payload gets its StageArrive timestamp written in
	// place into the broker's own copy, ending the Tx component of the
	// paper's latency decomposition. Untraced and JSON payloads are left
	// untouched.
	obsv.StampPayload(msg.Value, obsv.StageArrive, b.now())
	offset := t.partitions[partition].append(msg)
	b.bytesIn.Add(int64(msg.WireSize()))
	if b.mProducedMsgs != nil {
		b.mProducedMsgs.Inc()
		b.mProducedBytes.Add(int64(msg.WireSize()))
	}
	return partition, offset, nil
}

// ProduceBatch appends a batch of records in one pass, reporting each
// record's outcome (partition, offset, or refusal) to out in record
// order. It amortizes the per-record costs of Produce across the batch:
// one topic lookup, one clock read, and — for runs of consecutive
// records landing on the same partition — one partition-lock acquisition
// per run instead of per record. Admission control stays per record:
// each record takes its own flow credit or gets its own backpressure
// refusal, exactly as if produced individually.
//
// Only whole-batch failures (closed broker, unknown topic) are returned
// as an error; everything else is per record.
func (b *Broker) ProduceBatch(topicName string, partition int32, recs []BatchRecord, out func(i int, part int32, off int64, err error)) error {
	b.mu.RLock()
	if b.closed {
		b.mu.RUnlock()
		return ErrBrokerClosed
	}
	t, ok := b.topics[topicName]
	b.mu.RUnlock()
	if !ok {
		return fmt.Errorf("%w: %q", ErrUnknownTopic, topicName)
	}
	now := b.now()
	class := ClassForTopic(topicName)

	// Accepted records accumulate into runs of one destination partition;
	// a partition switch or a refused record flushes the pending run.
	run := make([]Message, 0, len(recs))
	runStart := 0
	runPart := int32(-1)
	var runBytes int64
	flush := func() {
		if len(run) == 0 {
			return
		}
		base := t.partitions[runPart].appendBatch(run, now)
		for k := range run {
			out(runStart+k, runPart, base+int64(k), nil)
		}
		b.bytesIn.Add(runBytes)
		if b.mProducedMsgs != nil {
			b.mProducedMsgs.Add(int64(len(run)))
			b.mProducedBytes.Add(runBytes)
		}
		run = run[:0]
		runBytes = 0
	}

	for i := range recs {
		key, value := recs[i].Key, recs[i].Value
		if len(value) > MaxMessageSize {
			flush()
			out(i, 0, 0, ErrValueTooLarge)
			continue
		}
		part := partition
		if part == AutoPartition {
			part = b.pickPartition(topicName, key, len(t.partitions))
		}
		if part < 0 || int(part) >= len(t.partitions) {
			flush()
			out(i, 0, 0, fmt.Errorf("%w: %q/%d", ErrBadPartition, topicName, part))
			continue
		}
		if b.partitionDown(topicName, part) {
			flush()
			out(i, 0, 0, fmt.Errorf("%w: %q/%d", ErrPartitionDown, topicName, part))
			continue
		}
		if lerr := b.leaderCheck(topicName, part); lerr != nil {
			flush()
			out(i, 0, 0, lerr)
			continue
		}
		if gate := t.partitions[part].gate; gate != nil {
			if err := gate.Admit(class); err != nil {
				flush()
				out(i, 0, 0, err)
				continue
			}
		}
		if part != runPart {
			flush()
			runPart = part
		}
		if len(run) == 0 {
			runStart = i
		}
		msg := pooledCloneMessage(Message{Topic: topicName, Partition: part, Key: key, Value: value})
		obsv.StampPayload(msg.Value, obsv.StageArrive, now)
		runBytes += int64(msg.WireSize())
		run = append(run, msg)
	}
	flush()
	return nil
}

// Fetch reads up to max messages from a partition starting at offset.
func (b *Broker) Fetch(topicName string, partition int32, offset int64, max int) ([]Message, error) {
	b.mu.RLock()
	if b.closed {
		b.mu.RUnlock()
		return nil, ErrBrokerClosed
	}
	t, ok := b.topics[topicName]
	b.mu.RUnlock()
	if !ok {
		return nil, fmt.Errorf("%w: %q", ErrUnknownTopic, topicName)
	}
	if partition < 0 || int(partition) >= len(t.partitions) {
		return nil, fmt.Errorf("%w: %q/%d", ErrBadPartition, topicName, partition)
	}
	if b.partitionDown(topicName, partition) {
		return nil, fmt.Errorf("%w: %q/%d", ErrPartitionDown, topicName, partition)
	}
	msgs := t.partitions[partition].read(offset, max)
	var bytes int64
	for i := range msgs {
		bytes += int64(msgs[i].WireSize())
	}
	b.bytesOut.Add(bytes)
	if b.mFetchedMsgs != nil {
		b.mFetchedMsgs.Add(int64(len(msgs)))
		b.mFetchedBytes.Add(bytes)
	}
	return msgs, nil
}

// HighWaterMark returns the next offset to be assigned in a partition.
func (b *Broker) HighWaterMark(topicName string, partition int32) (int64, error) {
	b.mu.RLock()
	t, ok := b.topics[topicName]
	b.mu.RUnlock()
	if !ok {
		return 0, fmt.Errorf("%w: %q", ErrUnknownTopic, topicName)
	}
	if partition < 0 || int(partition) >= len(t.partitions) {
		return 0, fmt.Errorf("%w: %q/%d", ErrBadPartition, topicName, partition)
	}
	return t.partitions[partition].highWaterMark(), nil
}

// SetPartitionDown marks a partition available or unavailable — the
// failure-injection hook used by resilience tests.
func (b *Broker) SetPartitionDown(topicName string, partition int32, down bool) {
	b.downMu.Lock()
	defer b.downMu.Unlock()
	m, ok := b.down[topicName]
	if !ok {
		m = make(map[int32]bool)
		b.down[topicName] = m
	}
	m[partition] = down
}

func (b *Broker) partitionDown(topicName string, partition int32) bool {
	b.downMu.RLock()
	defer b.downMu.RUnlock()
	return b.down[topicName][partition]
}

// BytesIn returns the cumulative produced bytes (wire-size accounted).
func (b *Broker) BytesIn() int64 { return b.bytesIn.Load() }

// BytesOut returns the cumulative fetched bytes.
func (b *Broker) BytesOut() int64 { return b.bytesOut.Load() }

// Close marks the broker closed; subsequent produce/fetch fail.
func (b *Broker) Close() error {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.closed = true
	return nil
}

// pickPartition selects a partition for AutoPartition produces: FNV key
// hash for keyed messages (affinity beats availability — a down partition
// still errors, preserving ordering-by-key), round-robin for nil keys. The
// nil-key rotor skips partitions marked down so load spreads over the
// healthy remainder; only when every partition is down does it fall
// through to the rotor's raw pick (and Produce surfaces ErrPartitionDown).
func (b *Broker) pickPartition(topicName string, key []byte, n int) int32 {
	if n == 1 {
		return 0
	}
	if key == nil {
		start := b.rr.Add(1)
		for i := 0; i < n; i++ {
			p := int32((start + uint64(i)) % uint64(n))
			if !b.partitionDown(topicName, p) {
				return p
			}
		}
		return int32(start % uint64(n))
	}
	h := fnv.New32a()
	_, _ = h.Write(key)
	return int32(h.Sum32() % uint32(n))
}
