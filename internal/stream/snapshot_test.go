package stream

import (
	"bytes"
	"errors"
	"fmt"
	"testing"
)

func populatedBroker(t *testing.T, msgs int) *Broker {
	t.Helper()
	b := NewBroker(BrokerConfig{})
	if err := b.CreateTopic("t", 2); err != nil {
		t.Fatal(err)
	}
	if err := b.CreateTopic("u", 1); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < msgs; i++ {
		key := []byte(fmt.Sprintf("k%d", i))
		if _, _, err := b.Produce("t", int32(i%2), key, []byte(fmt.Sprintf("v%d", i))); err != nil {
			t.Fatal(err)
		}
	}
	if _, _, err := b.Produce("u", 0, nil, []byte("solo")); err != nil {
		t.Fatal(err)
	}
	return b
}

func TestBrokerSnapshotRoundTrip(t *testing.T) {
	b := populatedBroker(t, 10)
	snap := b.Snapshot()

	// Serialize through the JSON layer, as a disk checkpoint would.
	var buf bytes.Buffer
	if err := WriteSnapshot(&buf, snap); err != nil {
		t.Fatal(err)
	}
	loaded, err := ReadSnapshot(&buf)
	if err != nil {
		t.Fatal(err)
	}

	restored, err := RestoreBroker(BrokerConfig{}, loaded)
	if err != nil {
		t.Fatal(err)
	}
	for _, topic := range []string{"t", "u"} {
		wantParts, _ := b.PartitionCount(topic)
		gotParts, err := restored.PartitionCount(topic)
		if err != nil || gotParts != wantParts {
			t.Fatalf("topic %q partitions = %d, %v; want %d", topic, gotParts, err, wantParts)
		}
		for p := 0; p < wantParts; p++ {
			wantHWM, _ := b.HighWaterMark(topic, int32(p))
			gotHWM, _ := restored.HighWaterMark(topic, int32(p))
			if gotHWM != wantHWM {
				t.Errorf("%q/%d HWM = %d, want %d", topic, p, gotHWM, wantHWM)
			}
			want, _ := b.Fetch(topic, int32(p), 0, 100)
			got, _ := restored.Fetch(topic, int32(p), 0, 100)
			if len(got) != len(want) {
				t.Fatalf("%q/%d has %d messages, want %d", topic, p, len(got), len(want))
			}
			for i := range want {
				if !bytes.Equal(got[i].Value, want[i].Value) || !bytes.Equal(got[i].Key, want[i].Key) {
					t.Errorf("%q/%d message %d differs", topic, p, i)
				}
				if got[i].Offset != want[i].Offset {
					t.Errorf("%q/%d message %d offset = %d, want %d", topic, p, i, got[i].Offset, want[i].Offset)
				}
			}
		}
	}

	// The restored broker keeps working: appends continue past the
	// snapshotted high watermark.
	wantHWM, _ := b.HighWaterMark("u", 0)
	if _, off, err := restored.Produce("u", 0, nil, []byte("post-restore")); err != nil || off != wantHWM {
		t.Errorf("post-restore produce offset = %d, %v; want %d", off, err, wantHWM)
	}
}

func TestBrokerSnapshotPreservesTruncatedBase(t *testing.T) {
	b := NewBroker(BrokerConfig{MaxRetainedPerPartition: 8})
	if err := b.CreateTopic("t", 1); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 20; i++ {
		if _, _, err := b.Produce("t", 0, nil, []byte{byte(i)}); err != nil {
			t.Fatal(err)
		}
	}
	snap := b.Snapshot()
	restored, err := RestoreBroker(BrokerConfig{MaxRetainedPerPartition: 8}, snap)
	if err != nil {
		t.Fatal(err)
	}
	// Reading from offset 0 must resume at the truncated base, exactly
	// like the original broker.
	want, _ := b.Fetch("t", 0, 0, 100)
	got, _ := restored.Fetch("t", 0, 0, 100)
	if len(got) != len(want) || got[0].Offset != want[0].Offset {
		t.Errorf("restored log: %d msgs from offset %d; want %d from %d",
			len(got), got[0].Offset, len(want), want[0].Offset)
	}
}

func TestRestoreBrokerRejectsBadSnapshots(t *testing.T) {
	if _, err := RestoreBroker(BrokerConfig{}, nil); err == nil {
		t.Error("nil snapshot accepted")
	}
	if _, err := RestoreBroker(BrokerConfig{}, &BrokerSnapshot{Version: 99}); err == nil {
		t.Error("future version accepted")
	}
}

func TestGroupSnapshotRestore(t *testing.T) {
	b := populatedBroker(t, 10)
	client := NewInProcClient(b)
	g, err := NewGroup(client, "t", 0)
	if err != nil {
		t.Fatal(err)
	}
	m, err := g.Join("w1")
	if err != nil {
		t.Fatal(err)
	}
	first, err := m.Poll(4)
	if err != nil || len(first) != 4 {
		t.Fatalf("poll = %d msgs, %v", len(first), err)
	}
	snap := g.Snapshot()

	// Crash: rebuild broker from snapshot, rebuild group from snapshot;
	// the restored member resumes past what the old one committed.
	restoredBroker, err := RestoreBroker(BrokerConfig{}, b.Snapshot())
	if err != nil {
		t.Fatal(err)
	}
	g2, err := RestoreGroup(NewInProcClient(restoredBroker), snap)
	if err != nil {
		t.Fatal(err)
	}
	if g2.Generation() != g.Generation() {
		t.Errorf("generation = %d, want %d", g2.Generation(), g.Generation())
	}
	m2, err := g2.Member("w1")
	if err != nil {
		t.Fatal(err)
	}
	rest, err := m2.Poll(100)
	if err != nil {
		t.Fatal(err)
	}
	seen := make(map[int64]bool)
	for _, msg := range first {
		seen[msg.Offset*10+int64(msg.Partition)] = true
	}
	for _, msg := range rest {
		if seen[msg.Offset*10+int64(msg.Partition)] {
			t.Errorf("message %d/%d delivered twice across restart", msg.Partition, msg.Offset)
		}
	}
	if len(first)+len(rest) != 10 {
		t.Errorf("delivered %d total, want 10", len(first)+len(rest))
	}

	if _, err := g2.Member("ghost"); !errors.Is(err, ErrUnknownMember) {
		t.Errorf("Member(ghost) err = %v, want ErrUnknownMember", err)
	}
}

func TestGroupRestoreRejectsPartitionMismatch(t *testing.T) {
	b := populatedBroker(t, 2)
	client := NewInProcClient(b)
	_, err := RestoreGroup(client, GroupSnapshot{Topic: "t", Offsets: []int64{1, 2, 3}})
	if err == nil {
		t.Error("offset/partition mismatch accepted")
	}
}

func TestConsumerSetOffsets(t *testing.T) {
	b := populatedBroker(t, 6)
	c, err := NewConsumer(NewInProcClient(b), "t", 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.Poll(100); err != nil {
		t.Fatal(err)
	}
	saved := c.Offsets()

	c2, err := NewConsumer(NewInProcClient(b), "t", 0)
	if err != nil {
		t.Fatal(err)
	}
	if err := c2.SetOffsets(saved); err != nil {
		t.Fatal(err)
	}
	msgs, err := c2.Poll(100)
	if err != nil || len(msgs) != 0 {
		t.Errorf("restored consumer re-read %d messages, want 0 (err %v)", len(msgs), err)
	}
	if err := c2.SetOffsets([]int64{0}); err == nil {
		t.Error("length mismatch accepted")
	}
}
