package stream

// SummaryRouter is the cross-shard CO-DATA path of the sharded city
// driver: when a vehicle's journey crosses a shard boundary, the source
// shard forwards the vehicle's prediction summary to the destination
// shard's broker so collaborative detection survives the crossing. The
// router owns one registered Client per destination shard — any Client
// works, including the pooled v2 wire clients (PoolClient), so shards
// can live in other processes — and drains per-destination FIFO queues
// with at-least-once delivery: an entry that fails to produce stays at
// the head of its queue and is retried on the next flush. Exactly-once
// is the receiver's job (the city driver dedups on the entry key), the
// same split the rest of the pipeline uses.
//
// Flushing is explicit (Flush, typically scheduled on the virtual
// clock) or periodic (Run/Stop, a wall-clock goroutine with the stop/
// done lifecycle the repo's goroutine-hygiene analyzer expects).

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"cad3/internal/obsv"
)

// ErrUnknownDest reports a Forward to a destination no Register named.
var ErrUnknownDest = errors.New("stream: unknown router destination")

// RouterConfig configures a SummaryRouter.
type RouterConfig struct {
	// Topic is the destination topic; empty selects TopicCoData.
	Topic string
	// MaxQueue bounds each destination's outstanding queue; a Forward
	// past the bound fails rather than grow without limit. <= 0 selects
	// 65536 entries.
	MaxQueue int
	// Metrics, when set, receives the shard.router.* family.
	Metrics *obsv.Registry
}

// routerDest is one destination shard's client and FIFO backlog.
type routerDest struct {
	client Client
	queue  []routedEntry
}

// routedEntry is one queued summary.
type routedEntry struct {
	key, value []byte
}

// SummaryRouter forwards summaries between shard brokers.
type SummaryRouter struct {
	cfg RouterConfig

	mu    sync.Mutex
	dests map[string]*routerDest
	names []string // sorted registration order for deterministic flushes

	// flushing serializes flush rounds without a mutex: r.mu must stay
	// free while Flush produces to destination brokers, or every
	// Forward caller (and the shard.router.pending gauge) stalls for
	// the full network round trip. A Flush that finds a round already
	// in flight returns immediately instead of piling up behind it.
	flushing atomic.Bool

	stop chan struct{}
	done chan struct{}

	mForwards, mSent, mRetries, mDropped *obsv.Counter
}

// NewSummaryRouter builds an empty router.
func NewSummaryRouter(cfg RouterConfig) *SummaryRouter {
	if cfg.Topic == "" {
		cfg.Topic = TopicCoData
	}
	if cfg.MaxQueue <= 0 {
		cfg.MaxQueue = 65536
	}
	r := &SummaryRouter{cfg: cfg, dests: make(map[string]*routerDest)}
	if cfg.Metrics != nil {
		r.mForwards = cfg.Metrics.Counter("shard.router.forwards")
		r.mSent = cfg.Metrics.Counter("shard.router.sent")
		r.mRetries = cfg.Metrics.Counter("shard.router.retries")
		r.mDropped = cfg.Metrics.Counter("shard.router.dropped")
		cfg.Metrics.RegisterGaugeFunc("shard.router.pending", func() int64 {
			return int64(r.Pending())
		})
	}
	return r
}

// Register names a destination shard and the client that reaches its
// broker. Re-registering a name swaps the client (shard failover) and
// keeps the queued backlog.
func (r *SummaryRouter) Register(dest string, client Client) error {
	if dest == "" || client == nil {
		return fmt.Errorf("stream: router destination needs a name and a client")
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if d, ok := r.dests[dest]; ok {
		d.client = client
		return nil
	}
	r.dests[dest] = &routerDest{client: client}
	// Insertion sort keeps names ordered without re-sorting on Flush.
	i := len(r.names)
	for i > 0 && r.names[i-1] > dest {
		i--
	}
	r.names = append(r.names, "")
	copy(r.names[i+1:], r.names[i:])
	r.names[i] = dest
	return nil
}

// Forward enqueues one summary for a destination shard. The key and
// value are copied — callers are free to reuse their buffers.
func (r *SummaryRouter) Forward(dest string, key, value []byte) error {
	r.mu.Lock()
	defer r.mu.Unlock()
	d, ok := r.dests[dest]
	if !ok {
		return fmt.Errorf("%w: %q", ErrUnknownDest, dest)
	}
	if len(d.queue) >= r.cfg.MaxQueue {
		if r.mDropped != nil {
			r.mDropped.Inc()
		}
		return fmt.Errorf("stream: router queue for %q full (%d entries)", dest, len(d.queue))
	}
	e := routedEntry{}
	if key != nil {
		e.key = append([]byte(nil), key...)
	}
	e.value = append([]byte(nil), value...)
	d.queue = append(d.queue, e)
	if r.mForwards != nil {
		r.mForwards.Inc()
	}
	return nil
}

// Flush drains every destination queue in name order, preserving each
// queue's FIFO order. A produce failure leaves the failed entry (and
// everything behind it) queued for the next flush, so delivery is
// at-least-once across transient broker outages — e.g. a destination
// shard's leaderless window between a leader kill and the next
// election. Returns the number of entries delivered and the last error.
// A concurrent Flush (periodic flusher racing an explicit caller)
// returns (0, nil) immediately rather than queueing behind the round in
// flight.
func (r *SummaryRouter) Flush() (sent int, err error) {
	if !r.flushing.CompareAndSwap(false, true) {
		return 0, nil
	}
	defer r.flushing.Store(false)

	// Snapshot each backlog under the lock, produce with the lock
	// released, then reconcile. Producing under r.mu held Forward and
	// the pending gauge hostage for the full broker round trip.
	type batch struct {
		name    string
		client  Client
		entries []routedEntry
	}
	r.mu.Lock()
	batches := make([]batch, 0, len(r.names))
	for _, name := range r.names {
		d := r.dests[name]
		if len(d.queue) == 0 {
			continue
		}
		batches = append(batches, batch{
			name:    name,
			client:  d.client,
			entries: append([]routedEntry(nil), d.queue...),
		})
	}
	r.mu.Unlock()

	for _, b := range batches {
		i := 0
		for ; i < len(b.entries); i++ {
			e := b.entries[i]
			if _, _, perr := b.client.Produce(r.cfg.Topic, AutoPartition, e.key, e.value); perr != nil {
				err = fmt.Errorf("router flush to %q: %w", b.name, perr)
				if r.mRetries != nil {
					r.mRetries.Add(int64(len(b.entries) - i))
				}
				break
			}
			sent++
			if r.mSent != nil {
				r.mSent.Inc()
			}
		}
		if i == 0 {
			continue
		}
		// Drop the i delivered entries from the live queue's head.
		// Entries Forwarded during the produce sit behind the snapshot
		// and stay queued; only this round (the flushing latch) trims.
		r.mu.Lock()
		if d, ok := r.dests[b.name]; ok {
			d.queue = append(d.queue[:0], d.queue[i:]...)
		}
		r.mu.Unlock()
	}
	return sent, err
}

// Pending returns the total queued entries across destinations.
func (r *SummaryRouter) Pending() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	n := 0
	for _, d := range r.dests {
		n += len(d.queue)
	}
	return n
}

// Run flushes on a wall-clock interval until Stop. Virtual-clock
// drivers schedule Flush themselves instead.
func (r *SummaryRouter) Run(interval time.Duration) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.stop != nil {
		return
	}
	r.stop = make(chan struct{})
	r.done = make(chan struct{})
	go r.flushLoop(interval, r.stop, r.done)
}

// flushLoop is the periodic flusher; it exits when stop closes.
func (r *SummaryRouter) flushLoop(interval time.Duration, stop, done chan struct{}) {
	defer close(done)
	t := time.NewTicker(interval)
	defer t.Stop()
	for {
		//cad3:allow detorder wall-clock convenience loop; deterministic drivers schedule Flush() on the virtual clock and never call Run, and a stop/tick race only changes when the last flush lands
		select {
		case <-stop:
			return
		case <-t.C:
			_, _ = r.Flush()
		}
	}
}

// Stop halts the periodic flusher and waits for it to exit. Queued
// entries stay queued.
func (r *SummaryRouter) Stop() {
	r.mu.Lock()
	stop, done := r.stop, r.done
	r.stop, r.done = nil, nil
	r.mu.Unlock()
	if stop != nil {
		close(stop)
		<-done
	}
}

// Close stops the flusher and closes every registered client.
func (r *SummaryRouter) Close() error {
	r.Stop()
	r.mu.Lock()
	defer r.mu.Unlock()
	var err error
	for _, name := range r.names {
		if cerr := r.dests[name].client.Close(); cerr != nil && err == nil {
			err = cerr
		}
	}
	return err
}
