package stream

import (
	"errors"
	"fmt"
	"sync"
	"testing"
)

func groupFixture(t *testing.T) (*Broker, Client, *Producer) {
	t.Helper()
	b := newTestBroker(t)
	client := NewInProcClient(b)
	p, err := NewProducer(client, TopicInData)
	if err != nil {
		t.Fatal(err)
	}
	return b, client, p
}

func TestGroupSingleMemberGetsAll(t *testing.T) {
	_, client, p := groupFixture(t)
	g, err := NewGroup(client, TopicInData, 0)
	if err != nil {
		t.Fatal(err)
	}
	m, err := g.Join("only")
	if err != nil {
		t.Fatal(err)
	}
	if got := m.Assignment(); len(got) != DefaultPartitions {
		t.Errorf("assignment = %v, want all %d partitions", got, DefaultPartitions)
	}
	for i := 0; i < 30; i++ {
		_, _, _ = p.Send([]byte(fmt.Sprintf("k%d", i)), []byte("v"))
	}
	var got int
	for {
		msgs, err := m.Poll(8)
		if err != nil {
			t.Fatal(err)
		}
		if len(msgs) == 0 {
			break
		}
		got += len(msgs)
	}
	if got != 30 {
		t.Errorf("single member consumed %d, want 30", got)
	}
}

func TestGroupPartitionsSplitExactlyOnce(t *testing.T) {
	_, client, p := groupFixture(t)
	g, err := NewGroup(client, TopicInData, 0)
	if err != nil {
		t.Fatal(err)
	}
	m1, _ := g.Join("a")
	m2, _ := g.Join("b")
	m3, _ := g.Join("c")

	// Every partition assigned to exactly one member.
	seen := make(map[int32]string)
	for _, m := range []*GroupMember{m1, m2, m3} {
		for _, part := range m.Assignment() {
			if owner, dup := seen[part]; dup {
				t.Fatalf("partition %d assigned to %s and %s", part, owner, m.ID())
			}
			seen[part] = m.ID()
		}
	}
	if len(seen) != DefaultPartitions {
		t.Fatalf("assignments cover %d partitions, want %d", len(seen), DefaultPartitions)
	}

	for i := 0; i < 60; i++ {
		_, _, _ = p.Send([]byte(fmt.Sprintf("k%d", i)), []byte(fmt.Sprintf("m%d", i)))
	}
	delivered := make(map[string]bool)
	for _, m := range []*GroupMember{m1, m2, m3} {
		for {
			msgs, err := m.Poll(16)
			if err != nil {
				t.Fatal(err)
			}
			if len(msgs) == 0 {
				break
			}
			for _, msg := range msgs {
				v := string(msg.Value)
				if delivered[v] {
					t.Fatalf("message %q delivered twice", v)
				}
				delivered[v] = true
			}
		}
	}
	if len(delivered) != 60 {
		t.Errorf("group consumed %d unique messages, want 60", len(delivered))
	}
}

func TestGroupRebalanceOnLeave(t *testing.T) {
	_, client, p := groupFixture(t)
	g, _ := NewGroup(client, TopicInData, 0)
	m1, _ := g.Join("a")
	m2, _ := g.Join("b")
	gen := g.Generation()

	for i := 0; i < 30; i++ {
		_, _, _ = p.Send([]byte(fmt.Sprintf("k%d", i)), []byte(fmt.Sprintf("m%d", i)))
	}
	// m1 consumes its share, then leaves.
	first, err := m1.Poll(100)
	if err != nil {
		t.Fatal(err)
	}
	if err := g.Leave("a"); err != nil {
		t.Fatal(err)
	}
	if g.Generation() == gen {
		t.Error("generation should bump on leave")
	}
	// m2 now owns everything and picks up from committed offsets: the
	// remaining messages come through exactly once.
	if got := m2.Assignment(); len(got) != DefaultPartitions {
		t.Errorf("survivor assignment = %v", got)
	}
	seen := make(map[string]bool)
	for _, msg := range first {
		seen[string(msg.Value)] = true
	}
	for {
		msgs, err := m2.Poll(16)
		if err != nil {
			t.Fatal(err)
		}
		if len(msgs) == 0 {
			break
		}
		for _, msg := range msgs {
			v := string(msg.Value)
			if seen[v] {
				t.Fatalf("message %q delivered twice across rebalance", v)
			}
			seen[v] = true
		}
	}
	if len(seen) != 30 {
		t.Errorf("group consumed %d unique messages, want 30", len(seen))
	}
	// The departed member can no longer poll.
	if _, err := m1.Poll(1); !errors.Is(err, ErrUnknownMember) {
		t.Errorf("err = %v, want ErrUnknownMember", err)
	}
}

func TestGroupValidation(t *testing.T) {
	_, client, _ := groupFixture(t)
	if _, err := NewGroup(nil, TopicInData, 0); err == nil {
		t.Error("want error for nil client")
	}
	if _, err := NewGroup(client, "missing", 0); !errors.Is(err, ErrUnknownTopic) {
		t.Errorf("err = %v, want ErrUnknownTopic", err)
	}
	g, _ := NewGroup(client, TopicInData, 0)
	if _, err := g.Join(""); err == nil {
		t.Error("want error for empty member id")
	}
	if _, err := g.Join("x"); err != nil {
		t.Fatal(err)
	}
	if _, err := g.Join("x"); !errors.Is(err, ErrMemberExists) {
		t.Errorf("err = %v, want ErrMemberExists", err)
	}
	if err := g.Leave("ghost"); !errors.Is(err, ErrUnknownMember) {
		t.Errorf("err = %v, want ErrUnknownMember", err)
	}
	if got := g.Members(); len(got) != 1 || got[0] != "x" {
		t.Errorf("Members = %v", got)
	}
	if offs := g.Offsets(); len(offs) != DefaultPartitions {
		t.Errorf("Offsets = %v", offs)
	}
	m, _ := g.Join("y")
	if msgs, err := m.Poll(0); err != nil || msgs != nil {
		t.Errorf("Poll(0) = %v, %v", msgs, err)
	}
}

// TestGroupRebalanceHookOrdering: rebalance callbacks report the new
// generation, and within one rebalance every revocation fires before
// any assignment — two members never believe they own the same
// partition at once.
func TestGroupRebalanceHookOrdering(t *testing.T) {
	_, client, _ := groupFixture(t)
	g, err := NewGroup(client, TopicInData, 0)
	if err != nil {
		t.Fatal(err)
	}
	var calls []string
	hooks := func(id string) RebalanceHooks {
		return RebalanceHooks{
			OnRevoke: func(gen int64, parts []int32) {
				calls = append(calls, fmt.Sprintf("revoke:%s:gen%d:%v", id, gen, parts))
			},
			OnAssign: func(gen int64, parts []int32) {
				calls = append(calls, fmt.Sprintf("assign:%s:gen%d:%v", id, gen, parts))
			},
		}
	}
	if _, err := g.JoinWithHooks("a", hooks("a")); err != nil {
		t.Fatal(err)
	}
	want := []string{"assign:a:gen1:[0 1 2]"}
	if fmt.Sprint(calls) != fmt.Sprint(want) {
		t.Fatalf("after first join calls = %v, want %v", calls, want)
	}
	calls = nil
	if _, err := g.JoinWithHooks("b", hooks("b")); err != nil {
		t.Fatal(err)
	}
	// a loses partition 1 to b; the revoke precedes b's assign, both at
	// generation 2.
	want = []string{"revoke:a:gen2:[1]", "assign:b:gen2:[1]"}
	if fmt.Sprint(calls) != fmt.Sprint(want) {
		t.Fatalf("after second join calls = %v, want %v", calls, want)
	}
	calls = nil
	if err := g.Leave("a"); err != nil {
		t.Fatal(err)
	}
	// The leaver gets no callbacks; the survivor gains a's partitions.
	want = []string{"assign:b:gen3:[0 2]"}
	if fmt.Sprint(calls) != fmt.Sprint(want) {
		t.Fatalf("after leave calls = %v, want %v", calls, want)
	}
}

// tripClient interposes a Client and runs trip once, just before the
// first Fetch — a deterministic way to land a rebalance in the middle
// of an in-flight Poll.
type tripClient struct {
	Client
	once sync.Once
	trip func()
}

func (c *tripClient) Fetch(topicName string, partition int32, offset int64, max int) ([]Message, error) {
	c.once.Do(c.trip)
	return c.Client.Fetch(topicName, partition, offset, max)
}

// TestGroupRebalanceMidPollFencesGeneration lands a join in the middle
// of another member's Poll: the poll must deliver only messages from
// partitions its member still owns under the new generation, and the
// new assignee must re-read the revoked partitions — every produced
// message delivered exactly once across the pair.
func TestGroupRebalanceMidPollFencesGeneration(t *testing.T) {
	_, inner, p := groupFixture(t)
	tc := &tripClient{Client: inner}
	g, err := NewGroup(tc, TopicInData, 0)
	if err != nil {
		t.Fatal(err)
	}
	m1, err := g.Join("w1")
	if err != nil {
		t.Fatal(err)
	}
	const total = 30
	for i := 0; i < total; i++ {
		if _, _, err := p.Send([]byte(fmt.Sprintf("k%d", i)), []byte(fmt.Sprintf("m%d", i))); err != nil {
			t.Fatal(err)
		}
	}

	var m2 *GroupMember
	tc.trip = func() {
		var jerr error
		if m2, jerr = g.Join("w2"); jerr != nil {
			t.Error(jerr)
		}
	}
	first, err := m1.Poll(100)
	if err != nil {
		t.Fatal(err)
	}
	if m2 == nil {
		t.Fatal("the mid-poll join never ran")
	}
	// The poll straddled the rebalance: nothing from w2's partition may
	// have leaked through.
	still := make(map[int32]bool)
	for _, part := range m1.Assignment() {
		still[part] = true
	}
	seen := make(map[string]string)
	for _, msg := range first {
		if !still[msg.Partition] {
			t.Errorf("mid-poll delivery from revoked partition %d", msg.Partition)
		}
		seen[string(msg.Value)] = "w1"
	}

	// Drain both members: exactly-once across the pair.
	for _, m := range []*GroupMember{m1, m2} {
		for {
			msgs, err := m.Poll(16)
			if err != nil {
				t.Fatal(err)
			}
			if len(msgs) == 0 {
				break
			}
			for _, msg := range msgs {
				v := string(msg.Value)
				if owner, dup := seen[v]; dup {
					t.Fatalf("message %q delivered to both %s and %s", v, owner, m.ID())
				}
				seen[v] = m.ID()
			}
		}
	}
	if len(seen) != total {
		t.Errorf("group delivered %d unique messages, want %d", len(seen), total)
	}
}

func TestListTopicsInProcAndTCP(t *testing.T) {
	b, s := startServer(t)
	if err := b.CreateTopic("b-topic", 1); err != nil {
		t.Fatal(err)
	}
	if err := b.CreateTopic("a-topic", 1); err != nil {
		t.Fatal(err)
	}

	inproc := NewInProcClient(b)
	got, err := inproc.ListTopics()
	if err != nil || len(got) != 2 || got[0] != "a-topic" {
		t.Errorf("inproc ListTopics = %v, %v", got, err)
	}

	c, err := Dial(s.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	got, err = c.ListTopics()
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 || got[0] != "a-topic" || got[1] != "b-topic" {
		t.Errorf("tcp ListTopics = %v", got)
	}
}
