package stream

import (
	"errors"
	"fmt"
	"testing"
)

func groupFixture(t *testing.T) (*Broker, Client, *Producer) {
	t.Helper()
	b := newTestBroker(t)
	client := NewInProcClient(b)
	p, err := NewProducer(client, TopicInData)
	if err != nil {
		t.Fatal(err)
	}
	return b, client, p
}

func TestGroupSingleMemberGetsAll(t *testing.T) {
	_, client, p := groupFixture(t)
	g, err := NewGroup(client, TopicInData, 0)
	if err != nil {
		t.Fatal(err)
	}
	m, err := g.Join("only")
	if err != nil {
		t.Fatal(err)
	}
	if got := m.Assignment(); len(got) != DefaultPartitions {
		t.Errorf("assignment = %v, want all %d partitions", got, DefaultPartitions)
	}
	for i := 0; i < 30; i++ {
		_, _, _ = p.Send([]byte(fmt.Sprintf("k%d", i)), []byte("v"))
	}
	var got int
	for {
		msgs, err := m.Poll(8)
		if err != nil {
			t.Fatal(err)
		}
		if len(msgs) == 0 {
			break
		}
		got += len(msgs)
	}
	if got != 30 {
		t.Errorf("single member consumed %d, want 30", got)
	}
}

func TestGroupPartitionsSplitExactlyOnce(t *testing.T) {
	_, client, p := groupFixture(t)
	g, err := NewGroup(client, TopicInData, 0)
	if err != nil {
		t.Fatal(err)
	}
	m1, _ := g.Join("a")
	m2, _ := g.Join("b")
	m3, _ := g.Join("c")

	// Every partition assigned to exactly one member.
	seen := make(map[int32]string)
	for _, m := range []*GroupMember{m1, m2, m3} {
		for _, part := range m.Assignment() {
			if owner, dup := seen[part]; dup {
				t.Fatalf("partition %d assigned to %s and %s", part, owner, m.ID())
			}
			seen[part] = m.ID()
		}
	}
	if len(seen) != DefaultPartitions {
		t.Fatalf("assignments cover %d partitions, want %d", len(seen), DefaultPartitions)
	}

	for i := 0; i < 60; i++ {
		_, _, _ = p.Send([]byte(fmt.Sprintf("k%d", i)), []byte(fmt.Sprintf("m%d", i)))
	}
	delivered := make(map[string]bool)
	for _, m := range []*GroupMember{m1, m2, m3} {
		for {
			msgs, err := m.Poll(16)
			if err != nil {
				t.Fatal(err)
			}
			if len(msgs) == 0 {
				break
			}
			for _, msg := range msgs {
				v := string(msg.Value)
				if delivered[v] {
					t.Fatalf("message %q delivered twice", v)
				}
				delivered[v] = true
			}
		}
	}
	if len(delivered) != 60 {
		t.Errorf("group consumed %d unique messages, want 60", len(delivered))
	}
}

func TestGroupRebalanceOnLeave(t *testing.T) {
	_, client, p := groupFixture(t)
	g, _ := NewGroup(client, TopicInData, 0)
	m1, _ := g.Join("a")
	m2, _ := g.Join("b")
	gen := g.Generation()

	for i := 0; i < 30; i++ {
		_, _, _ = p.Send([]byte(fmt.Sprintf("k%d", i)), []byte(fmt.Sprintf("m%d", i)))
	}
	// m1 consumes its share, then leaves.
	first, err := m1.Poll(100)
	if err != nil {
		t.Fatal(err)
	}
	if err := g.Leave("a"); err != nil {
		t.Fatal(err)
	}
	if g.Generation() == gen {
		t.Error("generation should bump on leave")
	}
	// m2 now owns everything and picks up from committed offsets: the
	// remaining messages come through exactly once.
	if got := m2.Assignment(); len(got) != DefaultPartitions {
		t.Errorf("survivor assignment = %v", got)
	}
	seen := make(map[string]bool)
	for _, msg := range first {
		seen[string(msg.Value)] = true
	}
	for {
		msgs, err := m2.Poll(16)
		if err != nil {
			t.Fatal(err)
		}
		if len(msgs) == 0 {
			break
		}
		for _, msg := range msgs {
			v := string(msg.Value)
			if seen[v] {
				t.Fatalf("message %q delivered twice across rebalance", v)
			}
			seen[v] = true
		}
	}
	if len(seen) != 30 {
		t.Errorf("group consumed %d unique messages, want 30", len(seen))
	}
	// The departed member can no longer poll.
	if _, err := m1.Poll(1); !errors.Is(err, ErrUnknownMember) {
		t.Errorf("err = %v, want ErrUnknownMember", err)
	}
}

func TestGroupValidation(t *testing.T) {
	_, client, _ := groupFixture(t)
	if _, err := NewGroup(nil, TopicInData, 0); err == nil {
		t.Error("want error for nil client")
	}
	if _, err := NewGroup(client, "missing", 0); !errors.Is(err, ErrUnknownTopic) {
		t.Errorf("err = %v, want ErrUnknownTopic", err)
	}
	g, _ := NewGroup(client, TopicInData, 0)
	if _, err := g.Join(""); err == nil {
		t.Error("want error for empty member id")
	}
	if _, err := g.Join("x"); err != nil {
		t.Fatal(err)
	}
	if _, err := g.Join("x"); !errors.Is(err, ErrMemberExists) {
		t.Errorf("err = %v, want ErrMemberExists", err)
	}
	if err := g.Leave("ghost"); !errors.Is(err, ErrUnknownMember) {
		t.Errorf("err = %v, want ErrUnknownMember", err)
	}
	if got := g.Members(); len(got) != 1 || got[0] != "x" {
		t.Errorf("Members = %v", got)
	}
	if offs := g.Offsets(); len(offs) != DefaultPartitions {
		t.Errorf("Offsets = %v", offs)
	}
	m, _ := g.Join("y")
	if msgs, err := m.Poll(0); err != nil || msgs != nil {
		t.Errorf("Poll(0) = %v, %v", msgs, err)
	}
}

func TestListTopicsInProcAndTCP(t *testing.T) {
	b, s := startServer(t)
	if err := b.CreateTopic("b-topic", 1); err != nil {
		t.Fatal(err)
	}
	if err := b.CreateTopic("a-topic", 1); err != nil {
		t.Fatal(err)
	}

	inproc := NewInProcClient(b)
	got, err := inproc.ListTopics()
	if err != nil || len(got) != 2 || got[0] != "a-topic" {
		t.Errorf("inproc ListTopics = %v, %v", got, err)
	}

	c, err := Dial(s.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	got, err = c.ListTopics()
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 || got[0] != "a-topic" || got[1] != "b-topic" {
		t.Errorf("tcp ListTopics = %v", got)
	}
}
