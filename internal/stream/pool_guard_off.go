//go:build !cad3_checks

package stream

// Release builds compile the pool guard hooks to no-ops that inline to
// nothing, keeping the recycle fast path allocation- and branch-free.
// The cad3_checks debug build (pool_guard.go) replaces them with a
// pointer-keyed double-recycle detector: `go test -tags cad3_checks`.

func guardAdmit([]byte)   {}
func guardRetract([]byte) {}
func guardLease([]byte)   {}
