package stream

import (
	"bytes"
	"errors"
	"fmt"
	"sync"
	"testing"
	"testing/quick"
	"time"
)

func startServer(t *testing.T) (*Broker, *Server) {
	t.Helper()
	b := NewBroker(BrokerConfig{})
	s, err := NewServer(b, "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = s.Close() })
	return b, s
}

func TestTCPEndToEnd(t *testing.T) {
	_, s := startServer(t)
	c, err := Dial(s.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	if err := c.CreateTopic(TopicInData, 3); err != nil {
		t.Fatal(err)
	}
	n, err := c.PartitionCount(TopicInData)
	if err != nil || n != 3 {
		t.Fatalf("PartitionCount = %d, %v", n, err)
	}
	part, off, err := c.Produce(TopicInData, AutoPartition, []byte("car-7"), []byte("payload"))
	if err != nil {
		t.Fatal(err)
	}
	msgs, err := c.Fetch(TopicInData, part, off, 10)
	if err != nil {
		t.Fatal(err)
	}
	if len(msgs) != 1 || string(msgs[0].Value) != "payload" || string(msgs[0].Key) != "car-7" {
		t.Fatalf("msgs = %+v", msgs)
	}
	if msgs[0].Offset != off || msgs[0].Partition != part {
		t.Errorf("metadata mismatch: %+v", msgs[0])
	}
	if msgs[0].AppendedAt.IsZero() {
		t.Error("AppendedAt lost on the wire")
	}
}

func TestTCPProducerConsumer(t *testing.T) {
	_, s := startServer(t)
	admin, err := Dial(s.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer admin.Close()
	if err := admin.CreateTopic(TopicOutData, DefaultPartitions); err != nil {
		t.Fatal(err)
	}

	pc, err := Dial(s.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer pc.Close()
	cc, err := Dial(s.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer cc.Close()

	p, err := NewProducer(pc, TopicOutData)
	if err != nil {
		t.Fatal(err)
	}
	cons, err := NewConsumer(cc, TopicOutData, 0)
	if err != nil {
		t.Fatal(err)
	}

	for i := 0; i < 20; i++ {
		if _, _, err := p.Send([]byte("k"), []byte(fmt.Sprintf("warn-%d", i))); err != nil {
			t.Fatal(err)
		}
	}
	var got int
	deadline := time.Now().Add(2 * time.Second)
	for got < 20 && time.Now().Before(deadline) {
		msgs, err := cons.Poll(8)
		if err != nil {
			t.Fatal(err)
		}
		got += len(msgs)
	}
	if got != 20 {
		t.Errorf("consumed %d over TCP, want 20", got)
	}
}

func TestTCPErrorMapping(t *testing.T) {
	_, s := startServer(t)
	c, err := Dial(s.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	if _, _, err := c.Produce("missing", 0, nil, []byte("x")); !errors.Is(err, ErrUnknownTopic) {
		t.Errorf("err = %v, want ErrUnknownTopic", err)
	}
	if err := c.CreateTopic("t", 1); err != nil {
		t.Fatal(err)
	}
	if err := c.CreateTopic("t", 9); !errors.Is(err, ErrTopicExists) {
		t.Errorf("err = %v, want ErrTopicExists", err)
	}
	if _, err := c.Fetch("t", 42, 0, 1); !errors.Is(err, ErrBadPartition) {
		t.Errorf("err = %v, want ErrBadPartition", err)
	}
}

func TestTCPConcurrentClients(t *testing.T) {
	b, s := startServer(t)
	admin, err := Dial(s.Addr())
	if err != nil {
		t.Fatal(err)
	}
	if err := admin.CreateTopic("t", 3); err != nil {
		t.Fatal(err)
	}
	_ = admin.Close()

	const clients = 6
	const perClient = 50
	var wg sync.WaitGroup
	errs := make(chan error, clients)
	for i := 0; i < clients; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			c, err := Dial(s.Addr())
			if err != nil {
				errs <- err
				return
			}
			defer c.Close()
			for j := 0; j < perClient; j++ {
				if _, _, err := c.Produce("t", AutoPartition, []byte(fmt.Sprintf("c%d", i)), []byte("v")); err != nil {
					errs <- err
					return
				}
			}
		}(i)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}

	var total int64
	for part := int32(0); part < 3; part++ {
		hwm, err := b.HighWaterMark("t", part)
		if err != nil {
			t.Fatal(err)
		}
		total += hwm
	}
	if total != clients*perClient {
		t.Errorf("server received %d messages, want %d", total, clients*perClient)
	}
}

func TestServerCloseIdempotent(t *testing.T) {
	_, s := startServer(t)
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Errorf("second Close: %v", err)
	}
	if _, err := Dial(s.Addr()); err == nil {
		t.Error("dial after close should fail")
	}
}

func TestWireCodecRoundTripProperty(t *testing.T) {
	f := func(topic string, partition int32, offset int64, key, value []byte) bool {
		if len(topic) > 1000 || len(key) > 10000 || len(value) > 10000 {
			return true
		}
		in := []Message{{
			Topic:      topic,
			Partition:  partition,
			Offset:     offset,
			Key:        key,
			Value:      value,
			AppendedAt: time.Unix(0, 1467331200000000000),
		}}
		var enc wireEncoder
		enc.reset(respFetch)
		enc.messages(in)
		frame := enc.frame()
		// Strip length + type.
		dec := wireDecoder{buf: frame[5:]}
		out := dec.messages("")
		if dec.err != nil || len(out) != 1 {
			return false
		}
		m := out[0]
		keyEq := bytes.Equal(m.Key, key) || (len(key) == 0 && len(m.Key) == 0)
		valEq := bytes.Equal(m.Value, value) || (len(value) == 0 && len(m.Value) == 0)
		return m.Topic == topic && m.Partition == partition && m.Offset == offset &&
			keyEq && valEq && m.AppendedAt.UnixNano() == 1467331200000000000
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestWireDecoderTruncatedInput(t *testing.T) {
	var enc wireEncoder
	enc.reset(respFetch)
	enc.messages([]Message{{Topic: "t", Key: []byte("k"), Value: []byte("v")}})
	frame := enc.frame()
	// Chop the payload progressively; the decoder must error, not panic.
	for cut := 5; cut < len(frame)-1; cut++ {
		dec := wireDecoder{buf: frame[5:cut]}
		if msgs := dec.messages(""); dec.err == nil && len(msgs) == 1 {
			t.Fatalf("truncated frame of %d bytes decoded successfully", cut)
		}
	}
}

// TestRemoteErrorEmptyTopicName is the regression test for a decode gap:
// the broker refuses CreateTopic("") with ErrEmptyTopicName, but
// remoteError did not reconstruct it, so over TCP the refusal arrived as
// an opaque remote failure — errors.Is never matched and the retry
// client redialed a permanent refusal as if the transport had failed.
func TestRemoteErrorEmptyTopicName(t *testing.T) {
	_, s := startServer(t)
	c, err := Dial(s.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	err = c.CreateTopic("", 1)
	if !errors.Is(err, ErrEmptyTopicName) {
		t.Fatalf("CreateTopic(\"\") over TCP = %v, want ErrEmptyTopicName", err)
	}
	if !brokerError(err) {
		t.Error("brokerError must classify the reconstructed ErrEmptyTopicName as a broker refusal, not a transport error")
	}
}
