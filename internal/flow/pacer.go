package flow

import (
	"sync"

	"cad3/internal/obsv"
)

// Pacer defaults.
const (
	// DefaultMaxDecimation caps how far a vehicle backs off: at 16 a 10 Hz
	// sender degrades to 0.625 Hz, the floor DSRC congestion control
	// tolerates before a vehicle is effectively silent.
	DefaultMaxDecimation = 16
	// DefaultRecoverAfter is how many consecutive accepted sends earn one
	// halving of the decimation factor.
	DefaultRecoverAfter = 8
)

// PacerConfig configures a Pacer. The zero value is a valid enabled pacer
// with the defaults; layers that want pacing to be opt-in should gate on
// their own flag.
type PacerConfig struct {
	// MaxDecimation caps the decimation factor (send every k-th sample,
	// k <= MaxDecimation). Values <= 0 select DefaultMaxDecimation.
	MaxDecimation int
	// RecoverAfter is the accepted-send streak that halves the factor.
	// Values <= 0 select DefaultRecoverAfter.
	RecoverAfter int
	// Metrics, when set, receives <name>.decimated and <name>.backpressure
	// counters plus a <name>.decimation gauge.
	Metrics *obsv.Registry
	// Name prefixes the pacer's metric names. Empty selects "flow.pacer".
	Name string
}

// Pacer implements send-side congestion response: multiplicative decrease
// of the effective send rate on backpressure, additive (streak-earned)
// recovery on sustained acceptance — the AIMD shape DSRC congestion
// control applies to status-message channels. A paced sender decimates:
// with factor k it transmits every k-th sample and locally drops the
// rest, so the channel sees an immediate rate cut instead of a retry
// storm.
//
// Safe for concurrent use; allocation-free.
type Pacer struct {
	maxDecimation int
	recoverAfter  int

	mu           sync.Mutex
	k            int // current decimation factor (1 = full rate)
	phase        int // sample counter within the current factor
	streak       int // consecutive accepted sends
	decimated    int64
	backpressure int64

	mDecimated, mBackpressure *obsv.Counter
	mDecimation               *obsv.Gauge
}

// NewPacer builds a pacer at full rate.
func NewPacer(cfg PacerConfig) *Pacer {
	if cfg.MaxDecimation <= 0 {
		cfg.MaxDecimation = DefaultMaxDecimation
	}
	if cfg.RecoverAfter <= 0 {
		cfg.RecoverAfter = DefaultRecoverAfter
	}
	p := &Pacer{maxDecimation: cfg.MaxDecimation, recoverAfter: cfg.RecoverAfter, k: 1}
	if cfg.Metrics != nil {
		name := cfg.Name
		if name == "" {
			name = "flow.pacer"
		}
		p.mDecimated = cfg.Metrics.Counter(name + ".decimated")
		p.mBackpressure = cfg.Metrics.Counter(name + ".backpressure")
		p.mDecimation = cfg.Metrics.Gauge(name + ".decimation")
		p.mDecimation.Set(1)
	}
	return p
}

// Tick accounts one sample due for transmission and reports whether it
// should actually be sent (true) or locally decimated (false).
func (p *Pacer) Tick() bool {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.phase++
	if p.phase >= p.k {
		p.phase = 0
		return true
	}
	p.decimated++
	if p.mDecimated != nil {
		p.mDecimated.Inc()
	}
	return false
}

// OnBackpressure records a refused send: the decimation factor doubles
// (capped) and the recovery streak resets.
func (p *Pacer) OnBackpressure() {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.backpressure++
	if p.mBackpressure != nil {
		p.mBackpressure.Inc()
	}
	p.streak = 0
	if p.k < p.maxDecimation {
		p.k *= 2
		if p.k > p.maxDecimation {
			p.k = p.maxDecimation
		}
		if p.mDecimation != nil {
			p.mDecimation.Set(int64(p.k))
		}
	}
}

// Floor drops the pacer straight to its maximum decimation factor. A
// tripped circuit breaker calls this: an unanswering link is worse than a
// backpressuring broker, so instead of doubling per refusal the sender
// cuts to the floor at once and earns the rate back through the usual
// recovery streaks once the breaker's probes restore the link.
func (p *Pacer) Floor() {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.streak = 0
	if p.k == p.maxDecimation {
		return
	}
	p.k = p.maxDecimation
	if p.mDecimation != nil {
		p.mDecimation.Set(int64(p.k))
	}
}

// OnSuccess records an accepted send; a long enough streak halves the
// decimation factor back toward full rate.
func (p *Pacer) OnSuccess() {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.k == 1 {
		return
	}
	p.streak++
	if p.streak >= p.recoverAfter {
		p.streak = 0
		p.k /= 2
		if p.k < 1 {
			p.k = 1
		}
		if p.mDecimation != nil {
			p.mDecimation.Set(int64(p.k))
		}
	}
}

// Decimation returns the current factor (1 = full rate).
func (p *Pacer) Decimation() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.k
}

// Decimated returns how many samples were locally dropped.
func (p *Pacer) Decimated() int64 {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.decimated
}

// Backpressured returns how many sends were refused by the gate.
func (p *Pacer) Backpressured() int64 {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.backpressure
}
