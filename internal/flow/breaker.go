package flow

import (
	"errors"
	"sync"
	"time"

	"cad3/internal/obsv"
)

// ErrCircuitOpen is returned by a transport whose links are all tripped:
// the sender should treat it like sustained backpressure — cut its rate
// to the floor and let the breaker's half-open probes discover recovery —
// rather than retrying into a dead or dying peer. It is distinct from
// ErrBackpressure: backpressure is the broker refusing load it could see,
// a tripped circuit is the link not answering at all.
var ErrCircuitOpen = errors.New("flow: circuit open")

// Breaker states.
type BreakerState int32

const (
	// BreakerClosed passes requests through (healthy link).
	BreakerClosed BreakerState = iota
	// BreakerOpen refuses requests until the cooldown elapses.
	BreakerOpen
	// BreakerHalfOpen lets a single probe through at a time; its outcome
	// closes or re-opens the breaker.
	BreakerHalfOpen
)

// String renders the state for logs and debug endpoints.
func (s BreakerState) String() string {
	switch s {
	case BreakerClosed:
		return "closed"
	case BreakerOpen:
		return "open"
	case BreakerHalfOpen:
		return "half-open"
	default:
		return "unknown"
	}
}

// Breaker defaults.
const (
	// DefaultBreakerThreshold is the consecutive-failure count that trips
	// the breaker.
	DefaultBreakerThreshold = 5
	// DefaultBreakerCooldown is how long an open breaker refuses before
	// allowing a half-open probe.
	DefaultBreakerCooldown = 500 * time.Millisecond
)

// BreakerConfig configures a circuit breaker.
type BreakerConfig struct {
	// FailThreshold is the consecutive-failure count that trips the
	// breaker. Values <= 0 select DefaultBreakerThreshold.
	FailThreshold int
	// Cooldown is the open -> half-open delay. Values <= 0 select
	// DefaultBreakerCooldown.
	Cooldown time.Duration
	// Metrics, when set, receives <name>.trips and <name>.probes counters
	// plus a <name>.open gauge counting breakers currently tripped
	// (open or half-open). Several breakers may share the same registry
	// and name — the pool's per-link breakers aggregate into one family.
	Metrics *obsv.Registry
	// Name prefixes the breaker's metric names. Empty selects
	// "flow.breaker".
	Name string
	// Now injects the clock (deterministic tests). Nil selects time.Now.
	Now func() time.Time
}

// Breaker is a per-link circuit breaker: consecutive transport failures
// trip it open, refusing further traffic on the link; after a cooldown it
// half-opens and admits one probe at a time, closing again on a probe
// success. It protects a dying link from retry pile-up and gives the
// send-side pacer an unambiguous "stop sending" signal (ErrCircuitOpen).
//
// Safe for concurrent use; allocation-free.
type Breaker struct {
	threshold int
	cooldown  time.Duration
	now       func() time.Time

	mu       sync.Mutex
	state    BreakerState
	fails    int
	openedAt time.Time
	probing  bool

	mTrips, mProbes *obsv.Counter
	mOpen           *obsv.Gauge
}

// NewBreaker builds a closed breaker.
func NewBreaker(cfg BreakerConfig) *Breaker {
	if cfg.FailThreshold <= 0 {
		cfg.FailThreshold = DefaultBreakerThreshold
	}
	if cfg.Cooldown <= 0 {
		cfg.Cooldown = DefaultBreakerCooldown
	}
	if cfg.Now == nil {
		cfg.Now = time.Now
	}
	b := &Breaker{threshold: cfg.FailThreshold, cooldown: cfg.Cooldown, now: cfg.Now}
	if cfg.Metrics != nil {
		name := cfg.Name
		if name == "" {
			name = "flow.breaker"
		}
		b.mTrips = cfg.Metrics.Counter(name + ".trips")
		b.mProbes = cfg.Metrics.Counter(name + ".probes")
		b.mOpen = cfg.Metrics.Gauge(name + ".open")
	}
	return b
}

// Allow reports whether a request may use the link right now. An open
// breaker whose cooldown has elapsed transitions to half-open and admits
// exactly one probe; further Allow calls refuse until that probe's
// OnSuccess/OnFailure lands.
func (b *Breaker) Allow() bool {
	b.mu.Lock()
	defer b.mu.Unlock()
	switch b.state {
	case BreakerClosed:
		return true
	case BreakerOpen:
		if b.now().Sub(b.openedAt) < b.cooldown {
			return false
		}
		b.state = BreakerHalfOpen
		b.probing = true
		if b.mProbes != nil {
			b.mProbes.Inc()
		}
		return true
	default: // half-open
		if b.probing {
			return false
		}
		b.probing = true
		if b.mProbes != nil {
			b.mProbes.Inc()
		}
		return true
	}
}

// OnSuccess records a request that completed over the link. A half-open
// probe success closes the breaker.
func (b *Breaker) OnSuccess() {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.fails = 0
	if b.state == BreakerHalfOpen {
		b.state = BreakerClosed
		b.probing = false
		if b.mOpen != nil {
			b.mOpen.Add(-1)
		}
	}
}

// OnFailure records a transport failure (error or timeout) on the link.
// Reaching the consecutive-failure threshold trips the breaker; a failed
// half-open probe re-opens it for another cooldown.
func (b *Breaker) OnFailure() {
	b.mu.Lock()
	defer b.mu.Unlock()
	switch b.state {
	case BreakerClosed:
		b.fails++
		if b.fails >= b.threshold {
			b.state = BreakerOpen
			b.openedAt = b.now()
			if b.mTrips != nil {
				b.mTrips.Inc()
			}
			if b.mOpen != nil {
				b.mOpen.Add(1)
			}
		}
	case BreakerHalfOpen:
		b.state = BreakerOpen
		b.openedAt = b.now()
		b.probing = false
		if b.mTrips != nil {
			b.mTrips.Inc()
		}
	case BreakerOpen:
		// Already open (e.g. a straggling in-flight request failing after
		// the trip): keep the original cooldown clock.
	}
}

// State returns the breaker's current state.
func (b *Breaker) State() BreakerState {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.state
}

// Failures returns the current consecutive-failure count.
func (b *Breaker) Failures() int {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.fails
}
