// Package flow is the end-to-end flow-control substrate for the CAD3
// record path. The paper's evaluation holds offered load near the DSRC
// budget; this package is what lets the reproduction survive the loads the
// paper does not test: every hand-off from vehicle to RSU detector is
// bounded, instrumented, and able to push back.
//
// Four pieces:
//
//   - Gate (gate.go): a credit/occupancy-based admission gate in front of a
//     bounded queue. Producers consume credits on admit; consumers return
//     them as they drain (fetch credits). A full gate answers with a
//     preallocated backpressure error carrying a retry-after hint, so the
//     refusal path allocates nothing.
//   - Policy (this file): pluggable admission policies. PriorityShed — the
//     pipeline default — may shed telemetry under pressure but never
//     warnings or neighbour summaries, mirroring the paper's priority
//     between raw status updates and safety messages.
//   - BatchController (batch.go): an AIMD controller that adapts the
//     micro-batch drain bound toward a per-batch latency SLO instead of the
//     fixed 8192-message cap.
//   - Pacer (pacer.go): send-side rate decimation for vehicles — on
//     backpressure a vehicle halves its effective telemetry rate rather
//     than blind-retrying, the congestion response DSRC mandates for
//     status-message channels.
//
// Everything is stdlib-only, safe for concurrent use, and allocation-free
// on both the admit and the refuse path.
package flow

import (
	"errors"
	"time"
)

// Class is the priority class of a message crossing a gate. The pipeline
// maps topics to classes (IN-DATA = Telemetry, OUT-DATA = Warning,
// CO-DATA = Summary); anything else is Other.
type Class uint8

// Priority classes, lowest first. Telemetry is the only class the default
// policy will shed: a lost 10 Hz status update is recovered by the next
// one, while a lost warning is a missed safety intervention and a lost
// summary silently degrades a neighbour RSU to its standalone model.
const (
	ClassTelemetry Class = iota
	ClassWarning
	ClassSummary
	ClassOther
	numClasses
)

// String returns the class name for logs and metric labels.
func (c Class) String() string {
	switch c {
	case ClassTelemetry:
		return "telemetry"
	case ClassWarning:
		return "warning"
	case ClassSummary:
		return "summary"
	default:
		return "other"
	}
}

// Verdict is an admission decision.
type Verdict uint8

const (
	// Admit lets the message in (occupancy grows).
	Admit Verdict = iota
	// Shed refuses the message as an intentional load-shedding drop: the
	// sender should decimate, the message is not coming back.
	Shed
	// Reject refuses the message without shedding semantics (hard bound hit
	// by a class the policy refuses to shed); senders may retry after the
	// hint.
	Reject
)

// Policy decides admission for one message given the gate's current
// occupancy and capacity. Implementations must be safe for concurrent use
// and allocation-free (they run on the produce hot path).
type Policy interface {
	Decide(c Class, occupancy, capacity int64) Verdict
}

// ErrBackpressure is the sentinel every gate refusal matches via
// errors.Is. Callers that can pace (vehicles) decimate their send rate;
// callers that cannot treat it as a dropped message.
var ErrBackpressure = errors.New("flow: backpressure")

// BackpressureError is the concrete refusal returned by a Gate: it wraps
// ErrBackpressure and carries a retry-after hint derived from the gate's
// occupancy. One instance is preallocated per gate, so returning it
// allocates nothing; its hint is read live from the gate's atomics.
type BackpressureError struct {
	gate *Gate
}

// Error implements error. The message is the sentinel's (string-prefix
// matched by the TCP wire protocol's remote-error mapping).
func (e *BackpressureError) Error() string { return ErrBackpressure.Error() }

// Is makes errors.Is(err, ErrBackpressure) true.
func (e *BackpressureError) Is(target error) bool { return target == ErrBackpressure }

// RetryAfter returns the gate's current backoff hint: the configured base
// hint scaled by how far over capacity the gate is. A barely-full gate
// hints one base interval; a badly overrun one hints proportionally more.
func (e *BackpressureError) RetryAfter() time.Duration {
	if e.gate == nil {
		return 0
	}
	return e.gate.retryHint()
}

// RetryAfter extracts the retry-after hint from a (possibly wrapped)
// backpressure error. ok is false when the error carries no hint.
func RetryAfter(err error) (time.Duration, bool) {
	for err != nil {
		if bp, isBP := err.(interface{ RetryAfter() time.Duration }); isBP {
			return bp.RetryAfter(), true
		}
		err = errors.Unwrap(err)
	}
	return 0, false
}

// TailDrop is the class-blind baseline policy: admit while occupancy is
// below capacity, reject at the bound. It models the implicit behaviour of
// a plain bounded buffer.
type TailDrop struct{}

// Decide implements Policy.
func (TailDrop) Decide(_ Class, occupancy, capacity int64) Verdict {
	if occupancy < capacity {
		return Admit
	}
	return Reject
}

// DefaultShedFrac is the occupancy fraction at which PriorityShed starts
// refusing telemetry: shedding begins before the queue is full so the
// remaining headroom is reserved for warnings and summaries.
const DefaultShedFrac = 0.9

// PriorityShed is the pipeline's default policy: warnings and summaries
// are always admitted — the gate bound is soft for them, so they are never
// dropped by flow control — while telemetry is shed once occupancy crosses
// ShedFrac of capacity. The reserved headroom means a burst of warnings
// never finds the queue already filled by status updates.
type PriorityShed struct {
	// ShedFrac is the telemetry shed threshold as a fraction of capacity.
	// Values <= 0 or > 1 select DefaultShedFrac.
	ShedFrac float64
}

// Decide implements Policy.
func (p PriorityShed) Decide(c Class, occupancy, capacity int64) Verdict {
	if c == ClassWarning || c == ClassSummary {
		return Admit
	}
	frac := p.ShedFrac
	if frac <= 0 || frac > 1 {
		frac = DefaultShedFrac
	}
	threshold := int64(frac * float64(capacity))
	if threshold < 1 {
		threshold = 1
	}
	if occupancy < threshold {
		return Admit
	}
	return Shed
}
