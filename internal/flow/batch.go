package flow

import (
	"sync"
	"time"

	"cad3/internal/obsv"
)

// Batch controller defaults.
const (
	// DefaultBatchSLO is the per-batch latency objective: the paper's 50 ms
	// micro-batch window — a batch that takes longer than its window to
	// process is the definition of falling behind.
	DefaultBatchSLO = 50 * time.Millisecond
	// DefaultBatchGrow is the additive increase step (records per adjust).
	DefaultBatchGrow = 64
	// DefaultBatchShrink is the multiplicative decrease factor applied when
	// a batch overruns the SLO.
	DefaultBatchShrink = 0.5
)

// BatchControllerConfig configures a BatchController.
type BatchControllerConfig struct {
	// Min and Max bound the batch size. Values <= 0 select 32 and 8192.
	Min, Max int
	// Initial is the starting size. Values <= 0 select Min.
	Initial int
	// SLO is the per-batch latency objective. Values <= 0 select
	// DefaultBatchSLO.
	SLO time.Duration
	// Grow is the additive increase step. Values <= 0 select
	// DefaultBatchGrow.
	Grow int
	// Shrink is the multiplicative decrease factor in (0, 1). Values
	// outside select DefaultBatchShrink.
	Shrink float64
	// Metrics, when set, receives a <name>.batch_limit gauge and
	// <name>.grows / <name>.shrinks counters.
	Metrics *obsv.Registry
	// Name prefixes the controller's metric names. Empty selects
	// "flow.batch".
	Name string
}

// BatchController adapts a micro-batch drain bound toward a per-batch
// latency SLO with an AIMD loop: a batch that overruns the SLO shrinks the
// bound multiplicatively (fast reaction to falling behind); a saturated
// batch that finishes comfortably under it grows the bound additively
// (cautious probing for headroom). Unsaturated batches leave the bound
// alone — an idle pipeline is not evidence of capacity.
//
// Safe for concurrent use; Size is a single atomic-free read under a
// mutex the engine's step loop already serialises on.
type BatchController struct {
	cfg BatchControllerConfig

	mu      sync.Mutex
	size    int
	grows   int64
	shrinks int64

	mLimit         *obsv.Gauge
	mGrow, mShrink *obsv.Counter
}

// NewBatchController validates the config and builds a controller.
func NewBatchController(cfg BatchControllerConfig) *BatchController {
	if cfg.Min <= 0 {
		cfg.Min = 32
	}
	if cfg.Max <= 0 {
		cfg.Max = 8192
	}
	if cfg.Max < cfg.Min {
		cfg.Max = cfg.Min
	}
	if cfg.Initial <= 0 {
		cfg.Initial = cfg.Min
	}
	if cfg.Initial < cfg.Min {
		cfg.Initial = cfg.Min
	}
	if cfg.Initial > cfg.Max {
		cfg.Initial = cfg.Max
	}
	if cfg.SLO <= 0 {
		cfg.SLO = DefaultBatchSLO
	}
	if cfg.Grow <= 0 {
		cfg.Grow = DefaultBatchGrow
	}
	if cfg.Shrink <= 0 || cfg.Shrink >= 1 {
		cfg.Shrink = DefaultBatchShrink
	}
	c := &BatchController{cfg: cfg, size: cfg.Initial}
	if cfg.Metrics != nil {
		name := cfg.Name
		if name == "" {
			name = "flow.batch"
		}
		c.mLimit = cfg.Metrics.Gauge(name + ".batch_limit")
		c.mLimit.Set(int64(cfg.Initial))
		c.mGrow = cfg.Metrics.Counter(name + ".grows")
		c.mShrink = cfg.Metrics.Counter(name + ".shrinks")
	}
	return c
}

// Size returns the current drain bound.
func (c *BatchController) Size() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.size
}

// SLO returns the controller's latency objective.
func (c *BatchController) SLO() time.Duration { return c.cfg.SLO }

// Observe feeds one batch outcome back: how many records it drained
// (against the bound it ran under) and how long processing took.
func (c *BatchController) Observe(drained int, latency time.Duration) {
	c.mu.Lock()
	defer c.mu.Unlock()
	switch {
	case latency > c.cfg.SLO:
		// Overrun: shrink multiplicatively, never below Min.
		next := int(float64(c.size) * c.cfg.Shrink)
		if next < c.cfg.Min {
			next = c.cfg.Min
		}
		if next != c.size {
			c.size = next
			c.shrinks++
			if c.mShrink != nil {
				c.mShrink.Inc()
			}
		}
	case drained >= c.size && latency <= c.cfg.SLO*7/10:
		// Saturated and comfortably inside the SLO: probe for headroom.
		next := c.size + c.cfg.Grow
		if next > c.cfg.Max {
			next = c.cfg.Max
		}
		if next != c.size {
			c.size = next
			c.grows++
			if c.mGrow != nil {
				c.mGrow.Inc()
			}
		}
	}
	if c.mLimit != nil {
		c.mLimit.Set(int64(c.size))
	}
}

// Adjustments returns the cumulative (grows, shrinks).
func (c *BatchController) Adjustments() (int64, int64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.grows, c.shrinks
}
