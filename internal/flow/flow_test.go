package flow

import (
	"errors"
	"fmt"
	"testing"
	"time"

	"cad3/internal/obsv"
)

func TestGateAdmitUntilCapacityThenBackpressure(t *testing.T) {
	g := NewGate(GateConfig{Capacity: 4, Policy: TailDrop{}})
	for i := 0; i < 4; i++ {
		if err := g.Admit(ClassTelemetry); err != nil {
			t.Fatalf("admit %d: %v", i, err)
		}
	}
	err := g.Admit(ClassTelemetry)
	if !errors.Is(err, ErrBackpressure) {
		t.Fatalf("full gate returned %v, want ErrBackpressure", err)
	}
	if got := g.Occupancy(); got != 4 {
		t.Fatalf("occupancy = %d, want 4", got)
	}
	g.Release(2)
	if err := g.Admit(ClassTelemetry); err != nil {
		t.Fatalf("admit after release: %v", err)
	}
	if got := g.Occupancy(); got != 3 {
		t.Fatalf("occupancy after release+admit = %d, want 3", got)
	}
}

func TestGateRetryAfterHintScalesWithOverrun(t *testing.T) {
	g := NewGate(GateConfig{Capacity: 2, Policy: PriorityShed{}, RetryHint: time.Millisecond})
	// Warnings are admitted past capacity; drive occupancy to 3x.
	for i := 0; i < 6; i++ {
		if err := g.Admit(ClassWarning); err != nil {
			t.Fatalf("warning admit %d: %v", i, err)
		}
	}
	err := g.Admit(ClassTelemetry)
	if !errors.Is(err, ErrBackpressure) {
		t.Fatalf("telemetry at 3x occupancy: %v", err)
	}
	hint, ok := RetryAfter(err)
	if !ok {
		t.Fatal("backpressure error carries no retry-after hint")
	}
	if hint < 2*time.Millisecond {
		t.Fatalf("hint = %v at 3x overrun, want >= 2ms", hint)
	}
	// The hint must survive wrapping.
	wrapped := fmt.Errorf("produce: %w", err)
	if _, ok := RetryAfter(wrapped); !ok {
		t.Fatal("hint lost through fmt.Errorf wrapping")
	}
	if _, ok := RetryAfter(errors.New("other")); ok {
		t.Fatal("non-backpressure error yielded a hint")
	}
}

func TestPriorityShedNeverRefusesWarningsOrSummaries(t *testing.T) {
	g := NewGate(GateConfig{Capacity: 2, Policy: PriorityShed{ShedFrac: 0.5}})
	for i := 0; i < 100; i++ {
		if err := g.Admit(ClassWarning); err != nil {
			t.Fatalf("warning %d refused: %v", i, err)
		}
		if err := g.Admit(ClassSummary); err != nil {
			t.Fatalf("summary %d refused: %v", i, err)
		}
	}
	if err := g.Admit(ClassTelemetry); !errors.Is(err, ErrBackpressure) {
		t.Fatalf("telemetry under pressure: %v, want ErrBackpressure", err)
	}
	s := g.Stats()
	if s.Shed[ClassWarning] != 0 || s.Shed[ClassSummary] != 0 {
		t.Fatalf("warning/summary sheds = %d/%d, want 0/0",
			s.Shed[ClassWarning], s.Shed[ClassSummary])
	}
	if s.Shed[ClassTelemetry] == 0 {
		t.Fatal("telemetry shed not counted")
	}
}

func TestPriorityShedReservesHeadroom(t *testing.T) {
	g := NewGate(GateConfig{Capacity: 10, Policy: PriorityShed{ShedFrac: 0.8}})
	admitted := 0
	for i := 0; i < 20; i++ {
		if err := g.Admit(ClassTelemetry); err == nil {
			admitted++
		}
	}
	if admitted != 8 {
		t.Fatalf("telemetry admitted = %d, want 8 (80%% of 10)", admitted)
	}
	// The reserved 20% still takes warnings.
	if err := g.Admit(ClassWarning); err != nil {
		t.Fatalf("warning into reserved headroom: %v", err)
	}
}

func TestGateAdmitRefuseZeroAlloc(t *testing.T) {
	reg := obsv.NewRegistry()
	g := NewGate(GateConfig{Capacity: 1, Policy: PriorityShed{}, Metrics: reg, Name: "flow.t"})
	if err := g.Admit(ClassTelemetry); err != nil {
		t.Fatal(err)
	}
	allocs := testing.AllocsPerRun(200, func() {
		err := g.Admit(ClassTelemetry) // always refused: occupancy pinned at 1 >= 0.9*1
		if err == nil {
			t.Fatal("expected refusal")
		}
		if _, ok := RetryAfter(err); !ok {
			t.Fatal("no hint")
		}
	})
	if allocs != 0 {
		t.Errorf("refuse path: %v allocs/op, want 0", allocs)
	}
	g.Release(1)
	allocs = testing.AllocsPerRun(200, func() {
		if err := g.Admit(ClassTelemetry); err != nil {
			t.Fatal(err)
		}
		g.Release(1)
	})
	if allocs != 0 {
		t.Errorf("admit+release path: %v allocs/op, want 0", allocs)
	}
}

func TestGateMetricsCounters(t *testing.T) {
	reg := obsv.NewRegistry()
	g := NewGate(GateConfig{Capacity: 2, Policy: PriorityShed{ShedFrac: 1}, Metrics: reg, Name: "flow.in"})
	_ = g.Admit(ClassTelemetry)
	_ = g.Admit(ClassTelemetry)
	_ = g.Admit(ClassTelemetry) // shed
	snap := reg.Snapshot()
	if got := snap.Counters["flow.in.admitted"]; got != 2 {
		t.Errorf("admitted counter = %d, want 2", got)
	}
	if got := snap.Counters["flow.in.shed.telemetry"]; got != 1 {
		t.Errorf("shed counter = %d, want 1", got)
	}
	if got := snap.Gauges["flow.in.occupancy"]; got != 2 {
		t.Errorf("occupancy gauge = %d, want 2", got)
	}
}

func TestGateReleaseClampsAtZero(t *testing.T) {
	g := NewGate(GateConfig{Capacity: 4})
	g.Release(10)
	if got := g.Occupancy(); got != 0 {
		t.Fatalf("occupancy after over-release = %d, want 0", got)
	}
	if err := g.Admit(ClassTelemetry); err != nil {
		t.Fatalf("admit after over-release: %v", err)
	}
}

func TestBatchControllerAIMD(t *testing.T) {
	c := NewBatchController(BatchControllerConfig{
		Min: 10, Max: 100, Initial: 50,
		SLO: 50 * time.Millisecond, Grow: 10, Shrink: 0.5,
	})
	// Overrun shrinks multiplicatively.
	c.Observe(50, 80*time.Millisecond)
	if got := c.Size(); got != 25 {
		t.Fatalf("size after overrun = %d, want 25", got)
	}
	// Saturated + comfortable grows additively.
	c.Observe(25, 10*time.Millisecond)
	if got := c.Size(); got != 35 {
		t.Fatalf("size after saturated fast batch = %d, want 35", got)
	}
	// Unsaturated leaves the bound alone.
	c.Observe(3, time.Millisecond)
	if got := c.Size(); got != 35 {
		t.Fatalf("size after idle batch = %d, want 35", got)
	}
	// Near-SLO saturated batch (inside SLO but over 70%) holds steady.
	c.Observe(35, 45*time.Millisecond)
	if got := c.Size(); got != 35 {
		t.Fatalf("size after near-SLO batch = %d, want 35", got)
	}
	grows, shrinks := c.Adjustments()
	if grows != 1 || shrinks != 1 {
		t.Fatalf("adjustments = (%d, %d), want (1, 1)", grows, shrinks)
	}
}

func TestBatchControllerBounds(t *testing.T) {
	c := NewBatchController(BatchControllerConfig{Min: 16, Max: 32, Initial: 32, SLO: time.Millisecond})
	for i := 0; i < 10; i++ {
		c.Observe(32, time.Second) // massive overruns
	}
	if got := c.Size(); got != 16 {
		t.Fatalf("size floor = %d, want Min=16", got)
	}
	for i := 0; i < 100; i++ {
		c.Observe(c.Size(), 0)
	}
	if got := c.Size(); got != 32 {
		t.Fatalf("size ceiling = %d, want Max=32", got)
	}
}

func TestPacerDecimatesAndRecovers(t *testing.T) {
	p := NewPacer(PacerConfig{MaxDecimation: 8, RecoverAfter: 2})
	// Full rate: every tick sends.
	for i := 0; i < 5; i++ {
		if !p.Tick() {
			t.Fatalf("tick %d decimated at full rate", i)
		}
	}
	p.OnBackpressure()
	if got := p.Decimation(); got != 2 {
		t.Fatalf("decimation after 1 backpressure = %d, want 2", got)
	}
	p.OnBackpressure()
	p.OnBackpressure()
	if got := p.Decimation(); got != 8 {
		t.Fatalf("decimation after 3 backpressures = %d, want 8 (capped)", got)
	}
	p.OnBackpressure()
	if got := p.Decimation(); got != 8 {
		t.Fatalf("decimation exceeded cap: %d", got)
	}
	// At k=8, one in eight ticks sends.
	sent := 0
	for i := 0; i < 16; i++ {
		if p.Tick() {
			sent++
		}
	}
	if sent != 2 {
		t.Fatalf("sent %d of 16 ticks at k=8, want 2", sent)
	}
	if got := p.Decimated(); got != 14 {
		t.Fatalf("decimated = %d, want 14", got)
	}
	// Recovery: 2 accepted sends halve the factor.
	p.OnSuccess()
	p.OnSuccess()
	if got := p.Decimation(); got != 4 {
		t.Fatalf("decimation after recovery streak = %d, want 4", got)
	}
	// A backpressure mid-streak resets progress.
	p.OnSuccess()
	p.OnBackpressure()
	p.OnSuccess()
	p.OnSuccess()
	if got := p.Decimation(); got != 4 {
		t.Fatalf("decimation after reset+streak = %d, want 4 (8/2)", got)
	}
}

func TestPacerZeroAlloc(t *testing.T) {
	p := NewPacer(PacerConfig{})
	p.OnBackpressure()
	allocs := testing.AllocsPerRun(200, func() {
		p.Tick()
		p.OnSuccess()
		p.OnBackpressure()
	})
	if allocs != 0 {
		t.Errorf("pacer hot path: %v allocs/op, want 0", allocs)
	}
}

func TestClassString(t *testing.T) {
	for c, want := range map[Class]string{
		ClassTelemetry: "telemetry", ClassWarning: "warning",
		ClassSummary: "summary", ClassOther: "other",
	} {
		if got := c.String(); got != want {
			t.Errorf("Class(%d).String() = %q, want %q", c, got, want)
		}
	}
}
