package flow

import (
	"sync/atomic"
	"time"

	"cad3/internal/obsv"
)

// DefaultRetryHint is the base backoff a full gate suggests to refused
// producers. It is scaled up with overrun (see BackpressureError).
const DefaultRetryHint = 5 * time.Millisecond

// GateConfig configures a Gate.
type GateConfig struct {
	// Capacity is the queue bound the gate fronts (messages). Values <= 0
	// select 1024.
	Capacity int
	// Policy decides admission. Nil selects PriorityShed{}.
	Policy Policy
	// RetryHint is the base retry-after suggestion. Values <= 0 select
	// DefaultRetryHint.
	RetryHint time.Duration
	// Metrics, when set, receives the gate's counters under Name
	// (<name>.admitted, <name>.shed.<class>, <name>.rejected) and an
	// occupancy gauge (<name>.occupancy).
	Metrics *obsv.Registry
	// Name prefixes the gate's metric names. Empty selects "flow.gate".
	Name string
}

// Gate is a credit/occupancy admission gate in front of a bounded queue.
// Producers call Admit before enqueueing; the queue's drain side calls
// Release as messages leave (or are evicted), returning the credits.
// Occupancy may exceed capacity only for classes the policy refuses to
// shed — the bound is hard for telemetry, soft for safety traffic.
//
// All methods are safe for concurrent use and allocation-free.
type Gate struct {
	capacity  int64
	hintBase  int64 // microseconds
	policy    Policy
	occupancy atomic.Int64
	err       *BackpressureError

	admitted atomic.Int64
	rejected atomic.Int64
	shed     [numClasses]atomic.Int64

	// Cached registry handles (nil when GateConfig.Metrics was nil).
	mAdmitted, mRejected *obsv.Counter
	mShed                [numClasses]*obsv.Counter
}

// NewGate builds a gate.
func NewGate(cfg GateConfig) *Gate {
	if cfg.Capacity <= 0 {
		cfg.Capacity = 1024
	}
	if cfg.Policy == nil {
		cfg.Policy = PriorityShed{}
	}
	if cfg.RetryHint <= 0 {
		cfg.RetryHint = DefaultRetryHint
	}
	g := &Gate{
		capacity: int64(cfg.Capacity),
		hintBase: cfg.RetryHint.Microseconds(),
		policy:   cfg.Policy,
	}
	g.err = &BackpressureError{gate: g}
	if cfg.Metrics != nil {
		name := cfg.Name
		if name == "" {
			name = "flow.gate"
		}
		g.mAdmitted = cfg.Metrics.Counter(name + ".admitted")
		g.mRejected = cfg.Metrics.Counter(name + ".rejected")
		for c := Class(0); c < numClasses; c++ {
			g.mShed[c] = cfg.Metrics.Counter(name + ".shed." + c.String())
		}
		cfg.Metrics.RegisterGaugeFunc(name+".occupancy", g.Occupancy)
	}
	return g
}

// Admit asks the policy to admit one message of the given class. On Admit
// it takes a credit (occupancy grows) and returns nil; otherwise it
// returns the gate's backpressure error (matching ErrBackpressure, with a
// retry-after hint). The refusal path performs no allocation.
func (g *Gate) Admit(c Class) error {
	occ := g.occupancy.Load()
	switch g.policy.Decide(c, occ, g.capacity) {
	case Admit:
		g.occupancy.Add(1)
		g.admitted.Add(1)
		if g.mAdmitted != nil {
			g.mAdmitted.Inc()
		}
		return nil
	case Shed:
		g.shed[c].Add(1)
		if g.mShed[c] != nil {
			g.mShed[c].Inc()
		}
		return g.err
	default: // Reject
		g.rejected.Add(1)
		if g.mRejected != nil {
			g.mRejected.Inc()
		}
		return g.err
	}
}

// Acquire takes n credits unconditionally, bypassing the policy — the
// restore/replay path that rebuilds a queue's occupancy from a snapshot
// without re-running admission decisions that already happened.
func (g *Gate) Acquire(n int64) {
	if n > 0 {
		g.occupancy.Add(n)
	}
}

// Release returns n credits as the queue drains. Occupancy never goes
// below zero (restores and replays may release more than was admitted
// through this gate instance).
func (g *Gate) Release(n int64) {
	if n <= 0 {
		return
	}
	if g.occupancy.Add(-n) < 0 {
		// Clamp: a concurrent racer may briefly observe a small negative
		// value; settle it back toward zero without losing admits.
		for {
			v := g.occupancy.Load()
			if v >= 0 || g.occupancy.CompareAndSwap(v, 0) {
				return
			}
		}
	}
}

// Occupancy returns the current credit debt (enqueued but undrained
// messages).
func (g *Gate) Occupancy() int64 { return g.occupancy.Load() }

// Capacity returns the configured bound.
func (g *Gate) Capacity() int64 { return g.capacity }

// Err returns the gate's preallocated backpressure error (for tests and
// for wiring layers that surface it without calling Admit).
func (g *Gate) Err() *BackpressureError { return g.err }

// Stats is a point-in-time copy of the gate's counters.
type Stats struct {
	Admitted  int64
	Rejected  int64
	Shed      [4]int64 // indexed by Class
	Occupancy int64
	Capacity  int64
}

// ShedTotal sums sheds across classes.
func (s Stats) ShedTotal() int64 {
	var total int64
	for _, v := range s.Shed {
		total += v
	}
	return total
}

// Stats snapshots the gate.
func (g *Gate) Stats() Stats {
	s := Stats{
		Admitted:  g.admitted.Load(),
		Rejected:  g.rejected.Load(),
		Occupancy: g.occupancy.Load(),
		Capacity:  g.capacity,
	}
	for c := Class(0); c < numClasses; c++ {
		s.Shed[c] = g.shed[c].Load()
	}
	return s
}

// retryHint scales the base hint by the gate's overrun: at exactly full it
// suggests one base interval, at 2x occupancy two, and so on.
func (g *Gate) retryHint() time.Duration {
	occ := g.occupancy.Load()
	mult := int64(1)
	if g.capacity > 0 && occ > g.capacity {
		mult = 1 + (occ-g.capacity+g.capacity-1)/g.capacity
	}
	return time.Duration(g.hintBase*mult) * time.Microsecond
}
