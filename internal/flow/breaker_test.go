package flow

import (
	"testing"
	"time"

	"cad3/internal/obsv"
)

// breakerClock is a hand-cranked clock for deterministic cooldown tests.
type breakerClock struct{ t time.Time }

func (c *breakerClock) now() time.Time          { return c.t }
func (c *breakerClock) advance(d time.Duration) { c.t = c.t.Add(d) }

func newTestBreaker(threshold int, cooldown time.Duration, reg *obsv.Registry) (*Breaker, *breakerClock) {
	clk := &breakerClock{t: time.Unix(0, 0)}
	return NewBreaker(BreakerConfig{
		FailThreshold: threshold,
		Cooldown:      cooldown,
		Metrics:       reg,
		Now:           clk.now,
	}), clk
}

func TestBreakerTripsAtThreshold(t *testing.T) {
	b, _ := newTestBreaker(3, time.Second, nil)
	for i := 0; i < 2; i++ {
		b.OnFailure()
		if !b.Allow() {
			t.Fatalf("breaker refused after %d failures (threshold 3)", i+1)
		}
	}
	if b.Failures() != 2 {
		t.Fatalf("Failures = %d, want 2", b.Failures())
	}
	b.OnFailure()
	if b.State() != BreakerOpen {
		t.Fatalf("state = %v after threshold, want open", b.State())
	}
	if b.Allow() {
		t.Fatal("open breaker admitted a request before cooldown")
	}
}

func TestBreakerSuccessResetsFailureStreak(t *testing.T) {
	b, _ := newTestBreaker(3, time.Second, nil)
	b.OnFailure()
	b.OnFailure()
	b.OnSuccess()
	b.OnFailure()
	b.OnFailure()
	if b.State() != BreakerClosed {
		t.Fatal("non-consecutive failures tripped the breaker")
	}
}

func TestBreakerHalfOpenSingleProbe(t *testing.T) {
	b, clk := newTestBreaker(1, time.Second, nil)
	b.OnFailure()
	if b.Allow() {
		t.Fatal("open breaker admitted during cooldown")
	}
	clk.advance(time.Second)
	if !b.Allow() {
		t.Fatal("cooldown elapsed but no probe admitted")
	}
	if b.State() != BreakerHalfOpen {
		t.Fatalf("state = %v, want half-open", b.State())
	}
	// Only one probe may be outstanding.
	if b.Allow() {
		t.Fatal("second concurrent probe admitted")
	}
	b.OnSuccess()
	if b.State() != BreakerClosed {
		t.Fatalf("state = %v after probe success, want closed", b.State())
	}
	if !b.Allow() {
		t.Fatal("closed breaker refused")
	}
}

func TestBreakerFailedProbeReopens(t *testing.T) {
	b, clk := newTestBreaker(1, time.Second, nil)
	b.OnFailure()
	clk.advance(time.Second)
	if !b.Allow() {
		t.Fatal("no probe admitted")
	}
	b.OnFailure() // probe failed
	if b.State() != BreakerOpen {
		t.Fatalf("state = %v after failed probe, want open", b.State())
	}
	if b.Allow() {
		t.Fatal("re-opened breaker admitted before a fresh cooldown")
	}
	// The cooldown clock restarted at the failed probe.
	clk.advance(time.Second)
	if !b.Allow() {
		t.Fatal("no probe after the second cooldown")
	}
	b.OnSuccess()
	if b.State() != BreakerClosed {
		t.Fatal("breaker did not recover")
	}
}

func TestBreakerLateFailureKeepsCooldownClock(t *testing.T) {
	b, clk := newTestBreaker(1, time.Second, nil)
	b.OnFailure()
	clk.advance(900 * time.Millisecond)
	// A straggling in-flight request fails after the trip: it must not
	// push the half-open horizon out.
	b.OnFailure()
	clk.advance(100 * time.Millisecond)
	if !b.Allow() {
		t.Fatal("late failure restarted the cooldown clock")
	}
}

func TestBreakerMetrics(t *testing.T) {
	reg := obsv.NewRegistry()
	b, clk := newTestBreaker(1, time.Second, reg)
	b.OnFailure()
	if v := reg.Counter("flow.breaker.trips").Value(); v != 1 {
		t.Fatalf("trips = %d, want 1", v)
	}
	if v := reg.Gauge("flow.breaker.open").Value(); v != 1 {
		t.Fatalf("open = %d, want 1", v)
	}
	clk.advance(time.Second)
	b.Allow()
	if v := reg.Counter("flow.breaker.probes").Value(); v != 1 {
		t.Fatalf("probes = %d, want 1", v)
	}
	b.OnSuccess()
	if v := reg.Gauge("flow.breaker.open").Value(); v != 0 {
		t.Fatalf("open = %d after recovery, want 0", v)
	}
	// A failed probe re-trips but must not double-count the open gauge.
	b.OnFailure()
	clk.advance(time.Second)
	b.Allow()
	b.OnFailure()
	clk.advance(time.Second)
	b.Allow()
	b.OnSuccess()
	if v := reg.Gauge("flow.breaker.open").Value(); v != 0 {
		t.Fatalf("open = %d after second recovery, want 0", v)
	}
}

func TestPacerFloor(t *testing.T) {
	p := NewPacer(PacerConfig{MaxDecimation: 16, RecoverAfter: 2})
	if p.Decimation() != 1 {
		t.Fatalf("fresh pacer decimation = %d, want 1", p.Decimation())
	}
	p.Floor()
	if p.Decimation() != 16 {
		t.Fatalf("Decimation = %d after Floor, want 16", p.Decimation())
	}
	// Floor is idempotent and recovery still works from the floor.
	p.Floor()
	if p.Decimation() != 16 {
		t.Fatal("Floor not idempotent")
	}
	for i := 0; i < 64; i++ {
		p.OnSuccess()
	}
	if p.Decimation() >= 16 {
		t.Fatalf("Decimation = %d after sustained success, want recovery", p.Decimation())
	}
}
