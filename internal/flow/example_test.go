package flow_test

import (
	"errors"
	"fmt"
	"time"

	"cad3/internal/flow"
)

// Example walks the full flow-control loop: a bounded gate with the
// priority-shedding policy admits telemetry until pressure builds, sheds
// it once occupancy crosses the threshold (while warnings keep flowing),
// and hands refused producers a retry-after hint; draining the queue
// returns credits and reopens admission.
func Example() {
	gate := flow.NewGate(flow.GateConfig{
		Capacity:  4,
		Policy:    flow.PriorityShed{ShedFrac: 0.75},
		RetryHint: 5 * time.Millisecond,
	})

	// Telemetry is admitted while occupancy is under 75% of capacity.
	for i := 1; i <= 5; i++ {
		err := gate.Admit(flow.ClassTelemetry)
		fmt.Printf("telemetry %d: admitted=%v\n", i, err == nil)
	}

	// Under the same pressure a warning is never refused.
	fmt.Printf("warning: admitted=%v\n", gate.Admit(flow.ClassWarning) == nil)

	// A refused producer backs off by the gate's hint instead of retrying.
	if err := gate.Admit(flow.ClassTelemetry); errors.Is(err, flow.ErrBackpressure) {
		hint, _ := flow.RetryAfter(err)
		fmt.Printf("backpressure, retry after %v\n", hint)
	}

	// The consumer drains two messages: credits return, admission reopens.
	gate.Release(2)
	fmt.Printf("after drain: admitted=%v occupancy=%d\n",
		gate.Admit(flow.ClassTelemetry) == nil, gate.Occupancy())

	fmt.Printf("shed telemetry=%d warnings=%d\n",
		gate.Stats().Shed[flow.ClassTelemetry], gate.Stats().Shed[flow.ClassWarning])

	// Output:
	// telemetry 1: admitted=true
	// telemetry 2: admitted=true
	// telemetry 3: admitted=true
	// telemetry 4: admitted=false
	// telemetry 5: admitted=false
	// warning: admitted=true
	// backpressure, retry after 5ms
	// after drain: admitted=true occupancy=3
	// shed telemetry=3 warnings=0
}

// ExampleBatchController shows the AIMD loop that replaces the fixed
// micro-batch cap: overruns shrink the drain bound fast, saturated batches
// that finish inside the SLO grow it back cautiously.
func ExampleBatchController() {
	ctl := flow.NewBatchController(flow.BatchControllerConfig{
		Min: 32, Max: 256, Initial: 128,
		SLO: 50 * time.Millisecond, Grow: 32, Shrink: 0.5,
	})

	fmt.Println("start:", ctl.Size())
	ctl.Observe(128, 90*time.Millisecond) // overran the 50 ms SLO
	fmt.Println("after overrun:", ctl.Size())
	ctl.Observe(64, 20*time.Millisecond) // saturated, comfortably fast
	fmt.Println("after fast saturated batch:", ctl.Size())
	ctl.Observe(5, time.Millisecond) // idle batch: no evidence, no change
	fmt.Println("after idle batch:", ctl.Size())

	// Output:
	// start: 128
	// after overrun: 64
	// after fast saturated batch: 96
	// after idle batch: 96
}
