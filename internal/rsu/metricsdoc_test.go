package rsu

// Metric-inventory conformance: OBSERVABILITY.md promises "every name the
// substrate emits is listed below; there are no undocumented metrics".
// This test holds the document to that promise in both directions, the
// same way linkcheck holds the cross-references: it parses the three
// inventory tables, stands up one hermetic deployment that exercises
// every registering component on a single obsv.Registry, and diffs the
// snapshot against the documented names. A metric added to the code
// without a table row fails, and so does a table row whose metric no
// component registers anymore.

import (
	"errors"
	"os"
	"path/filepath"
	"regexp"
	"strings"
	"testing"
	"time"

	"cad3/internal/city"
	"cad3/internal/flow"
	"cad3/internal/geo"
	"cad3/internal/netem"
	"cad3/internal/obsv"
	"cad3/internal/scenario"
	"cad3/internal/stream"
)

// docMetric is one documented metric name, compiled to a matcher because
// the inventory uses `<node>`, `<topic>`, `<class>` and `<pacer>`
// placeholders for instance-keyed names.
type docMetric struct {
	name string
	re   *regexp.Regexp
}

func (d docMetric) matches(name string) bool { return d.re.MatchString(name) }

// compileDocName turns a documented name into an anchored regexp,
// replacing each <placeholder> with a wildcard (`<pacer>` expands to a
// dotted prefix like "flow.pacer", so the wildcard must cross dots).
func compileDocName(t *testing.T, name string) docMetric {
	t.Helper()
	var b strings.Builder
	b.WriteString("^")
	rest := name
	for {
		open := strings.Index(rest, "<")
		if open < 0 {
			b.WriteString(regexp.QuoteMeta(rest))
			break
		}
		close := strings.Index(rest, ">")
		if close < open {
			t.Fatalf("malformed placeholder in documented metric %q", name)
		}
		b.WriteString(regexp.QuoteMeta(rest[:open]))
		b.WriteString(".+")
		rest = rest[close+1:]
	}
	b.WriteString("$")
	return docMetric{name: name, re: regexp.MustCompile(b.String())}
}

// metricTableRow extracts the first backticked cell of an inventory
// table row.
var metricTableRow = regexp.MustCompile("^\\|\\s*`([^`]+)`")

// parseMetricInventory reads the Counters / Gauges / Histograms tables
// out of OBSERVABILITY.md.
func parseMetricInventory(t *testing.T) (counters, gauges, hists []docMetric) {
	t.Helper()
	data, err := os.ReadFile(filepath.Join("..", "..", "OBSERVABILITY.md"))
	if err != nil {
		t.Fatalf("read inventory: %v", err)
	}
	var section *[]docMetric
	for _, line := range strings.Split(string(data), "\n") {
		trimmed := strings.TrimSpace(line)
		switch {
		case strings.HasPrefix(trimmed, "### Counters"):
			section = &counters
			continue
		case strings.HasPrefix(trimmed, "### Gauges"):
			section = &gauges
			continue
		case strings.HasPrefix(trimmed, "### Histograms"):
			section = &hists
			continue
		case strings.HasPrefix(trimmed, "#"):
			section = nil
			continue
		}
		if section == nil {
			continue
		}
		if m := metricTableRow.FindStringSubmatch(trimmed); m != nil && m[1] != "name" {
			*section = append(*section, compileDocName(t, m[1]))
		}
	}
	if len(counters) < 10 || len(gauges) < 10 || len(hists) < 3 {
		t.Fatalf("inventory parse looks broken: %d counters, %d gauges, %d histograms",
			len(counters), len(gauges), len(hists))
	}
	return counters, gauges, hists
}

// registerEverything stands up every metric-emitting component of the
// substrate on the one registry and drives the supervisor through a
// healthy round, a failed restart and a successful restart, so the
// event-keyed `<node>.*` counters register too. Everything else
// registers eagerly at construction.
func registerEverything(t *testing.T, reg *obsv.Registry) {
	t.Helper()
	_, _, mw, cad := trainedDetectors(t)

	net := geo.NewNetwork(0)
	if err := net.AddSegment(lineSeg(t, 1, geo.Motorway)); err != nil {
		t.Fatal(err)
	}
	if err := net.AddSegment(lineSeg(t, 2, geo.MotorwayLink)); err != nil {
		t.Fatal(err)
	}
	if err := net.Connect(1, 2); err != nil {
		t.Fatal(err)
	}

	// Flow-controlled broker: registers broker.* plus the per-topic
	// flow.<topic>.{admitted,rejected,shed.<class>,occupancy} family for
	// the three CAD3 topics the node provisions.
	mwBroker := stream.NewBroker(stream.BrokerConfig{Metrics: reg, FlowCapacity: 64})
	lkBroker := stream.NewBroker(stream.BrokerConfig{})
	cluster, err := NewCluster(net, []Config{
		// The Mw node carries the registry: pipeline.* histograms, the
		// rsu.* / flow.node.* gauge views, the microbatch.* engine
		// metrics, and (via BatchSLO) the adaptive flow.node.batch_limit
		// controller.
		{Name: "Mw", Road: 1, Detector: mw, Client: stream.NewInProcClient(mwBroker),
			Metrics: reg, BatchSLO: 50 * time.Millisecond},
		{Name: "Link", Road: 2, Detector: cad, Client: stream.NewInProcClient(lkBroker)},
	})
	if err != nil {
		t.Fatal(err)
	}

	// Vehicle-side pacer and the 802.11p channel model.
	flow.NewPacer(flow.PacerConfig{Metrics: reg})
	// The scenario engine registers its scenario.* family eagerly at
	// construction.
	scenario.New(scenario.Config{Metrics: reg})
	if _, err := netem.NewMedium(netem.MediumConfig{Metrics: reg}); err != nil {
		t.Fatal(err)
	}

	// Pooled wire client against a live TCP server: registers the wire.*
	// counters/gauges and, through the per-link circuit breakers, the
	// wire.breaker.* family. One produce exercises the request path.
	wireBroker := stream.NewBroker(stream.BrokerConfig{})
	srv, err := stream.NewServer(wireBroker, "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	pool, err := stream.DialPool(srv.Addr(), stream.PoolConfig{Metrics: reg})
	if err != nil {
		t.Fatal(err)
	}
	defer pool.Close()
	if err := pool.CreateTopic("wire-probe", 1); err != nil {
		t.Fatal(err)
	}
	if _, _, err := pool.Produce("wire-probe", 0, nil, []byte("x")); err != nil {
		t.Fatal(err)
	}

	// Replicated cluster control plane: the election.* / repl.catchups /
	// repl.isr_drops / repl.isr_size / repl.lag family registers at
	// ReplicaSet construction; the broker-side repl.records / repl.fenced
	// pair registered with mwBroker above. One acks=all produce drives
	// replication; rebalance.* registers with a metrics-carrying group.
	rset, err := stream.NewReplicaSet(stream.ReplicaSetConfig{Metrics: reg},
		stream.Replica{ID: "r1", Broker: stream.NewBroker(stream.BrokerConfig{})},
		stream.Replica{ID: "r2", Broker: stream.NewBroker(stream.BrokerConfig{})})
	if err != nil {
		t.Fatal(err)
	}
	if err := rset.CreateTopic("repl-probe", 1); err != nil {
		t.Fatal(err)
	}
	if _, _, err := rset.Produce("repl-probe", 0, nil, []byte("x"), stream.AckAll); err != nil {
		t.Fatal(err)
	}
	if _, err := stream.NewGroupCfg(stream.GroupConfig{
		Client: rset.Client(stream.AckLeader), Topic: "repl-probe", Metrics: reg,
	}); err != nil {
		t.Fatal(err)
	}

	// Sharded city driver: construction registers the whole city.* /
	// shard.* family — settlement counters, fleet gauges, the dwell/skew
	// load gauges — plus the cross-shard router's shard.router.* family.
	// The road network is shared with the cluster above (read-only).
	if _, err := city.NewDriver(city.Config{
		Network: net, Shards: 2, Vehicles: 4, Replicas: 2, Metrics: reg,
	}); err != nil {
		t.Fatal(err)
	}

	// Supervision events. A virtual clock steps past the restart backoff;
	// a rewire hook that declines, then supplies a working client, then
	// declines again, combined with a restart hook that fails once then
	// succeeds, covers the full counter family: heartbeat.{ok,fail},
	// checkpoints, rewired, restarts, restart.fail and the degraded.*
	// deltas (published every healthy probe, delta or not).
	now := time.Unix(0, 0)
	failNext := true
	restart := func(name string, cp *Checkpoint) (*Node, error) {
		if failNext {
			failNext = false
			return nil, errors.New("injected restart failure")
		}
		b := stream.NewBroker(stream.BrokerConfig{})
		return Recover(Config{Client: stream.NewInProcClient(b)}, cp)
	}
	var rewireBroker *stream.Broker
	rewires := 0
	rewire := func(name string) (stream.Client, bool) {
		rewires++
		if rewires != 2 {
			return nil, false // no promoted replica available yet
		}
		rewireBroker = stream.NewBroker(stream.BrokerConfig{})
		for _, topic := range []string{stream.TopicInData, stream.TopicOutData, stream.TopicCoData} {
			if err := rewireBroker.CreateTopic(topic, stream.DefaultPartitions); err != nil {
				t.Fatal(err)
			}
		}
		return stream.NewInProcClient(rewireBroker), true
	}
	sup, err := NewSupervisor(SupervisorConfig{
		Cluster:       cluster,
		Restart:       restart,
		Rewire:        rewire,
		FailThreshold: 1,
		Seed:          7,
		Metrics:       reg,
		Now:           func() time.Time { return now },
	})
	if err != nil {
		t.Fatal(err)
	}
	if got := sup.CheckOnce(); got != 0 {
		t.Fatalf("unhealthy = %d on a healthy cluster", got)
	}
	if err := mwBroker.Close(); err != nil {
		t.Fatal(err)
	}
	if got := sup.CheckOnce(); got != 1 {
		t.Fatalf("unhealthy = %d after failed restart, want 1", got)
	}
	if got := sup.CheckOnce(); got != 0 {
		t.Fatalf("unhealthy = %d after rewire, want 0", got)
	}
	if err := rewireBroker.Close(); err != nil {
		t.Fatal(err)
	}
	now = now.Add(time.Minute) // clear the restart backoff
	if got := sup.CheckOnce(); got != 0 {
		t.Fatalf("unhealthy = %d after restart, want 0", got)
	}
}

// diffInventory reports registered-but-undocumented names and
// documented-but-unregistered rows for one metric kind.
func diffInventory(t *testing.T, kind string, registered []string, doc []docMetric) {
	t.Helper()
	matched := make(map[string]bool, len(doc))
	for _, name := range registered {
		found := false
		for _, d := range doc {
			if d.matches(name) {
				matched[d.name] = true
				found = true
			}
		}
		if !found {
			t.Errorf("%s %q is registered but missing from OBSERVABILITY.md's inventory", kind, name)
		}
	}
	for _, d := range doc {
		if !matched[d.name] {
			t.Errorf("%s `%s` is documented in OBSERVABILITY.md but nothing registers it", kind, d.name)
		}
	}
}

// TestMetricInventoryMatchesDocs fails when the code's registered metric
// names and OBSERVABILITY.md's inventory drift apart, in either
// direction.
func TestMetricInventoryMatchesDocs(t *testing.T) {
	counters, gauges, hists := parseMetricInventory(t)
	reg := obsv.NewRegistry()
	registerEverything(t, reg)
	snap := reg.Snapshot()

	diffInventory(t, "counter", mapKeys(snap.Counters), counters)
	diffInventory(t, "gauge", mapKeys(snap.Gauges), gauges)
	histNames := make([]string, 0, len(snap.Histograms))
	for name := range snap.Histograms {
		histNames = append(histNames, name)
	}
	diffInventory(t, "histogram", histNames, hists)
}

func mapKeys(m map[string]int64) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	return keys
}
