package rsu

import (
	"context"
	"fmt"
	"log/slog"
	"math/rand"
	"sort"
	"sync"
	"time"

	"cad3/internal/obsv"
	"cad3/internal/stream"
)

// Supervisor keeps a cluster alive: it heartbeats every node, checkpoints
// the healthy ones, and when a node stops answering it restarts it from
// the last good checkpoint with jittered exponential backoff, swapping
// the replacement into the cluster topology via ReplaceNode. While a node
// is down — and after it recovers without its CO-DATA priors — the
// supervisor accounts the degradation (CAD3→AD3 fallbacks, stale-summary
// evictions, dropped handovers) into an obsv.Registry, making the
// paper's silent failure modes measurable and live on the /metrics and
// /health debug endpoints.
type Supervisor struct {
	cfg SupervisorConfig

	mu    sync.Mutex
	rng   *rand.Rand
	nodes map[string]*supervised
}

// supervised is the per-node supervision state.
type supervised struct {
	health     NodeHealth
	checkpoint *Checkpoint
	backoff    time.Duration
	nextTry    time.Time
	degraded   DegradedStats // last observed values, for delta accounting
}

// NodeHealth is one node's supervision status.
type NodeHealth struct {
	Name string
	// Healthy reports the last heartbeat's outcome.
	Healthy bool
	// ConsecutiveFails counts heartbeat failures since the last success.
	ConsecutiveFails int
	// Restarts counts recoveries performed for this node.
	Restarts int
	// LastError is the most recent heartbeat or restart error, "" when
	// healthy.
	LastError string
	// Degraded holds the node's cumulative degraded-mode counters as of
	// the last successful observation.
	Degraded DegradedStats
}

// SupervisorConfig configures a Supervisor.
type SupervisorConfig struct {
	// Cluster is the supervised cluster. Required.
	Cluster *Cluster
	// Restart builds a replacement node from the last checkpoint (nil
	// when none was taken yet). Nil disables restarts: the supervisor
	// only observes and accounts.
	Restart func(name string, cp *Checkpoint) (*Node, error)
	// Rewire, when set, is consulted once a node crosses the failure
	// threshold, before any restart: it returns a replacement broker
	// client (e.g. bound to a newly elected partition leader after the
	// node's broker died), or ok=false when no replacement is available
	// yet. A successful rewire (Node.Rewire plus a fresh heartbeat) keeps
	// the node's in-memory state — summaries, priors, offsets — instead
	// of paying a checkpoint restore.
	Rewire func(name string) (stream.Client, bool)
	// FailThreshold is the number of consecutive heartbeat failures
	// before a restart is attempted. Values <= 0 select 2.
	FailThreshold int
	// MaxRestarts caps recoveries per node. Values <= 0 select 5.
	MaxRestarts int
	// CheckInterval paces Run's heartbeat loop. Values <= 0 select 1 s.
	CheckInterval time.Duration
	// BaseBackoff is the initial restart delay, doubling per failed
	// recovery up to MaxBackoff. Values <= 0 select 100 ms / 5 s.
	BaseBackoff time.Duration
	MaxBackoff  time.Duration
	// Jitter spreads restart delays by a uniform factor in [1-J, 1+J] so
	// simultaneous failures do not restart in lockstep. Values outside
	// (0, 1] select 0.2.
	Jitter float64
	// Seed drives the jitter PRNG (deterministic tests). Zero seeds from
	// the wall clock.
	Seed int64
	// Metrics receives supervision events and degraded-mode deltas as
	// counters keyed "<node>.<event>", plus the cluster-wide
	// "supervisor.unhealthy" gauge. Nil discards them. (This replaces the
	// deprecated metrics.CounterSet field.)
	Metrics *obsv.Registry
	// Now injects the clock. Nil selects time.Now.
	Now func() time.Time
	// Logger receives supervision events. Nil discards them.
	Logger *slog.Logger
}

func (cfg SupervisorConfig) withDefaults() SupervisorConfig {
	if cfg.FailThreshold <= 0 {
		cfg.FailThreshold = 2
	}
	if cfg.MaxRestarts <= 0 {
		cfg.MaxRestarts = 5
	}
	if cfg.CheckInterval <= 0 {
		cfg.CheckInterval = time.Second
	}
	if cfg.BaseBackoff <= 0 {
		cfg.BaseBackoff = 100 * time.Millisecond
	}
	if cfg.MaxBackoff <= 0 {
		cfg.MaxBackoff = 5 * time.Second
	}
	if cfg.Jitter <= 0 || cfg.Jitter > 1 {
		cfg.Jitter = 0.2
	}
	if cfg.Seed == 0 {
		cfg.Seed = time.Now().UnixNano()
	}
	if cfg.Now == nil {
		cfg.Now = time.Now
	}
	if cfg.Logger == nil {
		cfg.Logger = slog.New(discardHandler{})
	}
	return cfg
}

// NewSupervisor creates a supervisor over the cluster.
func NewSupervisor(cfg SupervisorConfig) (*Supervisor, error) {
	if cfg.Cluster == nil {
		return nil, fmt.Errorf("rsu: supervisor requires a cluster")
	}
	cfg = cfg.withDefaults()
	s := &Supervisor{
		cfg:   cfg,
		rng:   rand.New(rand.NewSource(cfg.Seed)),
		nodes: make(map[string]*supervised),
	}
	for _, n := range cfg.Cluster.Nodes() {
		s.nodes[n.Name()] = &supervised{
			health:  NodeHealth{Name: n.Name(), Healthy: true},
			backoff: cfg.BaseBackoff,
		}
	}
	return s, nil
}

// jittered scales d by a uniform factor in [1-j, 1+j]. Callers hold s.mu.
func (s *Supervisor) jittered(d time.Duration) time.Duration {
	f := 1 + s.cfg.Jitter*(2*s.rng.Float64()-1)
	return time.Duration(float64(d) * f)
}

// count adds a delta to the named per-node counter.
func (s *Supervisor) count(node, event string, delta int64) {
	if s.cfg.Metrics != nil {
		s.cfg.Metrics.AddCounter(node+"."+event, delta)
	}
}

// CheckOnce heartbeats every node: healthy nodes are checkpointed and
// their degraded-mode counter deltas published; nodes past the failure
// threshold are restarted from their last checkpoint (subject to backoff
// and the restart budget). Returns the number of unhealthy nodes.
func (s *Supervisor) CheckOnce() int {
	unhealthy := 0
	for _, n := range s.cfg.Cluster.Nodes() {
		if !s.checkNode(n) {
			unhealthy++
		}
	}
	if s.cfg.Metrics != nil {
		s.cfg.Metrics.Gauge("supervisor.unhealthy").Set(int64(unhealthy))
	}
	return unhealthy
}

// checkNode heartbeats one node, reporting whether it is healthy.
func (s *Supervisor) checkNode(n *Node) bool {
	name := n.Name()
	s.mu.Lock()
	sv, ok := s.nodes[name]
	if !ok {
		sv = &supervised{
			health:  NodeHealth{Name: name},
			backoff: s.cfg.BaseBackoff,
		}
		s.nodes[name] = sv
	}
	s.mu.Unlock()

	err := n.Ping()
	now := s.cfg.Now()

	s.mu.Lock()
	defer s.mu.Unlock()
	if err == nil {
		sv.health.Healthy = true
		sv.health.ConsecutiveFails = 0
		sv.health.LastError = ""
		sv.backoff = s.cfg.BaseBackoff
		sv.nextTry = time.Time{}
		s.count(name, "heartbeat.ok", 1)
		s.publishDegraded(sv, n.Stats().DegradedCounters())
		if cp, cperr := n.Checkpoint(); cperr == nil {
			sv.checkpoint = cp
			s.count(name, "checkpoints", 1)
		} else {
			s.cfg.Logger.Warn("checkpoint failed", "rsu", name, "err", cperr)
		}
		return true
	}

	sv.health.Healthy = false
	sv.health.ConsecutiveFails++
	sv.health.LastError = err.Error()
	s.count(name, "heartbeat.fail", 1)
	s.cfg.Logger.Warn("heartbeat failed",
		"rsu", name, "fails", sv.health.ConsecutiveFails, "err", err)

	// Broker failover first: if a replacement client exists (a replica
	// was promoted), rewiring the live node is strictly cheaper than a
	// checkpoint restart and loses none of its in-memory state.
	if s.cfg.Rewire != nil && sv.health.ConsecutiveFails >= s.cfg.FailThreshold {
		s.mu.Unlock()
		client, ok := s.cfg.Rewire(name)
		var rerr error
		if ok {
			if rerr = n.Rewire(client); rerr == nil {
				rerr = n.Ping()
			}
		}
		s.mu.Lock()
		if ok && rerr == nil {
			sv.health.Healthy = true
			sv.health.ConsecutiveFails = 0
			sv.health.LastError = ""
			sv.backoff = s.cfg.BaseBackoff
			sv.nextTry = time.Time{}
			s.count(name, "rewired", 1)
			s.cfg.Logger.Info("node rewired to replacement broker", "rsu", name)
			return true
		}
		if ok {
			sv.health.LastError = rerr.Error()
			s.cfg.Logger.Warn("rewire failed", "rsu", name, "err", rerr)
		}
	}

	if s.cfg.Restart == nil ||
		sv.health.ConsecutiveFails < s.cfg.FailThreshold ||
		sv.health.Restarts >= s.cfg.MaxRestarts ||
		(!sv.nextTry.IsZero() && now.Before(sv.nextTry)) {
		return false
	}

	// Restart from the last good checkpoint, with backoff against the
	// next attempt if this one fails too.
	delay := s.jittered(sv.backoff)
	sv.nextTry = now.Add(delay)
	sv.backoff *= 2
	if sv.backoff > s.cfg.MaxBackoff {
		sv.backoff = s.cfg.MaxBackoff
	}
	cp := sv.checkpoint
	s.mu.Unlock()
	repl, rerr := s.cfg.Restart(name, cp)
	if rerr == nil {
		rerr = s.cfg.Cluster.ReplaceNode(name, repl)
	}
	s.mu.Lock()
	if rerr != nil {
		sv.health.LastError = rerr.Error()
		s.count(name, "restart.fail", 1)
		s.cfg.Logger.Error("restart failed", "rsu", name, "err", rerr)
		return false
	}
	sv.health.Restarts++
	sv.health.Healthy = true
	sv.health.ConsecutiveFails = 0
	sv.health.LastError = ""
	sv.backoff = s.cfg.BaseBackoff
	sv.nextTry = time.Time{}
	s.count(name, "restarts", 1)
	s.cfg.Logger.Info("node restarted",
		"rsu", name, "restarts", sv.health.Restarts, "fromCheckpoint", cp != nil,
		"backoffDelay", delay)
	return true
}

// publishDegraded adds the node's degraded-counter deltas since the last
// observation to the counter set. Callers hold s.mu.
func (s *Supervisor) publishDegraded(sv *supervised, d DegradedStats) {
	name := sv.health.Name
	// A restarted node's counters reset to zero; clamp deltas at zero so
	// the published counters stay monotonic.
	s.count(name, "degraded.fallbacks", d.Fallbacks-sv.degraded.Fallbacks)
	s.count(name, "degraded.stale_summaries", d.StaleSummaries-sv.degraded.StaleSummaries)
	s.count(name, "degraded.dropped_handovers", d.DroppedHandovers-sv.degraded.DroppedHandovers)
	s.count(name, "degraded.shed_stale", d.ShedStale-sv.degraded.ShedStale)
	sv.degraded = d
	sv.health.Degraded = d
}

// Health returns every node's supervision status, sorted by name.
func (s *Supervisor) Health() []NodeHealth {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]NodeHealth, 0, len(s.nodes))
	for _, sv := range s.nodes {
		out = append(out, sv.health)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// LastCheckpoint returns the most recent checkpoint taken for the named
// node, or ok=false if none was taken yet.
func (s *Supervisor) LastCheckpoint(name string) (*Checkpoint, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	sv, ok := s.nodes[name]
	if !ok || sv.checkpoint == nil {
		return nil, false
	}
	return sv.checkpoint, true
}

// Run heartbeats the cluster every CheckInterval until the context ends.
func (s *Supervisor) Run(ctx context.Context) error {
	ticker := time.NewTicker(s.cfg.CheckInterval)
	defer ticker.Stop()
	for {
		select {
		case <-ctx.Done():
			return ctx.Err()
		case <-ticker.C:
			s.CheckOnce()
		}
	}
}
