package rsu

import (
	"context"
	"errors"
	"testing"
	"time"

	"cad3/internal/geo"
	"cad3/internal/stream"
)

// clusterFixture builds a 2-node cluster over a motorway -> link corridor.
func clusterFixture(t *testing.T) (*Cluster, *geo.Network, stream.Client, stream.Client) {
	t.Helper()
	_, link, mw, cad := trainedDetectors(t)

	net := geo.NewNetwork(0)
	mwSeg := lineSeg(t, 1, geo.Motorway)
	lkSeg := lineSeg(t, 2, geo.MotorwayLink)
	if err := net.AddSegment(mwSeg); err != nil {
		t.Fatal(err)
	}
	if err := net.AddSegment(lkSeg); err != nil {
		t.Fatal(err)
	}
	if err := net.Connect(1, 2); err != nil {
		t.Fatal(err)
	}

	mwBroker := stream.NewBroker(stream.BrokerConfig{})
	lkBroker := stream.NewBroker(stream.BrokerConfig{})
	mwClient := stream.NewInProcClient(mwBroker)
	lkClient := stream.NewInProcClient(lkBroker)

	cluster, err := NewCluster(net, []Config{
		{Name: "Mw", Road: 1, Detector: mw, Client: mwClient},
		{Name: "Link", Road: 2, Detector: cad, Client: lkClient},
	})
	if err != nil {
		t.Fatal(err)
	}
	_ = link
	return cluster, net, mwClient, lkClient
}

func lineSeg(t *testing.T, id geo.SegmentID, rt geo.RoadType) *geo.Segment {
	t.Helper()
	start := geo.Destination(geo.ShenzhenCenter, float64(id)*10, float64(id)*1000)
	s, err := geo.NewSegment(id, rt, "seg", []geo.Point{start, geo.Destination(start, 90, 500)})
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestClusterWiringAndLookup(t *testing.T) {
	cluster, _, _, _ := clusterFixture(t)
	if len(cluster.Nodes()) != 2 {
		t.Fatalf("nodes = %d", len(cluster.Nodes()))
	}
	n, err := cluster.Node(1)
	if err != nil || n.Name() != "Mw" {
		t.Errorf("Node(1) = %v, %v", n, err)
	}
	if _, err := cluster.Node(99); !errors.Is(err, ErrNoRSU) {
		t.Errorf("err = %v, want ErrNoRSU", err)
	}
	n, err = cluster.NodeByName("Link")
	if err != nil || n.Road() != 2 {
		t.Errorf("NodeByName = %v, %v", n, err)
	}
	if _, err := cluster.NodeByName("ghost"); !errors.Is(err, ErrNoRSU) {
		t.Errorf("err = %v, want ErrNoRSU", err)
	}
}

func TestClusterHandoverThroughTopology(t *testing.T) {
	cluster, _, mwClient, _ := clusterFixture(t)

	// Car 9 drives the motorway abnormally.
	for i := 0; i < 4; i++ {
		sendRecord(t, mwClient, mkRec(9, geo.Motorway, 140, 14))
	}
	if _, err := cluster.StepAll(); err != nil {
		t.Fatal(err)
	}
	// Handover along the connectivity edge 1 -> 2.
	if err := cluster.Handover(9, 1, 2); err != nil {
		t.Fatal(err)
	}
	// The reverse direction is wired too (links connect both ways).
	if err := cluster.Handover(9, 2, 1); err != nil {
		t.Fatal(err)
	}
	// Unknown roads and non-neighbors fail cleanly.
	if err := cluster.Handover(9, 99, 2); !errors.Is(err, ErrNoRSU) {
		t.Errorf("err = %v, want ErrNoRSU", err)
	}
	if err := cluster.Handover(9, 1, 77); !errors.Is(err, ErrNoNeighbor) {
		t.Errorf("err = %v, want ErrNoNeighbor", err)
	}

	link, _ := cluster.NodeByName("Link")
	if _, err := cluster.StepAll(); err != nil {
		t.Fatal(err)
	}
	if link.StoredSummaries() != 1 {
		t.Errorf("link stored %d summaries, want 1", link.StoredSummaries())
	}
	stats := cluster.Stats()
	if stats["Mw"].SummariesSent != 1 {
		t.Errorf("stats = %+v", stats["Mw"])
	}
}

// TestClusterHandoverDeadNode drives the third handover error path: the
// topology knows the neighbor but its broker is dead, so the send fails,
// the drop is accounted, and the history survives for a later retry.
func TestClusterHandoverDeadNode(t *testing.T) {
	f := newSupervisedFixture(t)

	for i := 0; i < 4; i++ {
		sendRecord(t, f.mwClient, mkRec(9, geo.Motorway, 140, 14))
	}
	if _, err := f.cluster.StepAll(); err != nil {
		t.Fatal(err)
	}
	if err := f.lkBroker.Close(); err != nil {
		t.Fatal(err)
	}

	err := f.cluster.Handover(9, 1, 2)
	if !errors.Is(err, stream.ErrBrokerClosed) {
		t.Fatalf("handover to dead node: err = %v, want ErrBrokerClosed", err)
	}
	mw, _ := f.cluster.NodeByName("Mw")
	if got := mw.Stats().DroppedHandovers; got != 1 {
		t.Errorf("DroppedHandovers = %d, want 1", got)
	}
	// The history is kept, not consumed: the car is still tracked so a
	// healed link can deliver the summary later.
	if mw.TrackedCars() != 1 {
		t.Errorf("TrackedCars after dropped handover = %d, want 1", mw.TrackedCars())
	}

	// A second attempt against the same dead broker accounts again...
	if err := f.cluster.Handover(9, 1, 2); err == nil {
		t.Fatal("second handover to dead node should fail")
	}
	if got := mw.Stats().DroppedHandovers; got != 2 {
		t.Errorf("DroppedHandovers after retry = %d, want 2", got)
	}
	// ...and a handover with no accumulated history is a clean no-op even
	// with the neighbor down (nothing to send, nothing to drop).
	if err := f.cluster.Handover(555, 1, 2); err != nil {
		t.Errorf("no-history handover = %v, want nil", err)
	}
	if got := mw.Stats().DroppedHandovers; got != 2 {
		t.Errorf("DroppedHandovers after no-op = %d, want 2", got)
	}
}

func TestClusterValidation(t *testing.T) {
	_, link, mwDet, _ := trainedDetectors(t)
	_ = link
	net := geo.NewNetwork(0)
	seg := lineSeg(t, 1, geo.Motorway)
	_ = net.AddSegment(seg)
	client := stream.NewInProcClient(stream.NewBroker(stream.BrokerConfig{}))

	if _, err := NewCluster(nil, []Config{{Road: 1, Detector: mwDet, Client: client}}); err == nil {
		t.Error("want error for nil network")
	}
	if _, err := NewCluster(net, nil); err == nil {
		t.Error("want error for empty configs")
	}
	dup := []Config{
		{Name: "a", Road: 1, Detector: mwDet, Client: client},
		{Name: "b", Road: 1, Detector: mwDet, Client: client},
	}
	if _, err := NewCluster(net, dup); err == nil {
		t.Error("want error for duplicate road")
	}
	c2 := stream.NewInProcClient(stream.NewBroker(stream.BrokerConfig{}))
	seg2 := lineSeg(t, 2, geo.MotorwayLink)
	_ = net.AddSegment(seg2)
	dupName := []Config{
		{Name: "a", Road: 1, Detector: mwDet, Client: client},
		{Name: "a", Road: 2, Detector: mwDet, Client: c2},
	}
	if _, err := NewCluster(net, dupName); err == nil {
		t.Error("want error for duplicate name")
	}
	// Default name assignment.
	ok := []Config{{Road: 1, Detector: mwDet, Client: client}}
	cluster, err := NewCluster(net, ok)
	if err != nil {
		t.Fatal(err)
	}
	if cluster.Nodes()[0].Name() != "rsu-1" {
		t.Errorf("default name = %q", cluster.Nodes()[0].Name())
	}
}

func TestClusterRunWallClock(t *testing.T) {
	cluster, _, mwClient, lkClient := clusterFixture(t)
	ctx, cancel := context.WithTimeout(context.Background(), 500*time.Millisecond)
	defer cancel()
	done := make(chan error, 1)
	go func() { done <- cluster.Run(ctx) }()

	sendRecord(t, mwClient, mkRec(1, geo.Motorway, 140, 14))
	sendRecord(t, lkClient, mkRec(2, geo.MotorwayLink, 90, 14))
	deadline := time.Now().Add(2 * time.Second)
	for time.Now().Before(deadline) {
		st := cluster.Stats()
		if st["Mw"].Warnings >= 1 && st["Link"].Warnings >= 1 {
			break
		}
		time.Sleep(10 * time.Millisecond)
	}
	cancel()
	if err := <-done; err != nil {
		t.Fatal(err)
	}
	st := cluster.Stats()
	if st["Mw"].Warnings == 0 || st["Link"].Warnings == 0 {
		t.Errorf("stats = %+v", st)
	}
}
