package rsu

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"io"

	"cad3/internal/core"
	"cad3/internal/geo"
	"cad3/internal/obsv"
	"cad3/internal/stream"
)

// CheckpointVersion guards the checkpoint wire format.
const CheckpointVersion = 1

// ErrNilCheckpoint rejects Recover without a checkpoint.
var ErrNilCheckpoint = errors.New("rsu: nil checkpoint")

// Checkpoint is a node's durable state: everything a replacement process
// needs to resume detection where the crashed one stopped. The trained
// detector rides the core persistence bundle; the summary store, summary
// builder and road profile ride their snapshot types; the two consumer
// offset vectors pin the read positions so restored nodes neither skip
// nor re-process records that survived in the broker log.
type Checkpoint struct {
	Version   int             `json:"version"`
	Name      string          `json:"name"`
	Road      int64           `json:"road"`
	TakenAtMs int64           `json:"takenAtMs"`
	Detector  json.RawMessage `json:"detector"`

	Summaries []core.PredictionSummary `json:"summaries,omitempty"`
	Builder   core.BuilderSnapshot     `json:"builder"`
	Profile   ProfileSnapshot          `json:"profile"`

	InOffsets []int64 `json:"inOffsets"`
	CoOffsets []int64 `json:"coOffsets"`

	// Metrics carries the node's observability-registry snapshot so the
	// cumulative counters and latency histograms survive a restart — a
	// recovered node's /metrics continues from the crash point instead of
	// restarting from zero (which would break monotonic-counter consumers).
	Metrics obsv.Snapshot `json:"metrics"`
}

// Checkpoint captures the node's current state. It is safe to call while
// the node is between Step calls (the supervisor checkpoints from its
// heartbeat loop); concurrent Steps see a consistent-enough snapshot
// since every component locks internally, but offsets are captured last
// so a record is re-processed rather than lost on an unlucky interleave.
func (n *Node) Checkpoint() (*Checkpoint, error) {
	var det bytes.Buffer
	if err := core.SaveDetector(&det, n.cfg.Detector); err != nil {
		return nil, fmt.Errorf("rsu %s: checkpoint detector: %w", n.cfg.Name, err)
	}
	return &Checkpoint{
		Version:   CheckpointVersion,
		Name:      n.cfg.Name,
		Road:      int64(n.cfg.Road),
		TakenAtMs: n.cfg.Now().UnixMilli(),
		Detector:  json.RawMessage(det.Bytes()),
		Summaries: n.summaries.Snapshot(),
		Builder:   n.builder.Snapshot(),
		Profile:   n.profile.Snapshot(),
		InOffsets: n.inConsumer.Offsets(),
		CoOffsets: n.coConsumer.Offsets(),
		Metrics:   n.cfg.Metrics.Snapshot(),
	}, nil
}

// EncodeCheckpoint writes the checkpoint as JSON.
func EncodeCheckpoint(w io.Writer, cp *Checkpoint) error {
	if cp == nil {
		return ErrNilCheckpoint
	}
	return json.NewEncoder(w).Encode(cp)
}

// DecodeCheckpoint reads a checkpoint written by EncodeCheckpoint.
func DecodeCheckpoint(r io.Reader) (*Checkpoint, error) {
	var cp Checkpoint
	if err := json.NewDecoder(r).Decode(&cp); err != nil {
		return nil, fmt.Errorf("rsu: decode checkpoint: %w", err)
	}
	if cp.Version != CheckpointVersion {
		return nil, fmt.Errorf("rsu: checkpoint version %d, want %d", cp.Version, CheckpointVersion)
	}
	return &cp, nil
}

// Recover builds a node from a checkpoint: the detector is loaded from
// the checkpoint bundle when cfg.Detector is nil, the summary store,
// builder and road profile are restored, and both consumers are
// positioned at the checkpointed offsets. cfg.Name and cfg.Road default
// to the checkpoint's when unset. The broker behind cfg.Client must hold
// (or have been restored to) a log compatible with the offsets — the
// crash-recovery pairing is stream.RestoreBroker + rsu.Recover.
func Recover(cfg Config, cp *Checkpoint) (*Node, error) {
	if cp == nil {
		return nil, ErrNilCheckpoint
	}
	if cp.Version != CheckpointVersion {
		return nil, fmt.Errorf("rsu: checkpoint version %d, want %d", cp.Version, CheckpointVersion)
	}
	if cfg.Detector == nil {
		det, err := core.LoadDetector(bytes.NewReader(cp.Detector))
		if err != nil {
			return nil, fmt.Errorf("rsu: recover detector: %w", err)
		}
		cfg.Detector = det
	}
	if cfg.Name == "" {
		cfg.Name = cp.Name
	}
	if cfg.Road == 0 {
		cfg.Road = geo.SegmentID(cp.Road)
	}
	n, err := New(cfg)
	if err != nil {
		return nil, err
	}
	n.summaries.Restore(cp.Summaries)
	n.builder.Restore(cp.Builder)
	n.profile.Restore(cp.Profile)
	if err := n.inConsumer.SetOffsets(cp.InOffsets); err != nil {
		return nil, fmt.Errorf("rsu %s: recover %s offsets: %w", cfg.Name, stream.TopicInData, err)
	}
	if err := n.coConsumer.SetOffsets(cp.CoOffsets); err != nil {
		return nil, fmt.Errorf("rsu %s: recover %s offsets: %w", cfg.Name, stream.TopicCoData, err)
	}
	n.cfg.Metrics.Restore(cp.Metrics)
	return n, nil
}
