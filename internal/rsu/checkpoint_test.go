package rsu

import (
	"bytes"
	"errors"
	"testing"

	"cad3/internal/core"
	"cad3/internal/geo"
	"cad3/internal/stream"
	"cad3/internal/trace"
)

// sendSummary produces a CO-DATA prediction summary to the node's broker.
func sendSummary(t *testing.T, client stream.Client, sum core.PredictionSummary) {
	t.Helper()
	payload, err := core.EncodeSummary(sum)
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := client.Produce(stream.TopicCoData, stream.AutoPartition, nil, payload); err != nil {
		t.Fatal(err)
	}
}

// TestCheckpointRecoverResumesWithoutReprocessing is the crash drill: an
// RSU processes part of its backlog, checkpoints, more data arrives, the
// process dies. The broker log is restored from its own snapshot and the
// node from its checkpoint; the recovered node must process exactly the
// records the dead one had not, with its summaries, history and profile
// intact.
func TestCheckpointRecoverResumesWithoutReprocessing(t *testing.T) {
	_, _, _, cad := trainedDetectors(t)
	broker := stream.NewBroker(stream.BrokerConfig{})
	client := stream.NewInProcClient(broker)
	n, err := New(Config{Name: "MwLink", Road: 7, Detector: cad, Client: client})
	if err != nil {
		t.Fatal(err)
	}

	// A forwarded summary arrives and three records are processed.
	sendSummary(t, client, core.PredictionSummary{
		Car: 7, MeanPNormal: 0.9, Count: 5, FromRoad: 1,
		UpdatedMs: n.cfg.Now().UnixMilli(),
	})
	for i := 0; i < 3; i++ {
		sendRecord(t, client, mkRec(trace.CarID(100+i), geo.MotorwayLink, 35, 14))
	}
	if _, err := n.Step(); err != nil {
		t.Fatal(err)
	}
	if got := n.Stats().Records; got != 3 {
		t.Fatalf("processed %d records before crash, want 3", got)
	}

	cp, err := n.Checkpoint()
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := EncodeCheckpoint(&buf, cp); err != nil {
		t.Fatal(err)
	}
	cp2, err := DecodeCheckpoint(&buf)
	if err != nil {
		t.Fatal(err)
	}

	// Two more records land after the checkpoint, then the node dies. The
	// broker log survives via its own snapshot.
	sendRecord(t, client, mkRec(200, geo.MotorwayLink, 35, 14))
	sendRecord(t, client, mkRec(7, geo.MotorwayLink, 50, 14))
	bsnap := broker.Snapshot()

	restored, err := stream.RestoreBroker(stream.BrokerConfig{}, bsnap)
	if err != nil {
		t.Fatal(err)
	}
	rn, err := Recover(Config{Client: stream.NewInProcClient(restored)}, cp2)
	if err != nil {
		t.Fatal(err)
	}
	if rn.Name() != "MwLink" || rn.Road() != 7 {
		t.Errorf("recovered identity = %q/%d, want MwLink/7", rn.Name(), rn.Road())
	}

	// Pre-crash state carried over.
	if rn.StoredSummaries() != 1 {
		t.Errorf("recovered StoredSummaries = %d, want 1", rn.StoredSummaries())
	}
	if rn.TrackedCars() != 3 {
		t.Errorf("recovered TrackedCars = %d, want 3", rn.TrackedCars())
	}
	if got, want := rn.Profile().Samples(), n.Profile().Samples(); got != want {
		t.Errorf("recovered profile samples = %d, want %d", got, want)
	}

	// Only the two post-checkpoint records are processed; car 7 still hits
	// its forwarded prior.
	bs, err := rn.Step()
	if err != nil {
		t.Fatal(err)
	}
	if bs.Records != 2 {
		t.Errorf("recovered node processed %d records, want 2 (no re-processing)", bs.Records)
	}
	st := rn.Stats()
	if st.PriorHits != 1 {
		t.Errorf("recovered PriorHits = %d, want 1 (car 7's summary)", st.PriorHits)
	}
	if rn.TrackedCars() != 5 {
		t.Errorf("TrackedCars after resume = %d, want 5", rn.TrackedCars())
	}

	// The observability registry rides the checkpoint: the recovered node's
	// counters continue from the crash point (3 pre-crash records + 2
	// resumed), not from zero.
	if got := rn.Registry().Counter("microbatch.records").Value(); got != 5 {
		t.Errorf("recovered microbatch.records = %d, want 5 (3 restored + 2 resumed)", got)
	}
	if got := rn.Registry().Counter("microbatch.batches").Value(); got < 2 {
		t.Errorf("recovered microbatch.batches = %d, want >= 2", got)
	}
}

// TestRecoverLoadsDetectorFromBundle recovers with cfg.Detector nil: the
// checkpoint's persisted model must come back trained and collaborative.
func TestRecoverLoadsDetectorFromBundle(t *testing.T) {
	_, _, _, cad := trainedDetectors(t)
	n, _, _ := newNode(t, "MwLink", cad)
	// Checkpoint before processing: the recovered node targets a fresh
	// broker, so its offsets must start at zero.
	cp, err := n.Checkpoint()
	if err != nil {
		t.Fatal(err)
	}

	rn, err := Recover(Config{Client: stream.NewInProcClient(stream.NewBroker(stream.BrokerConfig{}))}, cp)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := rn.Detector().(*core.CAD3); !ok {
		t.Fatalf("recovered detector is %T, want *core.CAD3", rn.Detector())
	}
	if !rn.collab {
		t.Error("recovered CAD3 node should count degraded fallbacks")
	}
	// The restored model detects (fresh broker, so the record is new).
	sendRecord(t, rn.Client(), mkRec(2, geo.MotorwayLink, 90, 14))
	if _, err := rn.Step(); err != nil {
		t.Fatal(err)
	}
	if rn.Stats().Warnings != 1 {
		t.Errorf("recovered detector warnings = %d, want 1", rn.Stats().Warnings)
	}
}

func TestRecoverValidation(t *testing.T) {
	client := stream.NewInProcClient(stream.NewBroker(stream.BrokerConfig{}))
	if _, err := Recover(Config{Client: client}, nil); !errors.Is(err, ErrNilCheckpoint) {
		t.Errorf("nil checkpoint: err = %v, want ErrNilCheckpoint", err)
	}
	if _, err := Recover(Config{Client: client}, &Checkpoint{Version: 99}); err == nil {
		t.Error("want error for unknown checkpoint version")
	}
	if err := EncodeCheckpoint(&bytes.Buffer{}, nil); !errors.Is(err, ErrNilCheckpoint) {
		t.Errorf("encode nil: err = %v, want ErrNilCheckpoint", err)
	}
	if _, err := DecodeCheckpoint(bytes.NewReader([]byte("{"))); err == nil {
		t.Error("want error for truncated checkpoint")
	}
	if _, err := DecodeCheckpoint(bytes.NewReader([]byte(`{"version":2}`))); err == nil {
		t.Error("want error for version mismatch")
	}

	// Offset vectors must match the broker's partition layout.
	_, _, _, cad := trainedDetectors(t)
	n, _, _ := newNode(t, "x", cad)
	cp, err := n.Checkpoint()
	if err != nil {
		t.Fatal(err)
	}
	cp.InOffsets = cp.InOffsets[:1]
	mismatched := stream.NewInProcClient(stream.NewBroker(stream.BrokerConfig{}))
	if _, err := Recover(Config{Client: mismatched}, cp); err == nil {
		t.Error("want error for offset/partition mismatch")
	}
}
