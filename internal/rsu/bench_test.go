package rsu

import (
	"testing"

	"cad3/internal/flow"
	"cad3/internal/geo"
	"cad3/internal/stream"
	"cad3/internal/trace"
	"cad3/internal/vehicle"
)

// benchPipeline wires one paced/unpaced vehicle into a flow-controlled
// broker and a live node — the full IN-DATA path the overload study
// sweeps, reduced to a single hot loop.
func benchPipeline(b *testing.B, capacity int, pacing flow.PacerConfig) (*vehicle.Vehicle, *Node) {
	b.Helper()
	_, _, _, cad3 := trainedDetectors(b)
	broker := stream.NewBroker(stream.BrokerConfig{FlowCapacity: capacity})
	client := stream.NewInProcClient(broker)
	node, err := New(Config{
		Name: "Bench", Road: 7, Detector: cad3, Client: client,
		Workers: 1, Partitions: 1,
	})
	if err != nil {
		b.Fatal(err)
	}
	v, err := vehicle.New(vehicle.Config{
		ID:      1,
		Client:  client,
		Loop:    true,
		Records: []trace.Record{mkRec(1, geo.MotorwayLink, 35, 14)},
		Pacing:  pacing,
	})
	if err != nil {
		b.Fatal(err)
	}
	return v, node
}

// BenchmarkPipelineSteadyState drives the bounded pipeline inside its
// admission budget: every send is admitted and the node drains each
// window before the gate fills. This is the per-record cost of the happy
// path — send + admit + drain + detect.
func BenchmarkPipelineSteadyState(b *testing.B) {
	v, node := benchPipeline(b, 4096, flow.PacerConfig{})
	const window = 64
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := v.SendNext(i); err != nil {
			b.Fatal(err)
		}
		if i%window == window-1 {
			if _, err := node.Step(); err != nil {
				b.Fatal(err)
			}
		}
	}
	b.StopTimer()
	if _, err := node.Step(); err != nil {
		b.Fatal(err)
	}
}

// BenchmarkPipelineOverload drives the same pipeline far past its drain
// rate: the gate spends most of the run full, so the measured cost is
// dominated by the refusal path — the preallocated backpressure error and
// the pacer's local decimation, which must both stay allocation-free
// exactly when the system is busiest.
func BenchmarkPipelineOverload(b *testing.B) {
	v, node := benchPipeline(b, 256, flow.PacerConfig{MaxDecimation: 8, RecoverAfter: 16})
	const window = 2048 // drain far less often than the gate fills
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := v.SendNext(i); err != nil {
			b.Fatal(err)
		}
		if i%window == window-1 {
			if _, err := node.Step(); err != nil {
				b.Fatal(err)
			}
		}
	}
}
