package rsu

import (
	"testing"

	"cad3/internal/core"
	"cad3/internal/flow"
	"cad3/internal/geo"
	"cad3/internal/stream"
	"cad3/internal/trace"
	"cad3/internal/vehicle"
)

// benchPipeline wires one paced/unpaced vehicle into a flow-controlled
// broker and a live node — the full IN-DATA path the overload study
// sweeps, reduced to a single hot loop.
func benchPipeline(b *testing.B, capacity int, pacing flow.PacerConfig) (*vehicle.Vehicle, *Node) {
	b.Helper()
	_, _, _, cad3 := trainedDetectors(b)
	broker := stream.NewBroker(stream.BrokerConfig{FlowCapacity: capacity})
	client := stream.NewInProcClient(broker)
	node, err := New(Config{
		Name: "Bench", Road: 7, Detector: cad3, Client: client,
		Workers: 1, Partitions: 1,
	})
	if err != nil {
		b.Fatal(err)
	}
	v, err := vehicle.New(vehicle.Config{
		ID:      1,
		Client:  client,
		Loop:    true,
		Records: []trace.Record{mkRec(1, geo.MotorwayLink, 35, 14)},
		Pacing:  pacing,
	})
	if err != nil {
		b.Fatal(err)
	}
	return v, node
}

// BenchmarkPipelineSteadyState drives the bounded pipeline inside its
// admission budget: every send is admitted and the node drains each
// window before the gate fills. This is the per-record cost of the happy
// path — send + admit + drain + detect.
func BenchmarkPipelineSteadyState(b *testing.B) {
	v, node := benchPipeline(b, 4096, flow.PacerConfig{})
	const window = 64
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := v.SendNext(i); err != nil {
			b.Fatal(err)
		}
		if i%window == window-1 {
			if _, err := node.Step(); err != nil {
				b.Fatal(err)
			}
		}
	}
	b.StopTimer()
	if _, err := node.Step(); err != nil {
		b.Fatal(err)
	}
}

// BenchmarkPipelineSteadyStateTCP is the same happy path over a real TCP
// broker: telemetry batched onto the wire (256-record flushes through
// BatchProducer over the pipelined v2 protocol), the node fetching and
// detecting over its own connection. The per-record cost must stay in
// the same regime as the in-process pipeline — the wire amortized away,
// not added on top. With the batch window at 256 the syscall share drops
// under 7% and the remaining cost is the detection pipeline itself.
func BenchmarkPipelineSteadyStateTCP(b *testing.B) {
	_, _, _, cad3 := trainedDetectors(b)
	// Bounded retention keeps the broker in true steady state: eviction
	// recycles payload buffers at the same rate produce claims them, so
	// the pooled fast path stays warm instead of growing a 65536-message
	// backlog that starves the pool.
	broker := stream.NewBroker(stream.BrokerConfig{FlowCapacity: 4096, MaxRetainedPerPartition: 1024})
	srv, err := stream.NewServer(broker, "127.0.0.1:0")
	if err != nil {
		b.Fatal(err)
	}
	defer srv.Close()
	nodeClient, err := stream.Dial(srv.Addr())
	if err != nil {
		b.Fatal(err)
	}
	defer nodeClient.Close()
	node, err := New(Config{
		Name: "Bench", Road: 7, Detector: cad3, Client: nodeClient,
		Workers: 1, Partitions: 1,
	})
	if err != nil {
		b.Fatal(err)
	}
	sendClient, err := stream.Dial(srv.Addr())
	if err != nil {
		b.Fatal(err)
	}
	defer sendClient.Close()
	bp, err := stream.NewBatchProducer(sendClient, stream.TopicInData, stream.AutoPartition,
		stream.BatchProducerConfig{FlushEvery: 256})
	if err != nil {
		b.Fatal(err)
	}
	rec := mkRec(1, geo.MotorwayLink, 35, 14)
	key := []byte("car-1")
	encode := func(dst []byte) []byte { return core.AppendRecord(dst, rec) }
	const window = 256
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := bp.AddPooled(key, encode); err != nil {
			b.Fatal(err)
		}
		if i%window == window-1 {
			if _, err := node.Step(); err != nil {
				b.Fatal(err)
			}
		}
	}
	b.StopTimer()
	if err := bp.Flush(); err != nil {
		b.Fatal(err)
	}
	if _, err := node.Step(); err != nil {
		b.Fatal(err)
	}
}

// BenchmarkPipelineOverload drives the same pipeline far past its drain
// rate: the gate spends most of the run full, so the measured cost is
// dominated by the refusal path — the preallocated backpressure error and
// the pacer's local decimation, which must both stay allocation-free
// exactly when the system is busiest.
func BenchmarkPipelineOverload(b *testing.B) {
	v, node := benchPipeline(b, 256, flow.PacerConfig{MaxDecimation: 8, RecoverAfter: 16})
	const window = 2048 // drain far less often than the gate fills
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := v.SendNext(i); err != nil {
			b.Fatal(err)
		}
		if i%window == window-1 {
			if _, err := node.Step(); err != nil {
				b.Fatal(err)
			}
		}
	}
}
