// Package rsu assembles the CAD3 edge node: a roadside unit co-located
// with compute that ingests vehicle telemetry from its IN-DATA topic in
// 50 ms micro-batches, runs the detection model, writes warnings to
// OUT-DATA, accumulates per-vehicle prediction summaries, and forwards
// them to the next RSU's CO-DATA topic on vehicle handover (Figures 3-4
// of the paper).
package rsu

import (
	"context"
	"errors"
	"fmt"
	"log/slog"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"cad3/internal/core"
	"cad3/internal/flow"
	"cad3/internal/geo"
	"cad3/internal/microbatch"
	"cad3/internal/obsv"
	"cad3/internal/stream"
	"cad3/internal/trace"
)

// DefaultShedSafePNormal is the prior mean P(normal) above which a
// vehicle's stale telemetry counts as low-risk for degraded-mode
// shedding: the forwarded summary says the car has been behaving.
const DefaultShedSafePNormal = 0.5

// Errors callers match.
var (
	ErrNoDetector = errors.New("rsu: config requires a trained detector")
	ErrNoClient   = errors.New("rsu: config requires a broker client")
	ErrNoNeighbor = errors.New("rsu: unknown neighbor")
)

// probaSource is implemented by detectors that expose the raw Naive Bayes
// probability (the quantity CO-DATA summaries aggregate).
type probaSource interface {
	PredictProba(rec trace.Record) (float64, error)
}

// Config configures a Node.
type Config struct {
	// Name identifies the node in logs and stats (e.g. "Mw R1").
	Name string
	// Road is the covered road segment.
	Road geo.SegmentID
	// Detector is the trained detection model. Required.
	Detector core.Detector
	// Client reaches this node's broker. Required.
	Client stream.Client
	// BatchInterval is the micro-batch window (paper: 50 ms). Values
	// <= 0 select microbatch.DefaultInterval.
	BatchInterval time.Duration
	// Workers is the engine parallelism (paper: 6). Values <= 0 select 6.
	Workers int
	// MaxBatch bounds messages drained per micro-batch. Values <= 0 select
	// the engine default (8192).
	MaxBatch int
	// SummaryTTL expires stale CO-DATA summaries. Values <= 0 select
	// core.DefaultSummaryTTL.
	SummaryTTL time.Duration
	// Now injects the clock (virtual time in simulation). Nil selects
	// time.Now.
	Now func() time.Time
	// Partitions is the per-topic partition count. Values <= 0 select
	// stream.DefaultPartitions.
	Partitions int
	// WarnCooldown suppresses repeat warnings to the same vehicle within
	// the window ("less disturbance to other drivers with false
	// warnings", paper SVI-D4). Zero disables suppression.
	WarnCooldown time.Duration
	// Logger receives structured operational events (warnings produced,
	// handovers, degraded batches). Nil discards them.
	Logger *slog.Logger
	// Metrics is the node's observability registry: pipeline stage
	// histograms, engine counters, and gauge views over the node stats,
	// served by the -debug-addr endpoint and persisted in checkpoints.
	// Nil creates a private registry (Registry exposes it).
	Metrics *obsv.Registry
	// BatchSLO enables adaptive micro-batch sizing: the engine's drain
	// bound is AIMD-controlled toward this per-batch processing-time
	// objective (flow.BatchController) instead of the fixed cap. Zero
	// keeps the fixed bound.
	BatchSLO time.Duration
	// ShedStaleAfter enables node-level degraded-mode admission: once the
	// node is degraded (see DegradedAfter), telemetry older than this whose
	// sender's forwarded summary reads low-risk is shed before detection —
	// the stale sample's information is already superseded and the vehicle
	// has no history of abnormality. Warnings and summaries are never
	// touched (they ride separate topics). Zero disables shedding.
	ShedStaleAfter time.Duration
	// DegradedAfter is how many consecutive saturated batches (full drains
	// — the node cannot keep up) flip the node into degraded mode. Values
	// <= 0 select 2. One unsaturated batch clears it.
	DegradedAfter int
	// ShedSafePNormal is the minimum prior mean P(normal) for a stale
	// record to count as low-risk (sheddable). Values <= 0 select
	// DefaultShedSafePNormal.
	ShedSafePNormal float64
	// TraceRingSize bounds the /trace/recent ring. Values <= 0 select
	// obsv.DefaultTraceRingSize.
	TraceRingSize int
}

// Stats summarises a node's activity.
type Stats struct {
	Records            int64
	Warnings           int64
	SummariesSent      int64
	SummariesReceived  int64
	PriorHits          int64
	PriorMisses        int64
	DetectErrors       int64
	WarningsSuppressed int64
	// Fallbacks counts detections a collaborative (CAD3) detector ran
	// without a prior — the degraded AD3-equivalent path. Non-collaborative
	// detectors never count.
	Fallbacks int64
	// DroppedHandovers counts summaries lost because the neighbor's
	// CO-DATA produce failed (partition, dead broker).
	DroppedHandovers int64
	// ShedStale counts telemetry records the node's degraded-mode
	// admission shed before detection (stale + low-risk only).
	ShedStale int64
	// DegradedRounds counts batches processed while degraded.
	DegradedRounds int64
	// Degraded reports whether the node is currently in degraded mode.
	Degraded bool
	// SummaryStore exposes the store's hit/miss/expired lookups; Expired
	// is the silent stale-summary degradation.
	SummaryStore core.SummaryStoreStats
	Engine       microbatch.EngineStats
}

// DegradedStats isolates the degraded-mode counters the supervisor
// aggregates into internal/metrics.
type DegradedStats struct {
	Fallbacks        int64
	StaleSummaries   int64
	DroppedHandovers int64
	ShedStale        int64
}

// DegradedCounters returns the node's degraded-mode counters.
func (s Stats) DegradedCounters() DegradedStats {
	return DegradedStats{
		Fallbacks:        s.Fallbacks,
		StaleSummaries:   s.SummaryStore.Expired,
		DroppedHandovers: s.DroppedHandovers,
		ShedStale:        s.ShedStale,
	}
}

// tracedRecord is the engine item type: the decoded record plus its wire
// trace context (zero when the payload was untraced or JSON — the
// pipeline runs identically, just unobserved).
type tracedRecord struct {
	rec trace.Record
	tc  obsv.TraceContext
}

// Node is one deployed RSU.
type Node struct {
	cfg    Config
	engine *microbatch.Engine[tracedRecord]

	inConsumer  *stream.Consumer
	outProducer *stream.Producer
	coConsumer  *stream.Consumer

	summaries *core.SummaryStore
	builder   *core.SummaryBuilder
	profile   *RoadProfile
	// collab marks detectors that fuse a forwarded prior (CAD3):
	// detections without one are degraded-mode fallbacks.
	collab bool

	mu        sync.Mutex
	neighbors map[string]*stream.Producer
	lastWarn  map[trace.CarID]time.Time

	records      atomic.Int64
	warnings     atomic.Int64
	sentSumm     atomic.Int64
	recvSumm     atomic.Int64
	priorHits    atomic.Int64
	priorMisses  atomic.Int64
	detectErrors atomic.Int64
	suppressed   atomic.Int64
	fallbacks    atomic.Int64
	dropped      atomic.Int64

	// Degraded-mode admission state: consecutive saturated batches,
	// whether the node currently sheds, and the shed accounting.
	saturatedRuns  atomic.Int64
	degraded       atomic.Bool
	shedStale      atomic.Int64
	degradedRounds atomic.Int64

	// Observability: batch sequence for trace batch IDs, the recent-trace
	// ring behind /trace/recent, and cached histogram handles for the
	// per-record stage observations.
	batchSeq                    atomic.Uint64
	ring                        *obsv.TraceRing
	histTx, histQueue, histProc *obsv.Histogram
}

// warnEncoder carries one warning through SendPooled without building a
// closure per send: fn is bound once when the encoder is created, and
// the staging fields are rewritten per warning. Encoders are pooled
// because the engine calls processRecords from several workers at once.
type warnEncoder struct {
	w      core.Warning
	tc     obsv.TraceContext
	traced bool
	fn     func(dst []byte) []byte
}

//cad3:noalloc
func (e *warnEncoder) encode(dst []byte) []byte {
	if e.traced {
		return core.AppendWarningTraced(dst, e.w, e.tc)
	}
	return core.AppendWarning(dst, e.w)
}

var warnEncoders = sync.Pool{New: func() any {
	e := &warnEncoder{}
	e.fn = e.encode
	return e
}}

// collaborativeDetector marks detectors whose accuracy depends on the
// forwarded prior (satisfied by *core.CAD3 via its fusion weight).
type collaborativeDetector interface {
	Weight() float64
}

// New creates the node, provisioning its three topics on the broker.
func New(cfg Config) (*Node, error) {
	if cfg.Detector == nil {
		return nil, ErrNoDetector
	}
	if cfg.Client == nil {
		return nil, ErrNoClient
	}
	if cfg.Partitions <= 0 {
		cfg.Partitions = stream.DefaultPartitions
	}
	if cfg.Now == nil {
		cfg.Now = time.Now
	}
	if cfg.Logger == nil {
		cfg.Logger = slog.New(discardHandler{})
	}
	for _, topic := range []string{stream.TopicInData, stream.TopicOutData, stream.TopicCoData} {
		if err := cfg.Client.CreateTopic(topic, cfg.Partitions); err != nil {
			return nil, fmt.Errorf("rsu %s: create %s: %w", cfg.Name, topic, err)
		}
	}
	inConsumer, err := stream.NewConsumer(cfg.Client, stream.TopicInData, 0)
	if err != nil {
		return nil, fmt.Errorf("rsu %s: in consumer: %w", cfg.Name, err)
	}
	coConsumer, err := stream.NewConsumer(cfg.Client, stream.TopicCoData, 0)
	if err != nil {
		return nil, fmt.Errorf("rsu %s: co consumer: %w", cfg.Name, err)
	}
	outProducer, err := stream.NewProducer(cfg.Client, stream.TopicOutData)
	if err != nil {
		return nil, fmt.Errorf("rsu %s: out producer: %w", cfg.Name, err)
	}

	_, collab := cfg.Detector.(collaborativeDetector)
	if cfg.Metrics == nil {
		cfg.Metrics = obsv.NewRegistry()
	}
	n := &Node{
		cfg:         cfg,
		inConsumer:  inConsumer,
		outProducer: outProducer,
		coConsumer:  coConsumer,
		summaries:   core.NewSummaryStore(cfg.SummaryTTL, cfg.Now),
		builder:     core.NewSummaryBuilder(int64(cfg.Road), cfg.Now),
		profile:     NewRoadProfile(0, 0, cfg.Now),
		collab:      collab,
		neighbors:   make(map[string]*stream.Producer),
		lastWarn:    make(map[trace.CarID]time.Time),
		ring:        obsv.NewTraceRing(cfg.TraceRingSize),
		histTx:      cfg.Metrics.Histogram("pipeline.tx_micros", nil),
		histQueue:   cfg.Metrics.Histogram("pipeline.queue_micros", nil),
		histProc:    cfg.Metrics.Histogram("pipeline.process_micros", nil),
	}
	n.registerGauges()
	var adaptive *flow.BatchController
	if cfg.BatchSLO > 0 {
		adaptive = flow.NewBatchController(flow.BatchControllerConfig{
			SLO:     cfg.BatchSLO,
			Metrics: cfg.Metrics,
			Name:    "flow.node",
		})
	}
	engine, err := microbatch.NewEngine(microbatch.Config[tracedRecord]{
		Source:   inConsumer,
		Decode:   n.decodeRecord,
		Process:  n.processRecords,
		Interval: cfg.BatchInterval,
		Workers:  cfg.Workers,
		MaxBatch: cfg.MaxBatch,
		Now:      cfg.Now,
		Metrics:  cfg.Metrics,
		Adaptive: adaptive,
	})
	if err != nil {
		return nil, fmt.Errorf("rsu %s: engine: %w", cfg.Name, err)
	}
	n.engine = engine
	return n, nil
}

// decodeRecord is the engine's decode hook: it parses the record, lifts
// the trace context out of the frame padding (absent for JSON/untraced
// payloads), tags it with the current batch, and stamps StageDequeue —
// the moment the record left the broker queue for processing.
func (n *Node) decodeRecord(m stream.Message) (tracedRecord, error) {
	rec, err := core.DecodeRecord(m.Value)
	if err != nil {
		return tracedRecord{}, err
	}
	tr := tracedRecord{rec: rec}
	if tc, ok := core.RecordTrace(m.Value); ok {
		tc.BatchID = n.batchSeq.Load()
		tc.Stamp(obsv.StageDequeue, n.cfg.Now())
		tr.tc = tc
	}
	return tr, nil
}

// registerGauges exposes the node's existing atomic stats through the
// registry as snapshot-time gauges, so /metrics reports them without any
// double accounting on the hot path. The rsu.* names are cumulative
// (monotonic) despite the gauge transport; see OBSERVABILITY.md.
func (n *Node) registerGauges() {
	m := n.cfg.Metrics
	m.RegisterGaugeFunc("rsu.records", n.records.Load)
	m.RegisterGaugeFunc("rsu.warnings", n.warnings.Load)
	m.RegisterGaugeFunc("rsu.warnings_suppressed", n.suppressed.Load)
	m.RegisterGaugeFunc("rsu.detect_errors", n.detectErrors.Load)
	m.RegisterGaugeFunc("rsu.prior_hits", n.priorHits.Load)
	m.RegisterGaugeFunc("rsu.prior_misses", n.priorMisses.Load)
	m.RegisterGaugeFunc("rsu.fallbacks", n.fallbacks.Load)
	m.RegisterGaugeFunc("rsu.summaries_sent", n.sentSumm.Load)
	m.RegisterGaugeFunc("rsu.summaries_received", n.recvSumm.Load)
	m.RegisterGaugeFunc("rsu.dropped_handovers", n.dropped.Load)
	m.RegisterGaugeFunc("rsu.tracked_cars", func() int64 { return int64(n.builder.Cars()) })
	m.RegisterGaugeFunc("rsu.stored_summaries", func() int64 { return int64(n.summaries.Len()) })
	// flow.node.* rides the same registry, so the shed accounting persists
	// through checkpoints and serves on /metrics like everything else.
	m.RegisterGaugeFunc("flow.node.shed_stale", n.shedStale.Load)
	m.RegisterGaugeFunc("flow.node.degraded_rounds", n.degradedRounds.Load)
	m.RegisterGaugeFunc("flow.node.degraded", func() int64 {
		if n.degraded.Load() {
			return 1
		}
		return 0
	})
}

// Name returns the node's configured name.
func (n *Node) Name() string { return n.cfg.Name }

// Road returns the covered segment.
func (n *Node) Road() geo.SegmentID { return n.cfg.Road }

// AddNeighbor registers an adjacent RSU reachable through the given
// client: summaries for handovers toward it are produced to its CO-DATA
// topic (after ensuring the topic exists).
func (n *Node) AddNeighbor(name string, client stream.Client) error {
	if client == nil {
		return ErrNoClient
	}
	if err := client.CreateTopic(stream.TopicCoData, n.cfg.Partitions); err != nil {
		return fmt.Errorf("rsu %s: neighbor %s topic: %w", n.cfg.Name, name, err)
	}
	p, err := stream.NewProducer(client, stream.TopicCoData)
	if err != nil {
		return fmt.Errorf("rsu %s: neighbor %s producer: %w", n.cfg.Name, name, err)
	}
	n.mu.Lock()
	defer n.mu.Unlock()
	n.neighbors[name] = p
	return nil
}

// processRecords is the engine's worker callback: detect, warn, observe.
func (n *Node) processRecords(records []tracedRecord) error {
	var firstErr error
	for _, tr := range records {
		rec := tr.rec
		n.records.Add(1)

		// Maintain the road's rolling speed profile and backfill the
		// road-mean-speed context for records that arrive without one.
		n.profile.Observe(rec.Speed)
		if rec.RoadMeanSpeed == 0 {
			if mean, _, ok := n.profile.MeanStd(); ok {
				rec.RoadMeanSpeed = mean
			}
		}

		var prior *core.PredictionSummary
		if s, ok := n.summaries.Get(rec.Car); ok {
			prior = &s
		}

		// Degraded-mode admission: shed stale telemetry from known
		// well-behaved vehicles before the detector runs. Prior hit/miss
		// accounting covers processed records only.
		if n.shouldShed(rec, prior) {
			n.shedStale.Add(1)
			continue
		}
		if prior != nil {
			n.priorHits.Add(1)
		} else {
			n.priorMisses.Add(1)
			if n.collab {
				// CAD3 without a prior collapses to AD3 — the degraded
				// mode the supervisor accounts for.
				n.fallbacks.Add(1)
			}
		}

		det, err := n.cfg.Detector.Detect(rec, prior)
		if err != nil {
			n.detectErrors.Add(1)
			if firstErr == nil {
				firstErr = fmt.Errorf("detect car %d: %w", rec.Car, err)
			}
			continue
		}

		// Close the processing span and observe the stage latencies the
		// trace has accumulated so far (Tx from the broker's arrival
		// stamp, Queue from the engine's dequeue stamp). Untraced records
		// skip all of this — two branches, no allocation either way.
		tc := tr.tc
		traced := tc.Valid()
		if traced {
			tc.Stamp(obsv.StageDetect, n.cfg.Now())
			if tc.ArriveMicro >= tc.SentMicro && tc.SentMicro != 0 {
				n.histTx.Observe(tc.ArriveMicro - tc.SentMicro)
			}
			if tc.DequeueMicro >= tc.ArriveMicro && tc.ArriveMicro != 0 {
				n.histQueue.Observe(tc.DequeueMicro - tc.ArriveMicro)
			}
			if tc.DetectMicro >= tc.DequeueMicro && tc.DequeueMicro != 0 {
				n.histProc.Observe(tc.DetectMicro - tc.DequeueMicro)
			}
		}

		// Feed the local summary builder with the NB probability when the
		// detector exposes one (the paper's summaries carry Naive Bayes
		// prediction probabilities).
		pNB := det.PNormal
		if ps, ok := n.cfg.Detector.(probaSource); ok {
			if p, err := ps.PredictProba(rec); err == nil {
				pNB = p
			}
		}
		n.builder.Observe(rec.Car, pNB)

		if det.Abnormal() {
			if n.suppressWarning(rec.Car) {
				continue
			}
			w := core.Warning{
				Car:          rec.Car,
				Road:         int64(rec.Road),
				PNormal:      det.PNormal,
				SourceTsMs:   rec.TimestampMs,
				DetectedTsMs: n.cfg.Now().UnixMilli(),
			}
			// Key and payload both ride pooled buffers: the broker copies
			// them during Send, so they recycle immediately after. Traced
			// records emit traced warnings, so the context survives into
			// dissemination and the vehicle can complete the breakdown.
			enc := warnEncoders.Get().(*warnEncoder)
			enc.w, enc.tc, enc.traced = w, tc, traced
			key := appendCarKey(stream.GetPayload(), rec.Car)
			_, _, err = n.outProducer.SendPooled(key, enc.fn)
			stream.PutPayload(key)
			warnEncoders.Put(enc)
			if err != nil {
				if firstErr == nil {
					firstErr = fmt.Errorf("warn car %d: %w", rec.Car, err)
				}
				continue
			}
			n.warnings.Add(1)
			if traced {
				n.ring.PushContext(int64(rec.Car), int64(rec.Road), tc, n.cfg.Now())
			}
			n.cfg.Logger.Debug("warning produced",
				"rsu", n.cfg.Name, "car", int64(rec.Car),
				"road", int64(rec.Road), "pNormal", det.PNormal)
		}
	}
	return firstErr
}

// suppressWarning reports whether a warning to the car should be dropped
// under the cooldown, updating the last-warned time otherwise.
func (n *Node) suppressWarning(car trace.CarID) bool {
	if n.cfg.WarnCooldown <= 0 {
		return false
	}
	now := n.cfg.Now()
	n.mu.Lock()
	defer n.mu.Unlock()
	if last, ok := n.lastWarn[car]; ok && now.Sub(last) < n.cfg.WarnCooldown {
		n.suppressed.Add(1)
		return true
	}
	n.lastWarn[car] = now
	return false
}

func carKey(car trace.CarID) []byte {
	return appendCarKey(make([]byte, 0, 24), car)
}

// appendCarKey appends the partitioning key for a car ("car-<id>") without
// the fmt machinery.
//
//cad3:noalloc
func appendCarKey(dst []byte, car trace.CarID) []byte {
	dst = append(dst, "car-"...)
	return strconv.AppendInt(dst, int64(car), 10)
}

// Step runs one pipeline round synchronously: drain received CO-DATA
// summaries, then process one micro-batch. The discrete-event simulator
// and the tests drive nodes this way.
func (n *Node) Step() (microbatch.BatchStats, error) {
	n.batchSeq.Add(1) // trace batch ID for every record decoded this round
	if err := n.drainSummaries(); err != nil && !errors.Is(err, stream.ErrPartitionDown) {
		return microbatch.BatchStats{}, err
	}
	bs, err := n.engine.Step()
	n.observeSaturation(bs)
	return bs, err
}

// observeSaturation tracks consecutive full-drain batches and flips the
// node's degraded-mode flag: a node that keeps draining its full bound has
// a backlog it cannot clear, so stale low-risk telemetry becomes sheddable
// until one batch comes up short.
func (n *Node) observeSaturation(bs microbatch.BatchStats) {
	if n.cfg.ShedStaleAfter <= 0 {
		return
	}
	after := int64(n.cfg.DegradedAfter)
	if after <= 0 {
		after = 2
	}
	if !bs.Saturated {
		n.saturatedRuns.Store(0)
		if n.degraded.CompareAndSwap(true, false) {
			n.cfg.Logger.Info("degraded mode cleared", "rsu", n.cfg.Name)
		}
		return
	}
	if n.degraded.Load() {
		n.degradedRounds.Add(1)
		return
	}
	if n.saturatedRuns.Add(1) >= after {
		if n.degraded.CompareAndSwap(false, true) {
			n.degradedRounds.Add(1)
			n.cfg.Logger.Warn("degraded mode entered",
				"rsu", n.cfg.Name, "saturatedBatches", after)
		}
	}
}

// shouldShed implements the node-level degraded-mode admission decision
// for one telemetry record: shed only when the node is degraded, the
// record is stale, and the vehicle's own forwarded summary says it has
// been behaving. Vehicles without a summary are never shed — absence of
// evidence is not evidence of safety.
func (n *Node) shouldShed(rec trace.Record, prior *core.PredictionSummary) bool {
	if !n.degraded.Load() || n.cfg.ShedStaleAfter <= 0 || prior == nil {
		return false
	}
	safe := n.cfg.ShedSafePNormal
	if safe <= 0 {
		safe = DefaultShedSafePNormal
	}
	if prior.MeanPNormal < safe {
		return false
	}
	age := time.Duration(n.cfg.Now().UnixMilli()-rec.TimestampMs) * time.Millisecond
	return age > n.cfg.ShedStaleAfter
}

// drainSummaries ingests pending CO-DATA messages into the summary store.
func (n *Node) drainSummaries() error {
	var msgs []stream.Message
	for {
		var err error
		msgs, err = n.coConsumer.PollInto(msgs[:0], 256)
		if len(msgs) == 0 {
			return err
		}
		for _, m := range msgs {
			s, derr := core.DecodeSummary(m.Value)
			if derr != nil {
				continue // malformed summaries are dropped, not fatal
			}
			n.summaries.Put(s)
			n.recvSumm.Add(1)
		}
		// DecodeSummary copies everything it keeps, so the payload
		// buffers go straight back to the pool.
		stream.RecycleMessages(msgs)
		if err != nil {
			return err
		}
	}
}

// Handover forwards the car's prediction summary to the named neighbor
// (write to its CO-DATA topic) and forgets the local history — the
// paper's §IV-D mesoscopic mechanism. Unknown cars are a no-op: the car
// may never have sent data through this RSU.
func (n *Node) Handover(car trace.CarID, neighbor string) error {
	n.mu.Lock()
	p, ok := n.neighbors[neighbor]
	n.mu.Unlock()
	if !ok {
		return fmt.Errorf("%w: %q", ErrNoNeighbor, neighbor)
	}
	sum, found := n.builder.Summarize(car)
	if !found {
		return nil
	}
	payload, err := core.EncodeSummary(sum)
	if err != nil {
		return fmt.Errorf("rsu %s: encode summary: %w", n.cfg.Name, err)
	}
	key := appendCarKey(stream.GetPayload(), car)
	_, _, err = p.Send(key, payload)
	stream.PutPayload(key)
	stream.PutPayload(payload)
	if err != nil {
		// The local history is kept: a later handover (or a healed link)
		// can still deliver it.
		n.dropped.Add(1)
		n.cfg.Logger.Warn("handover dropped",
			"rsu", n.cfg.Name, "car", int64(car), "neighbor", neighbor, "err", err)
		return fmt.Errorf("rsu %s: handover car %d to %s: %w", n.cfg.Name, car, neighbor, err)
	}
	n.builder.Forget(car)
	n.sentSumm.Add(1)
	n.cfg.Logger.Info("handover",
		"rsu", n.cfg.Name, "car", int64(car), "neighbor", neighbor,
		"meanPNormal", sum.MeanPNormal, "count", sum.Count)
	return nil
}

// HandoverVia is Handover routed through an arbitrary forwarder instead
// of a named neighbor producer — the shard-boundary hook: the city
// driver passes a closure over a stream.SummaryRouter destination so
// the summary reaches another shard's broker rather than a neighbor on
// this one. The forwarder must not retain key or value past its return
// (the router copies; both buffers are recycled here). As with
// Handover, a forward failure keeps the local history so a later
// crossing can still deliver it, and unknown cars are a no-op.
func (n *Node) HandoverVia(car trace.CarID, forward func(key, value []byte) error) error {
	if forward == nil {
		return fmt.Errorf("rsu %s: HandoverVia needs a forwarder", n.cfg.Name)
	}
	sum, found := n.builder.Summarize(car)
	if !found {
		return nil
	}
	payload, err := core.EncodeSummary(sum)
	if err != nil {
		return fmt.Errorf("rsu %s: encode summary: %w", n.cfg.Name, err)
	}
	key := appendCarKey(stream.GetPayload(), car)
	err = forward(key, payload)
	stream.PutPayload(key)
	stream.PutPayload(payload)
	if err != nil {
		n.dropped.Add(1)
		n.cfg.Logger.Warn("handover dropped",
			"rsu", n.cfg.Name, "car", int64(car), "err", err)
		return fmt.Errorf("rsu %s: handover car %d: %w", n.cfg.Name, car, err)
	}
	n.builder.Forget(car)
	n.sentSumm.Add(1)
	n.cfg.Logger.Info("handover",
		"rsu", n.cfg.Name, "car", int64(car),
		"meanPNormal", sum.MeanPNormal, "count", sum.Count)
	return nil
}

// discardHandler drops all records (the nil-logger default).
type discardHandler struct{}

func (discardHandler) Enabled(context.Context, slog.Level) bool  { return false }
func (discardHandler) Handle(context.Context, slog.Record) error { return nil }
func (d discardHandler) WithAttrs([]slog.Attr) slog.Handler      { return d }
func (d discardHandler) WithGroup(string) slog.Handler           { return d }

// Run drives the pipeline on the wall clock until the context ends:
// CO-DATA draining plus micro-batch processing every BatchInterval.
func (n *Node) Run(ctx context.Context) error {
	ticker := time.NewTicker(n.engine.Interval())
	defer ticker.Stop()
	for {
		select {
		case <-ctx.Done():
			return ctx.Err()
		case <-ticker.C:
			_, _ = n.Step() // per-batch errors are recoverable; stats track them
		}
	}
}

// Stats returns a snapshot of node activity.
func (n *Node) Stats() Stats {
	return Stats{
		Records:            n.records.Load(),
		Warnings:           n.warnings.Load(),
		SummariesSent:      n.sentSumm.Load(),
		SummariesReceived:  n.recvSumm.Load(),
		PriorHits:          n.priorHits.Load(),
		PriorMisses:        n.priorMisses.Load(),
		DetectErrors:       n.detectErrors.Load(),
		WarningsSuppressed: n.suppressed.Load(),
		Fallbacks:          n.fallbacks.Load(),
		DroppedHandovers:   n.dropped.Load(),
		ShedStale:          n.shedStale.Load(),
		DegradedRounds:     n.degradedRounds.Load(),
		Degraded:           n.degraded.Load(),
		SummaryStore:       n.summaries.Stats(),
		Engine:             n.engine.Stats(),
	}
}

// Ping checks the node's broker liveness with the cheapest round trip
// (the supervisor's heartbeat).
func (n *Node) Ping() error {
	_, err := n.cfg.Client.PartitionCount(stream.TopicInData)
	return err
}

// Rewire rebinds the node's own stream plumbing — IN-DATA and CO-DATA
// consumers and the OUT-DATA producer — to a new broker client, the
// failover path when this node's broker is replaced (e.g. a partition
// leader died and a replica was promoted). Consumer offsets are
// preserved, so the node resumes from its committed positions on the
// replica's copy of the log. Neighbor producers are untouched: they
// point at other RSUs' brokers. Like Checkpoint and Recover, Rewire must
// not run concurrently with Step.
func (n *Node) Rewire(client stream.Client) error {
	if client == nil {
		return ErrNoClient
	}
	if err := n.inConsumer.SwapClient(client); err != nil {
		return fmt.Errorf("rsu %s: rewire in-consumer: %w", n.cfg.Name, err)
	}
	if err := n.coConsumer.SwapClient(client); err != nil {
		return fmt.Errorf("rsu %s: rewire co-consumer: %w", n.cfg.Name, err)
	}
	if err := n.outProducer.SwapClient(client); err != nil {
		return fmt.Errorf("rsu %s: rewire out-producer: %w", n.cfg.Name, err)
	}
	n.cfg.Client = client
	return nil
}

// Detector returns the node's detector (checkpointing persists it).
func (n *Node) Detector() core.Detector { return n.cfg.Detector }

// Client returns the node's broker client (the cluster rewires neighbor
// producers with it after a restart).
func (n *Node) Client() stream.Client { return n.cfg.Client }

// TrackedCars returns the number of vehicles with local prediction
// history.
func (n *Node) TrackedCars() int { return n.builder.Cars() }

// Profile returns the node's rolling road speed profile.
func (n *Node) Profile() *RoadProfile { return n.profile }

// StoredSummaries returns the number of summaries received and retained.
func (n *Node) StoredSummaries() int { return n.summaries.Len() }

// Registry returns the node's observability registry (the /metrics
// backing store; checkpointing persists its snapshot).
func (n *Node) Registry() *obsv.Registry { return n.cfg.Metrics }

// TraceRing returns the node's recent-trace ring (the /trace/recent
// backing store).
func (n *Node) TraceRing() *obsv.TraceRing { return n.ring }
