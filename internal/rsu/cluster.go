package rsu

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"sync"

	"cad3/internal/geo"
	"cad3/internal/microbatch"
	"cad3/internal/trace"
)

// Cluster deploys a set of RSU nodes over a road network and wires their
// collaboration topology from segment connectivity: whenever the road of
// one node leads into the road of another, the first gets the second as a
// CO-DATA neighbor — so vehicle handovers resolve automatically from the
// route, the way adjacent RSUs in Figure 1 of the paper are wired along
// the motorway/link geometry.
type Cluster struct {
	net    *geo.Network
	mu     sync.Mutex
	byRoad map[geo.SegmentID]*Node
	byName map[string]*Node
	// neighborName[a][b] is the neighbor label node-a uses for node-b.
	neighborName map[geo.SegmentID]map[geo.SegmentID]string
}

// ErrNoRSU is returned when no node covers a road.
var ErrNoRSU = errors.New("rsu: no node covers that road")

// NewCluster creates the nodes from their configs and wires neighbors
// from the network's connectivity (both directions of each connection).
func NewCluster(net *geo.Network, configs []Config) (*Cluster, error) {
	if net == nil {
		return nil, fmt.Errorf("rsu: cluster requires a network")
	}
	if len(configs) == 0 {
		return nil, fmt.Errorf("rsu: cluster requires at least one node")
	}
	c := &Cluster{
		net:          net,
		byRoad:       make(map[geo.SegmentID]*Node, len(configs)),
		byName:       make(map[string]*Node, len(configs)),
		neighborName: make(map[geo.SegmentID]map[geo.SegmentID]string),
	}
	for i, cfg := range configs {
		if cfg.Name == "" {
			cfg.Name = fmt.Sprintf("rsu-%d", cfg.Road)
		}
		if _, dup := c.byRoad[cfg.Road]; dup {
			return nil, fmt.Errorf("rsu: two nodes cover road %d", cfg.Road)
		}
		if _, dup := c.byName[cfg.Name]; dup {
			return nil, fmt.Errorf("rsu: duplicate node name %q", cfg.Name)
		}
		node, err := New(cfg)
		if err != nil {
			return nil, fmt.Errorf("cluster node %d: %w", i, err)
		}
		c.byRoad[cfg.Road] = node
		c.byName[cfg.Name] = node
	}

	// Wire neighbors from connectivity, both ways (a vehicle can enter a
	// motorway from a link too).
	link := func(from, to *Node) error {
		if from == to {
			return nil
		}
		names, ok := c.neighborName[from.Road()]
		if !ok {
			names = make(map[geo.SegmentID]string)
			c.neighborName[from.Road()] = names
		}
		if _, done := names[to.Road()]; done {
			return nil
		}
		if err := from.AddNeighbor(to.Name(), to.cfg.Client); err != nil {
			return err
		}
		names[to.Road()] = to.Name()
		return nil
	}
	roads := make([]geo.SegmentID, 0, len(c.byRoad))
	for road := range c.byRoad {
		roads = append(roads, road)
	}
	sort.Slice(roads, func(i, j int) bool { return roads[i] < roads[j] })
	for _, road := range roads {
		from := c.byRoad[road]
		for _, succ := range net.Successors(road) {
			if to, ok := c.byRoad[succ]; ok {
				if err := link(from, to); err != nil {
					return nil, err
				}
				if err := link(to, from); err != nil {
					return nil, err
				}
			}
		}
	}
	return c, nil
}

// Node returns the node covering a road.
func (c *Cluster) Node(road geo.SegmentID) (*Node, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	n, ok := c.byRoad[road]
	if !ok {
		return nil, fmt.Errorf("%w: %d", ErrNoRSU, road)
	}
	return n, nil
}

// NodeByName returns the named node.
func (c *Cluster) NodeByName(name string) (*Node, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	n, ok := c.byName[name]
	if !ok {
		return nil, fmt.Errorf("%w: %q", ErrNoRSU, name)
	}
	return n, nil
}

// Nodes returns every node, ordered by road ID.
func (c *Cluster) Nodes() []*Node {
	c.mu.Lock()
	defer c.mu.Unlock()
	roads := make([]geo.SegmentID, 0, len(c.byRoad))
	for road := range c.byRoad {
		roads = append(roads, road)
	}
	sort.Slice(roads, func(i, j int) bool { return roads[i] < roads[j] })
	out := make([]*Node, 0, len(roads))
	for _, road := range roads {
		out = append(out, c.byRoad[road])
	}
	return out
}

// Handover moves a vehicle's prediction summary from the RSU covering
// fromRoad to the RSU covering toRoad, which must be wired neighbors.
func (c *Cluster) Handover(car trace.CarID, fromRoad, toRoad geo.SegmentID) error {
	c.mu.Lock()
	from, ok := c.byRoad[fromRoad]
	if !ok {
		c.mu.Unlock()
		return fmt.Errorf("%w: %d", ErrNoRSU, fromRoad)
	}
	name, ok := c.neighborName[fromRoad][toRoad]
	c.mu.Unlock()
	if !ok {
		return fmt.Errorf("%w: %d is not a neighbor of %d", ErrNoNeighbor, toRoad, fromRoad)
	}
	return from.Handover(car, name)
}

// ReplaceNode swaps the named node for a replacement (typically one
// recovered from a checkpoint after a crash) and rewires the
// collaboration topology: the replacement gets producers to every
// neighbor it had, and every node that forwarded summaries to the dead
// node gets a fresh producer bound to the replacement's client. The
// replacement must cover the same road.
func (c *Cluster) ReplaceNode(name string, repl *Node) error {
	if repl == nil {
		return fmt.Errorf("rsu: nil replacement for %q", name)
	}
	c.mu.Lock()
	old, ok := c.byName[name]
	if !ok {
		c.mu.Unlock()
		return fmt.Errorf("%w: %q", ErrNoRSU, name)
	}
	road := old.Road()
	if repl.Road() != road {
		c.mu.Unlock()
		return fmt.Errorf("rsu: replacement for %q covers road %d, want %d",
			name, repl.Road(), road)
	}
	c.byName[name] = repl
	c.byRoad[road] = repl

	type wire struct {
		node  *Node
		label string
		peer  *Node
	}
	var wires []wire
	// Outbound: the replacement re-learns its neighbors.
	for toRoad, label := range c.neighborName[road] {
		if peer, ok := c.byRoad[toRoad]; ok {
			wires = append(wires, wire{node: repl, label: label, peer: peer})
		}
	}
	// Inbound: peers that pointed at the dead node point at the
	// replacement's broker now.
	for fromRoad, names := range c.neighborName {
		if fromRoad == road {
			continue
		}
		if label, ok := names[road]; ok {
			if from, ok := c.byRoad[fromRoad]; ok {
				wires = append(wires, wire{node: from, label: label, peer: repl})
			}
		}
	}
	c.mu.Unlock()

	for _, w := range wires {
		if err := w.node.AddNeighbor(w.label, w.peer.cfg.Client); err != nil {
			return fmt.Errorf("rsu: rewire %s -> %s: %w", w.node.Name(), w.label, err)
		}
	}
	return nil
}

// StepAll runs one pipeline round on every node, returning per-node batch
// stats keyed by name. Per-node errors are collected, not fatal.
func (c *Cluster) StepAll() (map[string]microbatch.BatchStats, error) {
	out := make(map[string]microbatch.BatchStats)
	var errs []error
	for _, n := range c.Nodes() {
		bs, err := n.Step()
		out[n.Name()] = bs
		if err != nil {
			errs = append(errs, fmt.Errorf("%s: %w", n.Name(), err))
		}
	}
	return out, errors.Join(errs...)
}

// Run drives every node on the wall clock until the context ends.
func (c *Cluster) Run(ctx context.Context) error {
	var wg sync.WaitGroup
	nodes := c.Nodes()
	errs := make([]error, len(nodes))
	for i, n := range nodes {
		wg.Add(1)
		go func(i int, n *Node) {
			defer wg.Done()
			if err := n.Run(ctx); err != nil && !errors.Is(err, context.Canceled) &&
				!errors.Is(err, context.DeadlineExceeded) {
				errs[i] = fmt.Errorf("%s: %w", n.Name(), err)
			}
		}(i, n)
	}
	wg.Wait()
	return errors.Join(errs...)
}

// Stats returns every node's stats keyed by name.
func (c *Cluster) Stats() map[string]Stats {
	out := make(map[string]Stats)
	for _, n := range c.Nodes() {
		out[n.Name()] = n.Stats()
	}
	return out
}
