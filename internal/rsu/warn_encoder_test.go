package rsu

import (
	"testing"

	"cad3/internal/core"
	"cad3/internal/obsv"
)

// TestWarnEncoderReuse pins the shape of the warning fast path's fix for
// the per-send closure the noalloc analyzer flagged: encoders come out
// of the pool with fn prebound, restaging them is allocation-free, and
// the bound callback sees the fields written after it was created.
func TestWarnEncoderReuse(t *testing.T) {
	enc := warnEncoders.Get().(*warnEncoder)
	if enc.fn == nil {
		t.Fatal("pooled encoder has no prebound fn")
	}

	enc.w = core.Warning{Car: 7, Road: 3, PNormal: 0.25, SourceTsMs: 10, DetectedTsMs: 20}
	enc.traced = false
	plain := enc.fn(nil)
	w, err := core.DecodeWarning(plain)
	if err != nil {
		t.Fatal(err)
	}
	if w != enc.w {
		t.Errorf("round-trip warning = %+v, want %+v", w, enc.w)
	}

	enc.tc = obsv.TraceContext{BatchID: 9, SentMicro: 1}
	enc.traced = true
	traced := enc.fn(nil)
	if tc, ok := core.WarningTrace(traced); !ok || tc.BatchID != 9 {
		t.Errorf("traced encode lost the context (ok=%v tc=%+v)", ok, tc)
	}
	warnEncoders.Put(enc)

	allocs := testing.AllocsPerRun(500, func() {
		e := warnEncoders.Get().(*warnEncoder)
		e.w.Car++
		buf := e.fn(scratch[:0])
		if len(buf) == 0 {
			t.Fatal("empty encode")
		}
		warnEncoders.Put(e)
	})
	if allocs != 0 {
		t.Errorf("pooled warn encode: %v allocs/op, want 0", allocs)
	}
}

// scratch is the reused encode buffer for the alloc measurement.
var scratch = make([]byte, 0, 256)
