package rsu

import (
	"errors"
	"testing"

	"cad3/internal/geo"
	"cad3/internal/stream"
)

// TestHandoverViaRouter routes a shard-boundary handover through a
// stream.SummaryRouter instead of a named neighbor: the summary crosses
// into the destination node's broker and lands in its store, and the
// source forgets the local history exactly as the neighbor path does.
func TestHandoverViaRouter(t *testing.T) {
	cluster, _, mwClient, lkClient := clusterFixture(t)

	for i := 0; i < 4; i++ {
		sendRecord(t, mwClient, mkRec(9, geo.Motorway, 140, 14))
	}
	if _, err := cluster.StepAll(); err != nil {
		t.Fatal(err)
	}

	router := stream.NewSummaryRouter(stream.RouterConfig{})
	if err := router.Register("shard-link", lkClient); err != nil {
		t.Fatal(err)
	}
	mw, _ := cluster.NodeByName("Mw")
	if err := mw.HandoverVia(9, func(key, value []byte) error {
		return router.Forward("shard-link", key, value)
	}); err != nil {
		t.Fatal(err)
	}
	if mw.TrackedCars() != 0 {
		t.Fatalf("source still tracks %d cars after handover", mw.TrackedCars())
	}
	if sent, err := router.Flush(); err != nil || sent != 1 {
		t.Fatalf("router flush = (%d, %v), want (1, nil)", sent, err)
	}
	if _, err := cluster.StepAll(); err != nil {
		t.Fatal(err)
	}
	link, _ := cluster.NodeByName("Link")
	if link.StoredSummaries() != 1 {
		t.Fatalf("destination stored %d summaries, want 1", link.StoredSummaries())
	}
	if got := cluster.Stats()["Mw"].SummariesSent; got != 1 {
		t.Fatalf("SummariesSent = %d, want 1", got)
	}

	// Unknown cars are a no-op, nil forwarders an error.
	if err := mw.HandoverVia(4242, func(key, value []byte) error { return nil }); err != nil {
		t.Fatalf("unknown car: %v", err)
	}
	if err := mw.HandoverVia(9, nil); err == nil {
		t.Fatal("nil forwarder accepted")
	}
}

// TestHandoverViaKeepsHistoryOnFailure: a failed forward keeps the local
// history (a later crossing can deliver it) and counts the drop.
func TestHandoverViaKeepsHistoryOnFailure(t *testing.T) {
	cluster, _, mwClient, _ := clusterFixture(t)
	for i := 0; i < 4; i++ {
		sendRecord(t, mwClient, mkRec(9, geo.Motorway, 140, 14))
	}
	if _, err := cluster.StepAll(); err != nil {
		t.Fatal(err)
	}
	mw, _ := cluster.NodeByName("Mw")
	boom := errors.New("link down")
	if err := mw.HandoverVia(9, func(key, value []byte) error { return boom }); !errors.Is(err, boom) {
		t.Fatalf("err = %v, want the forwarder's", err)
	}
	if mw.TrackedCars() != 1 {
		t.Fatalf("history lost on failed handover: tracked = %d", mw.TrackedCars())
	}
	if got := mw.Stats().DroppedHandovers; got != 1 {
		t.Fatalf("DroppedHandovers = %d, want 1", got)
	}
	// The retry delivers.
	if err := mw.HandoverVia(9, func(key, value []byte) error { return nil }); err != nil {
		t.Fatal(err)
	}
	if mw.TrackedCars() != 0 {
		t.Fatalf("tracked = %d after successful retry", mw.TrackedCars())
	}
}
