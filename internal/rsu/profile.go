package rsu

import (
	"math"
	"sync"
	"time"
)

// RoadProfile is the rolling per-road context an RSU maintains (§IV-C of
// the paper: each RSU "utilizes contextual information (i.e., road type,
// hour of the day, and speed profile)"): a time-windowed mean/variance of
// observed speeds, updated on every record and queried to fill the
// road-mean-speed context (v̄_r of Equation 4) for records that arrive
// without one.
//
// The window is implemented as a ring of per-interval buckets, so old
// traffic ages out and the profile follows the road's actual condition
// (rush hours, incidents) rather than an all-time average.
type RoadProfile struct {
	mu       sync.Mutex
	bucketD  time.Duration
	buckets  []profileBucket
	now      func() time.Time
	lastTick int64
}

type profileBucket struct {
	tick  int64 // bucket epoch (unix / bucketD); stale buckets are reset
	n     int64
	sum   float64
	sumSq float64
}

// Window defaults: 10 buckets of 1 minute — a 10-minute rolling profile.
const (
	defaultProfileBuckets  = 10
	defaultProfileBucketD  = time.Minute
	minProfileObservations = 8
)

// NewRoadProfile creates a rolling profile. bucketD <= 0 selects 1 min,
// buckets <= 0 selects 10; now nil selects time.Now.
func NewRoadProfile(bucketD time.Duration, buckets int, now func() time.Time) *RoadProfile {
	if bucketD <= 0 {
		bucketD = defaultProfileBucketD
	}
	if buckets <= 0 {
		buckets = defaultProfileBuckets
	}
	if now == nil {
		now = time.Now
	}
	return &RoadProfile{
		bucketD: bucketD,
		buckets: make([]profileBucket, buckets),
		now:     now,
	}
}

// Observe folds one speed sample into the current bucket.
func (p *RoadProfile) Observe(speedKmh float64) {
	p.mu.Lock()
	defer p.mu.Unlock()
	tick := p.now().UnixNano() / int64(p.bucketD)
	b := &p.buckets[tick%int64(len(p.buckets))]
	if b.tick != tick {
		*b = profileBucket{tick: tick}
	}
	b.n++
	b.sum += speedKmh
	b.sumSq += speedKmh * speedKmh
}

// MeanStd returns the windowed mean and standard deviation of speed, and
// ok=false until enough samples accumulated.
func (p *RoadProfile) MeanStd() (mean, std float64, ok bool) {
	p.mu.Lock()
	defer p.mu.Unlock()
	tick := p.now().UnixNano() / int64(p.bucketD)
	oldest := tick - int64(len(p.buckets)) + 1
	var n int64
	var sum, sumSq float64
	for i := range p.buckets {
		b := p.buckets[i]
		if b.tick < oldest || b.tick > tick {
			continue // stale or future bucket
		}
		n += b.n
		sum += b.sum
		sumSq += b.sumSq
	}
	if n < minProfileObservations {
		return 0, 0, false
	}
	mean = sum / float64(n)
	variance := sumSq/float64(n) - mean*mean
	if variance < 0 {
		variance = 0
	}
	return mean, math.Sqrt(variance), true
}

// ProfileBucketState is one exported ring bucket (checkpointing).
type ProfileBucketState struct {
	Tick  int64   `json:"tick"`
	N     int64   `json:"n"`
	Sum   float64 `json:"sum"`
	SumSq float64 `json:"sumSq"`
}

// ProfileSnapshot is a RoadProfile checkpoint: the window geometry plus
// every bucket, so a restarted RSU resumes with its rolling speed
// context instead of spending minutes re-warming it.
type ProfileSnapshot struct {
	BucketNanos int64                `json:"bucketNs"`
	Buckets     []ProfileBucketState `json:"buckets"`
}

// Snapshot exports the profile's state.
func (p *RoadProfile) Snapshot() ProfileSnapshot {
	p.mu.Lock()
	defer p.mu.Unlock()
	snap := ProfileSnapshot{
		BucketNanos: int64(p.bucketD),
		Buckets:     make([]ProfileBucketState, len(p.buckets)),
	}
	for i, b := range p.buckets {
		snap.Buckets[i] = ProfileBucketState{Tick: b.tick, N: b.n, Sum: b.sum, SumSq: b.sumSq}
	}
	return snap
}

// Restore replaces the profile's window with a snapshot's. Bucket ticks
// carry their epoch, so stale buckets age out naturally after restore.
func (p *RoadProfile) Restore(snap ProfileSnapshot) {
	p.mu.Lock()
	defer p.mu.Unlock()
	if snap.BucketNanos > 0 {
		p.bucketD = time.Duration(snap.BucketNanos)
	}
	if len(snap.Buckets) > 0 {
		p.buckets = make([]profileBucket, len(snap.Buckets))
		for i, b := range snap.Buckets {
			p.buckets[i] = profileBucket{tick: b.Tick, n: b.N, sum: b.Sum, sumSq: b.SumSq}
		}
	}
}

// Samples returns the number of samples currently inside the window.
func (p *RoadProfile) Samples() int64 {
	p.mu.Lock()
	defer p.mu.Unlock()
	tick := p.now().UnixNano() / int64(p.bucketD)
	oldest := tick - int64(len(p.buckets)) + 1
	var n int64
	for i := range p.buckets {
		if b := p.buckets[i]; b.tick >= oldest && b.tick <= tick {
			n += b.n
		}
	}
	return n
}
