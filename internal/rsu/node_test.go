package rsu

import (
	"bytes"
	"context"
	"errors"
	"log/slog"
	"strings"
	"testing"
	"time"

	"cad3/internal/core"
	"cad3/internal/geo"
	"cad3/internal/stream"
	"cad3/internal/trace"
)

// mkRec builds a record with the given speed on the given road type.
func mkRec(car trace.CarID, rt geo.RoadType, speed float64, hour int) trace.Record {
	return trace.Record{
		Car: car, Road: 7, RoadType: rt, Speed: speed, Accel: 0,
		Hour: hour, Day: 4, RoadMeanSpeed: 35,
	}
}

// trainedDetectors builds a quick labeler + AD3(link) + AD3(motorway) +
// CAD3(link) from a hand-made distribution: link normal ~N(35,5),
// motorway ~N(100,10), abnormal = tails.
func trainedDetectors(t testing.TB) (*core.Labeler, *core.AD3, *core.AD3, *core.CAD3) {
	t.Helper()
	var recs []trace.Record
	offsets := []float64{-2.8, -1.6, -0.9, -0.4, 0, 0.4, 0.9, 1.6, 2.8}
	car := trace.CarID(1)
	for _, o := range offsets {
		for rep := 0; rep < 30; rep++ {
			for _, hour := range []int{8, 14, 21} {
				l := mkRec(car, geo.MotorwayLink, 35+o*5, hour)
				m := mkRec(car, geo.Motorway, 100+o*10, hour)
				recs = append(recs, l, m)
				car++
			}
		}
	}
	labeler, err := core.TrainLabeler(recs, 0)
	if err != nil {
		t.Fatal(err)
	}
	link := core.NewAD3(geo.MotorwayLink)
	if err := link.Train(recs, labeler); err != nil {
		t.Fatal(err)
	}
	mw := core.NewAD3(geo.Motorway)
	if err := mw.Train(recs, labeler); err != nil {
		t.Fatal(err)
	}
	cad := core.NewCAD3(geo.MotorwayLink, core.CAD3Config{})
	if err := cad.Train(recs, labeler, mw); err != nil {
		t.Fatal(err)
	}
	return labeler, link, mw, cad
}

func newNode(t *testing.T, name string, det core.Detector) (*Node, *stream.Broker, stream.Client) {
	t.Helper()
	b := stream.NewBroker(stream.BrokerConfig{})
	client := stream.NewInProcClient(b)
	n, err := New(Config{
		Name:     name,
		Road:     7,
		Detector: det,
		Client:   client,
	})
	if err != nil {
		t.Fatal(err)
	}
	return n, b, client
}

func sendRecord(t *testing.T, client stream.Client, rec trace.Record) {
	t.Helper()
	payload, err := core.EncodeRecord(rec)
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := client.Produce(stream.TopicInData, stream.AutoPartition, nil, payload); err != nil {
		t.Fatal(err)
	}
}

func TestNodeDetectsAndWarns(t *testing.T) {
	_, link, _, _ := trainedDetectors(t)
	n, _, client := newNode(t, "MwLink", link)

	// One clearly normal, one clearly abnormal record.
	sendRecord(t, client, mkRec(100, geo.MotorwayLink, 35, 14))
	sendRecord(t, client, mkRec(101, geo.MotorwayLink, 90, 14))

	bs, err := n.Step()
	if err != nil {
		t.Fatal(err)
	}
	if bs.Records != 2 {
		t.Fatalf("processed %d records, want 2", bs.Records)
	}

	out, err := stream.NewConsumer(client, stream.TopicOutData, 0)
	if err != nil {
		t.Fatal(err)
	}
	msgs, err := out.Poll(16)
	if err != nil {
		t.Fatal(err)
	}
	if len(msgs) != 1 {
		t.Fatalf("got %d warnings, want 1", len(msgs))
	}
	w, err := core.DecodeWarning(msgs[0].Value)
	if err != nil {
		t.Fatal(err)
	}
	if w.Car != 101 {
		t.Errorf("warning for car %d, want 101", w.Car)
	}
	st := n.Stats()
	if st.Records != 2 || st.Warnings != 1 || st.Engine.Batches != 1 {
		t.Errorf("stats = %+v", st)
	}
	if n.TrackedCars() != 2 {
		t.Errorf("TrackedCars = %d, want 2", n.TrackedCars())
	}
}

func TestHandoverDeliversSummary(t *testing.T) {
	_, _, mw, cad := trainedDetectors(t)
	mwNode, _, mwClient := newNode(t, "Mw", mw)
	linkNode, _, linkClient := newNode(t, "MwLink", cad)
	if err := mwNode.AddNeighbor("MwLink", linkClient); err != nil {
		t.Fatal(err)
	}

	// The car drives the motorway abnormally fast; the motorway RSU
	// accumulates predictions.
	for i := 0; i < 5; i++ {
		sendRecord(t, mwClient, mkRec(7, geo.Motorway, 135, 14))
	}
	if _, err := mwNode.Step(); err != nil {
		t.Fatal(err)
	}
	if mwNode.TrackedCars() != 1 {
		t.Fatalf("motorway node tracks %d cars", mwNode.TrackedCars())
	}

	// Handover to the link RSU.
	if err := mwNode.Handover(7, "MwLink"); err != nil {
		t.Fatal(err)
	}
	if got := mwNode.Stats().SummariesSent; got != 1 {
		t.Errorf("SummariesSent = %d", got)
	}
	if mwNode.TrackedCars() != 0 {
		t.Error("handover should forget the car locally")
	}

	// The link RSU ingests the summary and uses it as prior.
	sendRecord(t, linkClient, mkRec(7, geo.MotorwayLink, 50, 14))
	if _, err := linkNode.Step(); err != nil {
		t.Fatal(err)
	}
	st := linkNode.Stats()
	if st.SummariesReceived != 1 {
		t.Errorf("SummariesReceived = %d", st.SummariesReceived)
	}
	if st.PriorHits != 1 {
		t.Errorf("PriorHits = %d, want 1", st.PriorHits)
	}
	if linkNode.StoredSummaries() != 1 {
		t.Errorf("StoredSummaries = %d", linkNode.StoredSummaries())
	}

	// Handover for an unknown car is a no-op, unknown neighbor an error.
	if err := mwNode.Handover(999, "MwLink"); err != nil {
		t.Errorf("unknown car handover: %v", err)
	}
	if err := mwNode.Handover(7, "ghost"); !errors.Is(err, ErrNoNeighbor) {
		t.Errorf("err = %v, want ErrNoNeighbor", err)
	}
}

func TestNodePriorMissFallsBack(t *testing.T) {
	_, _, _, cad := trainedDetectors(t)
	n, _, client := newNode(t, "MwLink", cad)
	sendRecord(t, client, mkRec(55, geo.MotorwayLink, 36, 14))
	if _, err := n.Step(); err != nil {
		t.Fatal(err)
	}
	st := n.Stats()
	if st.PriorMisses != 1 || st.PriorHits != 0 {
		t.Errorf("prior stats = %+v", st)
	}
	if st.DetectErrors != 0 {
		t.Errorf("DetectErrors = %d", st.DetectErrors)
	}
}

func TestNodeSurvivesCoDataPartitionFailure(t *testing.T) {
	_, link, _, _ := trainedDetectors(t)
	n, b, client := newNode(t, "MwLink", link)
	b.SetPartitionDown(stream.TopicCoData, 0, true)
	b.SetPartitionDown(stream.TopicCoData, 1, true)
	b.SetPartitionDown(stream.TopicCoData, 2, true)

	sendRecord(t, client, mkRec(1, geo.MotorwayLink, 90, 14))
	bs, err := n.Step()
	if err != nil {
		t.Fatalf("Step should tolerate CO-DATA failure, got %v", err)
	}
	if bs.Records != 1 {
		t.Errorf("records = %d", bs.Records)
	}
	if n.Stats().Warnings != 1 {
		t.Error("detection should continue without collaboration")
	}
}

func TestNodeValidation(t *testing.T) {
	_, link, _, _ := trainedDetectors(t)
	b := stream.NewBroker(stream.BrokerConfig{})
	client := stream.NewInProcClient(b)
	if _, err := New(Config{Client: client}); !errors.Is(err, ErrNoDetector) {
		t.Errorf("err = %v, want ErrNoDetector", err)
	}
	if _, err := New(Config{Detector: link}); !errors.Is(err, ErrNoClient) {
		t.Errorf("err = %v, want ErrNoClient", err)
	}
	n, err := New(Config{Name: "x", Detector: link, Client: client})
	if err != nil {
		t.Fatal(err)
	}
	if err := n.AddNeighbor("y", nil); !errors.Is(err, ErrNoClient) {
		t.Errorf("err = %v, want ErrNoClient", err)
	}
	if n.Name() != "x" || n.Road() != 0 {
		t.Errorf("identity = %q %d", n.Name(), n.Road())
	}
}

func TestNodeRunWallClock(t *testing.T) {
	_, link, _, _ := trainedDetectors(t)
	n, _, client := newNode(t, "MwLink", link)
	n2, err := New(Config{
		Name: "fast", Road: 7, Detector: link, Client: client,
		BatchInterval: 5 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	_ = n // the default-interval node is exercised elsewhere

	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() { done <- n2.Run(ctx) }()

	for i := 0; i < 10; i++ {
		sendRecord(t, client, mkRec(trace.CarID(i), geo.MotorwayLink, 90, 14))
		time.Sleep(2 * time.Millisecond)
	}
	deadline := time.Now().Add(2 * time.Second)
	for n2.Stats().Warnings < 10 && time.Now().Before(deadline) {
		time.Sleep(5 * time.Millisecond)
	}
	cancel()
	if err := <-done; !errors.Is(err, context.Canceled) {
		t.Errorf("Run returned %v", err)
	}
	if got := n2.Stats().Warnings; got < 10 {
		t.Errorf("warnings = %d, want >= 10", got)
	}
}

func TestNodeMalformedRecordsCounted(t *testing.T) {
	_, link, _, _ := trainedDetectors(t)
	n, _, client := newNode(t, "MwLink", link)
	if _, _, err := client.Produce(stream.TopicInData, stream.AutoPartition, nil, []byte("garbage")); err != nil {
		t.Fatal(err)
	}
	bs, err := n.Step()
	if err != nil {
		t.Fatal(err)
	}
	if bs.DecodeErrors != 1 || bs.Records != 0 {
		t.Errorf("batch = %+v", bs)
	}
}

func TestWarnCooldownSuppressesRepeats(t *testing.T) {
	_, link, _, _ := trainedDetectors(t)
	b := stream.NewBroker(stream.BrokerConfig{})
	client := stream.NewInProcClient(b)
	n, err := New(Config{
		Name: "MwLink", Road: 7, Detector: link, Client: client,
		WarnCooldown: time.Minute,
	})
	if err != nil {
		t.Fatal(err)
	}
	// The same car abnormal five times in quick succession: one warning.
	for i := 0; i < 5; i++ {
		sendRecord(t, client, mkRec(42, geo.MotorwayLink, 90, 14))
	}
	if _, err := n.Step(); err != nil {
		t.Fatal(err)
	}
	st := n.Stats()
	if st.Warnings != 1 {
		t.Errorf("warnings = %d, want 1 under cooldown", st.Warnings)
	}
	if st.WarningsSuppressed != 4 {
		t.Errorf("suppressed = %d, want 4", st.WarningsSuppressed)
	}
	// A different car is unaffected.
	sendRecord(t, client, mkRec(43, geo.MotorwayLink, 90, 14))
	if _, err := n.Step(); err != nil {
		t.Fatal(err)
	}
	if got := n.Stats().Warnings; got != 2 {
		t.Errorf("warnings = %d, want 2", got)
	}
}

func TestNodeWithLogger(t *testing.T) {
	_, _, mw, _ := trainedDetectors(t)
	var buf bytes.Buffer
	logger := slog.New(slog.NewTextHandler(&buf, &slog.HandlerOptions{Level: slog.LevelDebug}))
	b := stream.NewBroker(stream.BrokerConfig{})
	client := stream.NewInProcClient(b)
	n, err := New(Config{Name: "Mw", Road: 1, Detector: mw, Client: client, Logger: logger})
	if err != nil {
		t.Fatal(err)
	}
	n2, err := New(Config{Name: "Link", Road: 2, Detector: mw, Client: stream.NewInProcClient(stream.NewBroker(stream.BrokerConfig{}))})
	if err != nil {
		t.Fatal(err)
	}
	if err := n.AddNeighbor("Link", stream.NewInProcClient(stream.NewBroker(stream.BrokerConfig{}))); err != nil {
		t.Fatal(err)
	}
	_ = n2
	sendRecord(t, client, mkRec(3, geo.Motorway, 140, 14))
	if _, err := n.Step(); err != nil {
		t.Fatal(err)
	}
	if err := n.Handover(3, "Link"); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "warning produced") {
		t.Errorf("log missing warning event:\n%s", out)
	}
	if !strings.Contains(out, "handover") {
		t.Errorf("log missing handover event:\n%s", out)
	}
}

// Degraded-mode admission: a node that cannot clear its backlog (consecutive
// saturated batches) sheds stale telemetry from vehicles whose forwarded
// summaries read low-risk — and only those.
func TestNodeDegradedModeShedsStaleLowRisk(t *testing.T) {
	_, link, _, _ := trainedDetectors(t)
	b := stream.NewBroker(stream.BrokerConfig{})
	client := stream.NewInProcClient(b)
	base := time.UnixMilli(1_700_000_000_000)
	n, err := New(Config{
		Name:           "MwLink",
		Road:           7,
		Detector:       link,
		Client:         client,
		Partitions:     1,
		MaxBatch:       8,
		ShedStaleAfter: time.Second,
		DegradedAfter:  2,
		Now:            func() time.Time { return base },
	})
	if err != nil {
		t.Fatal(err)
	}

	// Car 500 has a forwarded summary that says it behaves; car 501 has
	// no history at this RSU.
	sum := core.PredictionSummary{
		Car: 500, MeanPNormal: 0.95, Count: 5, FromRoad: 3,
		UpdatedMs: base.UnixMilli(),
	}
	payload, err := core.EncodeSummary(sum)
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := client.Produce(stream.TopicCoData, 0, nil, payload); err != nil {
		t.Fatal(err)
	}

	send := func(car trace.CarID, tsMs int64) {
		t.Helper()
		rec := mkRec(car, geo.MotorwayLink, 35, 14)
		rec.TimestampMs = tsMs
		sendRecord(t, client, rec)
	}

	// Two full drains in a row: the node declares itself degraded.
	for i := 0; i < 16; i++ {
		send(trace.CarID(100+i), base.UnixMilli())
	}
	for i := 0; i < 2; i++ {
		bs, err := n.Step()
		if err != nil {
			t.Fatal(err)
		}
		if !bs.Saturated || bs.Records != 8 {
			t.Fatalf("step %d: records=%d saturated=%v, want a full drain of 8", i, bs.Records, bs.Saturated)
		}
	}
	if !n.Stats().Degraded {
		t.Fatal("two saturated batches should flip the node degraded")
	}

	// One stale record each from the low-risk and the unknown car, plus a
	// fresh one from the low-risk car: only the stale low-risk record is
	// shed.
	stale := base.Add(-5 * time.Second).UnixMilli()
	send(500, stale)
	send(501, stale)
	send(500, base.UnixMilli())
	bs, err := n.Step()
	if err != nil {
		t.Fatal(err)
	}
	if bs.Records != 3 {
		t.Fatalf("drained %d records, want 3", bs.Records)
	}

	st := n.Stats()
	if st.ShedStale != 1 {
		t.Errorf("ShedStale = %d, want 1 (only the stale low-risk record)", st.ShedStale)
	}
	if st.Degraded {
		t.Error("an unsaturated batch should clear degraded mode")
	}
	if st.DegradedRounds != 1 {
		t.Errorf("DegradedRounds = %d, want 1", st.DegradedRounds)
	}
	if got := n.Registry().Snapshot().Gauges["flow.node.shed_stale"]; got != 1 {
		t.Errorf("flow.node.shed_stale gauge = %d, want 1", got)
	}
	if d := st.DegradedCounters(); d.ShedStale != 1 {
		t.Errorf("DegradedCounters().ShedStale = %d, want 1", d.ShedStale)
	}
}

// With BatchSLO set the node's engine runs under an AIMD drain bound.
func TestNodeAdaptiveBatchBound(t *testing.T) {
	_, link, _, _ := trainedDetectors(t)
	b := stream.NewBroker(stream.BrokerConfig{})
	client := stream.NewInProcClient(b)
	n, err := New(Config{
		Name: "MwLink", Road: 7, Detector: link, Client: client,
		Partitions: 1, BatchSLO: 50 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	// The controller's default floor is 32: a 100-record backlog drains in
	// bounded slices, not all at once.
	for i := 0; i < 100; i++ {
		sendRecord(t, client, mkRec(trace.CarID(1000+i), geo.MotorwayLink, 35, 14))
	}
	bs, err := n.Step()
	if err != nil {
		t.Fatal(err)
	}
	if bs.Records > 96 {
		t.Errorf("first adaptive batch drained %d records, want a bounded slice", bs.Records)
	}
	if got := n.Registry().Snapshot().Gauges["flow.node.batch_limit"]; got == 0 {
		t.Error("flow.node.batch_limit gauge not registered")
	}
}
