package rsu

import (
	"errors"
	"fmt"
	"testing"
	"time"

	"cad3/internal/geo"
	"cad3/internal/obsv"
	"cad3/internal/stream"
)

// supervisedFixture is a 2-node corridor whose brokers are reachable for
// killing and snapshotting.
type supervisedFixture struct {
	cluster  *Cluster
	mwBroker *stream.Broker
	lkBroker *stream.Broker
	mwClient stream.Client
	lkClient stream.Client
}

func newSupervisedFixture(t *testing.T) *supervisedFixture {
	t.Helper()
	_, _, mw, cad := trainedDetectors(t)

	net := geo.NewNetwork(0)
	if err := net.AddSegment(lineSeg(t, 1, geo.Motorway)); err != nil {
		t.Fatal(err)
	}
	if err := net.AddSegment(lineSeg(t, 2, geo.MotorwayLink)); err != nil {
		t.Fatal(err)
	}
	if err := net.Connect(1, 2); err != nil {
		t.Fatal(err)
	}

	f := &supervisedFixture{
		mwBroker: stream.NewBroker(stream.BrokerConfig{}),
		lkBroker: stream.NewBroker(stream.BrokerConfig{}),
	}
	f.mwClient = stream.NewInProcClient(f.mwBroker)
	f.lkClient = stream.NewInProcClient(f.lkBroker)
	cluster, err := NewCluster(net, []Config{
		{Name: "Mw", Road: 1, Detector: mw, Client: f.mwClient},
		{Name: "Link", Road: 2, Detector: cad, Client: f.lkClient},
	})
	if err != nil {
		t.Fatal(err)
	}
	f.cluster = cluster
	return f
}

func TestSupervisorRestartsDeadNodeFromCheckpoint(t *testing.T) {
	f := newSupervisedFixture(t)
	reg := obsv.NewRegistry()

	// The restart hook plays the operator: bring up a broker restored
	// from the dead one's log and recover the node from its checkpoint.
	var restoredBroker *stream.Broker
	restart := func(name string, cp *Checkpoint) (*Node, error) {
		if name != "Mw" {
			return nil, fmt.Errorf("unexpected restart of %q", name)
		}
		if cp == nil {
			return nil, errors.New("no checkpoint to recover from")
		}
		snap := f.mwBroker.Snapshot()
		b, err := stream.RestoreBroker(stream.BrokerConfig{}, snap)
		if err != nil {
			return nil, err
		}
		restoredBroker = b
		return Recover(Config{Client: stream.NewInProcClient(b)}, cp)
	}
	sup, err := NewSupervisor(SupervisorConfig{
		Cluster:       f.cluster,
		Restart:       restart,
		FailThreshold: 2,
		Seed:          7,
		Metrics:       reg,
	})
	if err != nil {
		t.Fatal(err)
	}

	// The motorway node builds up state worth preserving.
	for i := 0; i < 4; i++ {
		sendRecord(t, f.mwClient, mkRec(9, geo.Motorway, 140, 14))
	}
	if _, err := f.cluster.StepAll(); err != nil {
		t.Fatal(err)
	}
	if got := sup.CheckOnce(); got != 0 {
		t.Fatalf("unhealthy = %d on a healthy cluster", got)
	}
	if _, ok := sup.LastCheckpoint("Mw"); !ok {
		t.Fatal("healthy heartbeat should checkpoint the node")
	}

	// Kill the motorway broker. Below the threshold nothing restarts.
	if err := f.mwBroker.Close(); err != nil {
		t.Fatal(err)
	}
	if got := sup.CheckOnce(); got != 1 {
		t.Fatalf("unhealthy = %d, want 1", got)
	}
	for _, h := range sup.Health() {
		if h.Name == "Mw" && (h.Healthy || h.Restarts != 0) {
			t.Fatalf("below threshold: %+v", h)
		}
	}

	// The second consecutive failure crosses the threshold: restart.
	if got := sup.CheckOnce(); got != 0 {
		t.Fatalf("unhealthy after restart = %d, want 0", got)
	}
	var mwHealth NodeHealth
	for _, h := range sup.Health() {
		if h.Name == "Mw" {
			mwHealth = h
		}
	}
	if !mwHealth.Healthy || mwHealth.Restarts != 1 {
		t.Fatalf("post-restart health = %+v", mwHealth)
	}
	snap := reg.Snapshot()
	if snap.Counters["Mw.restarts"] != 1 || snap.Counters["Mw.heartbeat.fail"] != 2 {
		t.Errorf("counters = %v", snap.Counters)
	}
	if got := reg.Gauge("supervisor.unhealthy").Value(); got != 0 {
		t.Errorf("supervisor.unhealthy = %d after restart, want 0", got)
	}

	// The replacement is live in the topology with its state restored...
	repl, err := f.cluster.NodeByName("Mw")
	if err != nil {
		t.Fatal(err)
	}
	if repl.TrackedCars() != 1 {
		t.Errorf("recovered TrackedCars = %d, want 1 (car 9)", repl.TrackedCars())
	}
	if restoredBroker == nil {
		t.Fatal("restart hook never ran")
	}
	// ...and both handover directions work across the rewired producers.
	if err := f.cluster.Handover(9, 1, 2); err != nil {
		t.Fatalf("handover through replacement: %v", err)
	}
	if _, err := f.cluster.StepAll(); err != nil {
		t.Fatal(err)
	}
	link, _ := f.cluster.NodeByName("Link")
	if link.StoredSummaries() != 1 {
		t.Errorf("link stored %d summaries after rewire, want 1", link.StoredSummaries())
	}
}

func TestSupervisorBackoffAndRestartBudget(t *testing.T) {
	f := newSupervisedFixture(t)
	now := time.Unix(1000, 0)
	attempts := 0
	sup, err := NewSupervisor(SupervisorConfig{
		Cluster: f.cluster,
		Restart: func(name string, cp *Checkpoint) (*Node, error) {
			attempts++
			return nil, errors.New("still down")
		},
		FailThreshold: 1,
		MaxRestarts:   3,
		BaseBackoff:   time.Second,
		Seed:          11,
		Now:           func() time.Time { return now },
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := f.mwBroker.Close(); err != nil {
		t.Fatal(err)
	}

	// First failure triggers an attempt; it fails and arms the backoff.
	sup.CheckOnce()
	if attempts != 1 {
		t.Fatalf("attempts = %d, want 1", attempts)
	}
	// Within the backoff window no new attempt is made.
	sup.CheckOnce()
	if attempts != 1 {
		t.Fatalf("attempts = %d during backoff, want 1", attempts)
	}
	// Past the (jittered ≤ 1.2×) window the next attempt fires.
	now = now.Add(1300 * time.Millisecond)
	sup.CheckOnce()
	if attempts != 2 {
		t.Fatalf("attempts = %d after backoff, want 2", attempts)
	}
	for _, h := range sup.Health() {
		if h.Name == "Mw" && h.LastError == "" {
			t.Error("failed restart should surface its error")
		}
	}
}

func TestSupervisorWithoutRestartHookOnlyObserves(t *testing.T) {
	f := newSupervisedFixture(t)
	reg := obsv.NewRegistry()
	sup, err := NewSupervisor(SupervisorConfig{
		Cluster: f.cluster, FailThreshold: 1, Metrics: reg, Seed: 3,
	})
	if err != nil {
		t.Fatal(err)
	}

	// A CAD3 node detecting without priors degrades to AD3; the
	// supervisor publishes the fallback deltas.
	sendRecord(t, f.lkClient, mkRec(5, geo.MotorwayLink, 36, 14))
	if _, err := f.cluster.StepAll(); err != nil {
		t.Fatal(err)
	}
	sup.CheckOnce()
	if got := reg.Counter("Link.degraded.fallbacks").Value(); got != 1 {
		t.Errorf("Link.degraded.fallbacks = %d, want 1", got)
	}

	if err := f.mwBroker.Close(); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		if got := sup.CheckOnce(); got != 1 {
			t.Fatalf("unhealthy = %d, want 1 (no restart hook)", got)
		}
	}
	for _, h := range sup.Health() {
		if h.Name == "Mw" && (h.Restarts != 0 || h.ConsecutiveFails != 3) {
			t.Errorf("observer-only health = %+v", h)
		}
	}
}

func TestSupervisorValidation(t *testing.T) {
	if _, err := NewSupervisor(SupervisorConfig{}); err == nil {
		t.Error("want error for missing cluster")
	}
}

func TestReplaceNodeValidation(t *testing.T) {
	f := newSupervisedFixture(t)
	if err := f.cluster.ReplaceNode("Mw", nil); err == nil {
		t.Error("want error for nil replacement")
	}
	mw, _ := f.cluster.NodeByName("Mw")
	if err := f.cluster.ReplaceNode("ghost", mw); !errors.Is(err, ErrNoRSU) {
		t.Errorf("err = %v, want ErrNoRSU", err)
	}
	link, _ := f.cluster.NodeByName("Link")
	if err := f.cluster.ReplaceNode("Mw", link); err == nil {
		t.Error("want error for road mismatch")
	}
}
