package rsu_test

import (
	"fmt"

	"cad3/internal/core"
	"cad3/internal/geo"
	"cad3/internal/rsu"
	"cad3/internal/stream"
	"cad3/internal/trace"
)

// Example assembles a minimal edge node: train an AD3 detector on a
// hand-made speed distribution, stand the node up on an in-process
// broker, feed it one clearly abnormal record, and run one 50 ms
// micro-batch step. The node's registry gauges mirror its stats — the
// same view the -debug-addr /metrics endpoint serves.
func Example() {
	// Normal link traffic ~N(35,5); the tails are labelled abnormal.
	var recs []trace.Record
	car := trace.CarID(1)
	for _, offset := range []float64{-2.8, -1.6, -0.9, -0.4, 0, 0.4, 0.9, 1.6, 2.8} {
		for rep := 0; rep < 30; rep++ {
			for _, hour := range []int{8, 14, 21} {
				recs = append(recs, trace.Record{
					Car: car, Road: 7, RoadType: geo.MotorwayLink,
					Speed: 35 + offset*5, Hour: hour, Day: 4, RoadMeanSpeed: 35,
				})
				car++
			}
		}
	}
	labeler, err := core.TrainLabeler(recs, 0)
	if err != nil {
		fmt.Println(err)
		return
	}
	detector := core.NewAD3(geo.MotorwayLink)
	if err := detector.Train(recs, labeler); err != nil {
		fmt.Println(err)
		return
	}

	broker := stream.NewBroker(stream.BrokerConfig{})
	node, err := rsu.New(rsu.Config{
		Name:     "R1",
		Road:     7,
		Detector: detector,
		Client:   stream.NewInProcClient(broker),
	})
	if err != nil {
		fmt.Println(err)
		return
	}

	// 3 km/h on a 35 km/h link: far outside the trained band.
	payload, err := core.EncodeRecord(trace.Record{
		Car: 99, Road: 7, RoadType: geo.MotorwayLink,
		Speed: 3, Hour: 8, Day: 4, RoadMeanSpeed: 35,
	})
	if err != nil {
		fmt.Println(err)
		return
	}
	if _, _, err := node.Client().Produce(stream.TopicInData, stream.AutoPartition, nil, payload); err != nil {
		fmt.Println(err)
		return
	}

	if _, err := node.Step(); err != nil {
		fmt.Println(err)
		return
	}
	st := node.Stats()
	gauges := node.Registry().Snapshot().Gauges
	fmt.Printf("records=%d warnings=%d\n", st.Records, st.Warnings)
	fmt.Printf("gauge rsu.warnings=%d\n", gauges["rsu.warnings"])
	// Output:
	// records=1 warnings=1
	// gauge rsu.warnings=1
}
