package rsu

import (
	"math"
	"testing"
	"time"

	"cad3/internal/geo"
	"cad3/internal/trace"
)

func TestRoadProfileWindowedStats(t *testing.T) {
	now := time.Date(2016, 7, 4, 9, 0, 0, 0, time.UTC)
	clock := func() time.Time { return now }
	p := NewRoadProfile(time.Minute, 5, clock)

	if _, _, ok := p.MeanStd(); ok {
		t.Error("empty profile should not be ready")
	}
	for i := 0; i < 20; i++ {
		p.Observe(35 + float64(i%3)) // 35, 36, 37 repeating
	}
	mean, std, ok := p.MeanStd()
	if !ok {
		t.Fatal("profile not ready after 20 samples")
	}
	if math.Abs(mean-36) > 0.2 {
		t.Errorf("mean = %.2f, want ~36", mean)
	}
	if std < 0.5 || std > 1.5 {
		t.Errorf("std = %.2f", std)
	}
	if p.Samples() != 20 {
		t.Errorf("Samples = %d", p.Samples())
	}
}

func TestRoadProfileAgesOut(t *testing.T) {
	now := time.Date(2016, 7, 4, 9, 0, 0, 0, time.UTC)
	clock := func() time.Time { return now }
	p := NewRoadProfile(time.Minute, 5, clock)

	// Old traffic at ~80 km/h.
	for i := 0; i < 30; i++ {
		p.Observe(80)
	}
	mean, _, ok := p.MeanStd()
	if !ok || math.Abs(mean-80) > 0.1 {
		t.Fatalf("initial mean = %.1f, %v", mean, ok)
	}

	// 3 minutes later traffic slows to ~30 (incident).
	now = now.Add(3 * time.Minute)
	for i := 0; i < 30; i++ {
		p.Observe(30)
	}
	mean, _, _ = p.MeanStd()
	if mean >= 80 || mean <= 30 {
		t.Errorf("mixed-window mean = %.1f, want between 30 and 80", mean)
	}

	// After the window passes, only the new condition remains.
	now = now.Add(5 * time.Minute)
	for i := 0; i < 30; i++ {
		p.Observe(30)
	}
	mean, _, _ = p.MeanStd()
	if math.Abs(mean-30) > 0.1 {
		t.Errorf("post-window mean = %.1f, want 30 (old traffic aged out)", mean)
	}
}

func TestNodeMaintainsProfileAndBackfills(t *testing.T) {
	_, link, _, _ := trainedDetectors(t)
	n, _, client := newNode(t, "MwLink", link)

	// Stream records carrying no road mean speed.
	for i := 0; i < 20; i++ {
		rec := mkRec(trace.CarID(100+i), geo.MotorwayLink, 35, 14)
		rec.RoadMeanSpeed = 0
		sendRecord(t, client, rec)
	}
	if _, err := n.Step(); err != nil {
		t.Fatal(err)
	}
	mean, _, ok := n.Profile().MeanStd()
	if !ok {
		t.Fatal("node profile not ready after 20 records")
	}
	if math.Abs(mean-35) > 0.5 {
		t.Errorf("profile mean = %.2f, want ~35", mean)
	}
	if n.Profile().Samples() != 20 {
		t.Errorf("Samples = %d", n.Profile().Samples())
	}
}
