package chaos

import (
	"net"
	"testing"
	"time"

	"cad3/internal/stream"
)

// serveWrapped starts a broker server on a chaos-wrapped listener.
func serveWrapped(t *testing.T) (*stream.Broker, *Listener, *stream.Server) {
	t.Helper()
	b := stream.NewBroker(stream.BrokerConfig{})
	if err := b.CreateTopic("t", 1); err != nil {
		t.Fatal(err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	wl := WrapListener(ln)
	srv := stream.NewServerOn(b, wl)
	t.Cleanup(func() { _ = srv.Close() })
	return b, wl, srv
}

func TestListenerKillConnections(t *testing.T) {
	_, wl, srv := serveWrapped(t)
	c, err := stream.Dial(srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if _, _, err := c.Produce("t", 0, nil, []byte("ok")); err != nil {
		t.Fatal(err)
	}

	wl.KillConnections()
	if _, _, err := c.Produce("t", 0, nil, []byte("after kill")); err == nil {
		t.Error("want transport error after connection kill")
	}

	// A plain client must redial; the broker itself never went away.
	c2, err := stream.Dial(srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer c2.Close()
	msgs, err := c2.Fetch("t", 0, 0, 10)
	if err != nil || len(msgs) != 1 {
		t.Errorf("post-kill fetch = %d msgs, %v; want the pre-kill message", len(msgs), err)
	}
}

func TestListenerDownRefusesNewConnections(t *testing.T) {
	_, wl, srv := serveWrapped(t)
	wl.SetDown(true)

	// New connections are accepted then immediately closed: the first
	// request fails.
	if c, err := stream.Dial(srv.Addr()); err == nil {
		_, _, perr := c.Produce("t", 0, nil, []byte("x"))
		_ = c.Close()
		if perr == nil {
			t.Error("want error while listener is down")
		}
	}

	wl.SetDown(false)
	deadline := time.Now().Add(2 * time.Second)
	for {
		c, err := stream.Dial(srv.Addr())
		if err == nil {
			_, _, err = c.Produce("t", 0, nil, []byte("back"))
			_ = c.Close()
			if err == nil {
				break
			}
		}
		if time.Now().After(deadline) {
			t.Fatalf("server did not come back: %v", err)
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// TestRetryClientHealsThroughChaosListener is the reconnect-storm case:
// a retry client rides over killed connections transparently.
func TestRetryClientHealsThroughChaosListener(t *testing.T) {
	_, wl, srv := serveWrapped(t)
	rc, err := stream.DialRetry(srv.Addr(), 5, 5*time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	defer rc.Close()
	for i := 0; i < 5; i++ {
		if _, _, err := rc.Produce("t", 0, nil, []byte("m")); err != nil {
			t.Fatalf("produce %d: %v", i, err)
		}
		wl.KillConnections()
	}
	msgs, err := rc.Fetch("t", 0, 0, 100)
	if err != nil || len(msgs) != 5 {
		t.Errorf("fetch = %d msgs, %v; want 5", len(msgs), err)
	}
}
