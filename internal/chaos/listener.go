package chaos

import (
	"net"
	"sync"
)

// Listener wraps a net.Listener so the broker server accepting on it can
// be fault-injected without being torn down:
//
//   - KillConnections closes every live accepted connection (clients see
//     a dead TCP session and must redial — the reconnect-storm case
//     RetryClient's jittered backoff exists for);
//   - SetDown(true) additionally closes new connections immediately
//     after accept, so redial attempts fail until SetDown(false).
//
// The broker's in-memory log is untouched; pair with a Broker snapshot
// to model a full crash.
type Listener struct {
	inner net.Listener

	mu    sync.Mutex
	conns map[net.Conn]struct{}
	down  bool
}

var _ net.Listener = (*Listener)(nil)

// WrapListener decorates ln.
func WrapListener(ln net.Listener) *Listener {
	return &Listener{inner: ln, conns: make(map[net.Conn]struct{})}
}

// Accept implements net.Listener.
func (l *Listener) Accept() (net.Conn, error) {
	for {
		conn, err := l.inner.Accept()
		if err != nil {
			return nil, err
		}
		l.mu.Lock()
		if l.down {
			l.mu.Unlock()
			_ = conn.Close()
			continue // refuse while down; keep accepting so Close unblocks
		}
		tc := &trackedConn{Conn: conn, l: l}
		l.conns[conn] = struct{}{}
		l.mu.Unlock()
		return tc, nil
	}
}

// Close implements net.Listener.
func (l *Listener) Close() error {
	l.KillConnections()
	return l.inner.Close()
}

// Addr implements net.Listener.
func (l *Listener) Addr() net.Addr { return l.inner.Addr() }

// KillConnections closes every live accepted connection.
func (l *Listener) KillConnections() {
	l.mu.Lock()
	conns := make([]net.Conn, 0, len(l.conns))
	for c := range l.conns {
		conns = append(conns, c)
	}
	l.conns = make(map[net.Conn]struct{})
	l.mu.Unlock()
	for _, c := range conns {
		_ = c.Close()
	}
}

// SetDown makes the listener refuse (true) or accept (false) new
// connections. Taking it down also kills the live ones.
func (l *Listener) SetDown(down bool) {
	l.mu.Lock()
	l.down = down
	l.mu.Unlock()
	if down {
		l.KillConnections()
	}
}

// Live returns the number of live accepted connections.
func (l *Listener) Live() int {
	l.mu.Lock()
	defer l.mu.Unlock()
	return len(l.conns)
}

// trackedConn removes itself from the listener's live set on close.
type trackedConn struct {
	net.Conn
	l    *Listener
	once sync.Once
}

func (c *trackedConn) Close() error {
	c.once.Do(func() {
		c.l.mu.Lock()
		delete(c.l.conns, c.Conn)
		c.l.mu.Unlock()
	})
	return c.Conn.Close()
}
