package chaos

import (
	"sort"
	"sync"
	"time"
)

// Event is one scheduled fault action.
type Event struct {
	At   time.Time
	Name string
	fn   func()
}

// Schedule fires named fault actions (crash, restart, partition, heal)
// at fixed virtual times. The driving loop calls Advance with its
// current clock; due events fire in (time, insertion) order, so a chaos
// run's fault sequence is deterministic regardless of how coarsely the
// clock advances.
type Schedule struct {
	mu     sync.Mutex
	events []Event
	fired  []string
}

// NewSchedule creates an empty schedule.
func NewSchedule() *Schedule { return &Schedule{} }

// At registers fn to fire once the clock reaches t.
func (s *Schedule) At(t time.Time, name string, fn func()) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.events = append(s.events, Event{At: t, Name: name, fn: fn})
	// Stable sort keeps insertion order among same-instant events.
	sort.SliceStable(s.events, func(i, j int) bool { return s.events[i].At.Before(s.events[j].At) })
}

// Advance fires every event with At <= now and returns how many fired.
// Events fire outside the schedule lock, so they may register follow-up
// events (a crash scheduling its own restart).
func (s *Schedule) Advance(now time.Time) int {
	fired := 0
	for {
		s.mu.Lock()
		if len(s.events) == 0 || s.events[0].At.After(now) {
			s.mu.Unlock()
			return fired
		}
		ev := s.events[0]
		s.events = s.events[1:]
		s.fired = append(s.fired, ev.Name)
		s.mu.Unlock()
		ev.fn()
		fired++
	}
}

// Pending returns the number of unfired events.
func (s *Schedule) Pending() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.events)
}

// Fired returns the names of fired events, in firing order.
func (s *Schedule) Fired() []string {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]string, len(s.fired))
	copy(out, s.fired)
	return out
}
