package chaos

import (
	"errors"
	"testing"
	"time"

	"cad3/internal/stream"
)

func replinkFixture(t *testing.T, cfg Config) (*stream.Broker, *ReplicaLink) {
	t.Helper()
	b := stream.NewBroker(stream.BrokerConfig{})
	if err := b.CreateTopic(stream.TopicInData, 1); err != nil {
		t.Fatal(err)
	}
	return b, NewReplicaLink(NewInjector(cfg), "leader", "follower", b)
}

func someRecords(n int) []stream.ReplicaRecord {
	recs := make([]stream.ReplicaRecord, n)
	for i := range recs {
		recs[i] = stream.ReplicaRecord{Key: []byte{byte(i)}, Value: []byte("v"), AppendedAtNs: int64(i + 1)}
	}
	return recs
}

// TestReplicaLinkPartitionBlocksReplication: a partitioned link fails
// every replication operation with ErrLinkDown (the controller's cue to
// drop the follower from the ISR) and heals cleanly.
func TestReplicaLinkPartitionBlocksReplication(t *testing.T) {
	b, link := replinkFixture(t, Config{Seed: 1})
	link.Injector().Partition("leader", "follower")

	if _, err := link.ReplicaAppend(stream.TopicInData, 0, 0, 0, someRecords(2)); !errors.Is(err, ErrLinkDown) {
		t.Errorf("append err = %v, want ErrLinkDown", err)
	}
	if err := link.SetPartitionRole(stream.TopicInData, 0, true, 1, "leader"); !errors.Is(err, ErrLinkDown) {
		t.Errorf("role push err = %v, want ErrLinkDown", err)
	}
	if hwm, _ := b.HighWaterMark(stream.TopicInData, 0); hwm != 0 {
		t.Errorf("follower HWM = %d behind a partitioned link, want 0", hwm)
	}

	link.Injector().Heal("leader", "follower")
	if hwm, err := link.ReplicaAppend(stream.TopicInData, 0, 0, 0, someRecords(2)); err != nil || hwm != 2 {
		t.Errorf("append after heal = %d, %v, want 2", hwm, err)
	}
}

// TestReplicaLinkDropIsALostAck: a dropped append never reaches the
// follower, and the leader sees ErrConnKilled — on a real wire a lost
// ack and a dead connection are the same observation.
func TestReplicaLinkDropIsALostAck(t *testing.T) {
	b, link := replinkFixture(t, Config{Seed: 1, DropProb: 1})
	_, err := link.ReplicaAppend(stream.TopicInData, 0, 0, 0, someRecords(3))
	if !errors.Is(err, ErrConnKilled) {
		t.Errorf("dropped append err = %v, want ErrConnKilled", err)
	}
	if hwm, _ := b.HighWaterMark(stream.TopicInData, 0); hwm != 0 {
		t.Errorf("follower HWM = %d after a dropped append, want 0", hwm)
	}
	if got := link.Injector().Stats().Drops; got != 1 {
		t.Errorf("injector counted %d drops, want 1", got)
	}
}

// TestReplicaLinkDupExercisesIdempotency: a duplicated append applies
// the batch twice; the follower's overlap skip must absorb the replay,
// leaving the high watermark exactly one batch ahead.
func TestReplicaLinkDupExercisesIdempotency(t *testing.T) {
	b, link := replinkFixture(t, Config{Seed: 1, DupProb: 1})
	hwm, err := link.ReplicaAppend(stream.TopicInData, 0, 0, 0, someRecords(4))
	if err != nil {
		t.Fatal(err)
	}
	if hwm != 4 {
		t.Errorf("duplicated append HWM = %d, want 4 (overlap not skipped)", hwm)
	}
	if got, _ := b.HighWaterMark(stream.TopicInData, 0); got != 4 {
		t.Errorf("follower HWM = %d, want 4", got)
	}
	msgs, err := b.Fetch(stream.TopicInData, 0, 0, 16)
	if err != nil {
		t.Fatal(err)
	}
	defer stream.RecycleMessages(msgs)
	if len(msgs) != 4 {
		t.Errorf("follower log holds %d records, want 4", len(msgs))
	}
}

// TestReplicaLinkKillAndDelay: kills surface as ErrConnKilled; delays
// demand an injected Sleep (a silent wall-clock sleep would re-couple a
// deterministic study to the host scheduler).
func TestReplicaLinkKillAndDelay(t *testing.T) {
	_, killed := replinkFixture(t, Config{Seed: 1, KillProb: 1})
	if _, err := killed.ReplicaAppend(stream.TopicInData, 0, 0, 0, someRecords(1)); !errors.Is(err, ErrConnKilled) {
		t.Errorf("killed append err = %v, want ErrConnKilled", err)
	}
	if err := killed.SetPartitionRole(stream.TopicInData, 0, true, 1, "leader"); !errors.Is(err, ErrConnKilled) {
		t.Errorf("killed role push err = %v, want ErrConnKilled", err)
	}

	b, delayed := replinkFixture(t, Config{Seed: 1, DelayProb: 1, MinDelay: time.Millisecond, MaxDelay: time.Millisecond})
	func() {
		defer func() {
			if recover() == nil {
				t.Error("delay with nil Sleep did not panic")
			}
		}()
		_, _ = delayed.ReplicaAppend(stream.TopicInData, 0, 0, 0, someRecords(1))
	}()
	var slept time.Duration
	delayed.Sleep = func(d time.Duration) { slept += d }
	if hwm, err := delayed.ReplicaAppend(stream.TopicInData, 0, 0, 0, someRecords(1)); err != nil || hwm != 1 {
		t.Fatalf("delayed append = %d, %v, want 1", hwm, err)
	}
	if slept != time.Millisecond {
		t.Errorf("virtual sleep = %v, want 1ms", slept)
	}
	if hwm, _ := b.HighWaterMark(stream.TopicInData, 0); hwm != 1 {
		t.Errorf("follower HWM = %d, want 1", hwm)
	}
}

// TestReplicaLinkFlakyISRDropAndRejoin is the end-to-end tie-in: a
// ReplicaSet whose follower link is partitioned drops the follower from
// the ISR (acks=all produces still succeed on the shrunken ISR), and a
// heal plus one Tick brings it back in sync.
func TestReplicaLinkFlakyISRDropAndRejoin(t *testing.T) {
	inj := NewInjector(Config{Seed: 9})
	leaderB := stream.NewBroker(stream.BrokerConfig{})
	followerB := stream.NewBroker(stream.BrokerConfig{})
	rs, err := stream.NewReplicaSet(stream.ReplicaSetConfig{},
		stream.Replica{ID: "rL", Broker: leaderB},
		stream.Replica{ID: "rF", Broker: followerB, Link: NewReplicaLink(inj, "rL", "rF", followerB)})
	if err != nil {
		t.Fatal(err)
	}
	if err := rs.CreateTopic(stream.TopicInData, 1); err != nil {
		t.Fatal(err)
	}

	inj.Partition("rL", "rF")
	for i := 0; i < 5; i++ {
		if _, _, err := rs.Produce(stream.TopicInData, 0, nil, []byte("v"), stream.AckAll); err != nil {
			t.Fatalf("acks=all produce with a cut replica link: %v", err)
		}
	}
	if hwm, _ := followerB.HighWaterMark(stream.TopicInData, 0); hwm != 0 {
		t.Fatalf("follower HWM = %d across a cut link, want 0", hwm)
	}

	inj.Heal("rL", "rF")
	rs.Tick()
	if hwm, _ := followerB.HighWaterMark(stream.TopicInData, 0); hwm != 5 {
		t.Errorf("follower HWM = %d after heal+tick, want 5", hwm)
	}
	// Back in the ISR: the next acks=all produce replicates inline again.
	if _, _, err := rs.Produce(stream.TopicInData, 0, nil, []byte("v"), stream.AckAll); err != nil {
		t.Fatal(err)
	}
	if hwm, _ := followerB.HighWaterMark(stream.TopicInData, 0); hwm != 6 {
		t.Errorf("follower HWM = %d after rejoin, want 6 (not back in the ISR)", hwm)
	}
}
