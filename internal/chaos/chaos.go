// Package chaos is a seeded, deterministic fault injector for the CAD3
// substrate. The paper's testbed (§VII-E) never exercises real failures;
// this package makes RSU crashes, broker restarts, lossy links, and
// asymmetric inter-RSU partitions first-class, reproducible events:
//
//   - Injector draws every fault decision (drop / delay / duplicate /
//     connection kill) from one seeded PRNG, so a chaos run is a pure
//     function of its seed and can be asserted in regression tests.
//   - Client (client.go) wraps a stream.Client as one named directed link
//     (from -> to), subjecting its operations to the injector.
//   - Listener (listener.go) wraps a broker server's net.Listener so a
//     live TCP broker can have its connections killed or be taken down
//     without losing its in-memory log.
//   - Schedule (schedule.go) fires named fault events (crash, restart,
//     partition, heal) at fixed virtual times, in deterministic order.
package chaos

import (
	"math/rand"
	"sync"
	"time"
)

// Config tunes an Injector. The zero value injects nothing.
type Config struct {
	// Seed drives every probabilistic decision. Two injectors with the
	// same seed and the same operation sequence make identical decisions.
	Seed int64
	// DropProb is the probability a produced message is silently lost in
	// transit (the sender observes success; the broker never sees it).
	DropProb float64
	// DupProb is the probability a produced message is delivered twice
	// (retransmission after a lost ack).
	DupProb float64
	// DelayProb is the probability an operation is delayed by a uniform
	// duration in [MinDelay, MaxDelay].
	DelayProb float64
	// MinDelay/MaxDelay bound injected delays. MaxDelay <= 0 selects 10 ms.
	MinDelay time.Duration
	MaxDelay time.Duration
	// KillProb is the probability an operation fails with ErrConnKilled,
	// as if the TCP connection died mid-request.
	KillProb float64
}

// Stats counts injected faults.
type Stats struct {
	Drops      int64
	Dups       int64
	Delays     int64
	Kills      int64
	Blocked    int64 // operations refused because the link was partitioned
	Operations int64
}

// Injector owns the fault state shared by the chaos clients of one run:
// the seeded PRNG and the named-link partition matrix. Safe for
// concurrent use; determinism additionally requires a deterministic
// operation order (drive the pipeline step-wise, as the simulator and
// the chaos study do).
type Injector struct {
	mu    sync.Mutex
	rng   *rand.Rand
	cfg   Config
	cut   map[string]map[string]bool // from -> to -> partitioned
	stats Stats
}

// NewInjector creates an injector.
func NewInjector(cfg Config) *Injector {
	if cfg.MaxDelay <= 0 {
		cfg.MaxDelay = 10 * time.Millisecond
	}
	if cfg.MinDelay < 0 {
		cfg.MinDelay = 0
	}
	if cfg.MinDelay > cfg.MaxDelay {
		cfg.MinDelay = cfg.MaxDelay
	}
	return &Injector{
		rng: rand.New(rand.NewSource(cfg.Seed)),
		cfg: cfg,
		cut: make(map[string]map[string]bool),
	}
}

// Partition cuts the directed link from -> to. Traffic the other way is
// unaffected (asymmetric partitions are the hard case for protocols).
func (in *Injector) Partition(from, to string) {
	in.mu.Lock()
	defer in.mu.Unlock()
	m, ok := in.cut[from]
	if !ok {
		m = make(map[string]bool)
		in.cut[from] = m
	}
	m[to] = true
}

// PartitionBoth cuts both directions between a and b.
func (in *Injector) PartitionBoth(a, b string) {
	in.Partition(a, b)
	in.Partition(b, a)
}

// Heal restores the directed link from -> to.
func (in *Injector) Heal(from, to string) {
	in.mu.Lock()
	defer in.mu.Unlock()
	delete(in.cut[from], to)
}

// HealAll restores every link.
func (in *Injector) HealAll() {
	in.mu.Lock()
	defer in.mu.Unlock()
	in.cut = make(map[string]map[string]bool)
}

// Partitioned reports whether the directed link from -> to is cut.
func (in *Injector) Partitioned(from, to string) bool {
	in.mu.Lock()
	defer in.mu.Unlock()
	return in.cut[from][to]
}

// Stats returns a snapshot of the injected-fault counters.
func (in *Injector) Stats() Stats {
	in.mu.Lock()
	defer in.mu.Unlock()
	return in.stats
}

// Config returns the injector's current fault configuration.
func (in *Injector) Config() Config {
	in.mu.Lock()
	defer in.mu.Unlock()
	return in.cfg
}

// SetConfig replaces the fault probabilities mid-run — the primitive
// behind loss/delay ramps in scripted scenarios. The PRNG keeps its
// stream (cfg.Seed is ignored; the run stays a pure function of the
// constructor's seed plus the operation and SetConfig sequence), and the
// delay bounds are normalised exactly like NewInjector's.
func (in *Injector) SetConfig(cfg Config) {
	if cfg.MaxDelay <= 0 {
		cfg.MaxDelay = 10 * time.Millisecond
	}
	if cfg.MinDelay < 0 {
		cfg.MinDelay = 0
	}
	if cfg.MinDelay > cfg.MaxDelay {
		cfg.MinDelay = cfg.MaxDelay
	}
	in.mu.Lock()
	defer in.mu.Unlock()
	cfg.Seed = in.cfg.Seed
	in.cfg = cfg
}

// decision is one operation's fault verdict, drawn under the injector
// lock so the PRNG consumption order is well-defined.
type decision struct {
	blocked bool
	kill    bool
	drop    bool
	dup     bool
	delay   time.Duration
}

// decide draws the fault verdict for one operation over the from -> to
// link. A partitioned link short-circuits: no randomness is consumed, so
// partition windows do not shift the decision sequence of other links.
func (in *Injector) decide(from, to string) decision {
	in.mu.Lock()
	defer in.mu.Unlock()
	in.stats.Operations++
	if in.cut[from][to] {
		in.stats.Blocked++
		return decision{blocked: true}
	}
	var d decision
	if in.cfg.KillProb > 0 && in.rng.Float64() < in.cfg.KillProb {
		d.kill = true
		in.stats.Kills++
		return d
	}
	if in.cfg.DropProb > 0 && in.rng.Float64() < in.cfg.DropProb {
		d.drop = true
		in.stats.Drops++
	}
	if in.cfg.DupProb > 0 && in.rng.Float64() < in.cfg.DupProb {
		d.dup = true
		in.stats.Dups++
	}
	if in.cfg.DelayProb > 0 && in.rng.Float64() < in.cfg.DelayProb {
		span := in.cfg.MaxDelay - in.cfg.MinDelay
		d.delay = in.cfg.MinDelay
		if span > 0 {
			d.delay += time.Duration(in.rng.Int63n(int64(span)))
		}
		in.stats.Delays++
	}
	return d
}
