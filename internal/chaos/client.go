package chaos

import (
	"errors"
	"fmt"
	"time"

	"cad3/internal/stream"
)

// Errors the chaos client injects. Both are transport-class errors:
// stream.RetryClient treats them as retryable, exactly like a real dead
// connection.
var (
	// ErrConnKilled is returned when the injector kills the operation's
	// connection mid-request.
	ErrConnKilled = errors.New("chaos: connection killed")
	// ErrLinkDown is returned while the directed link is partitioned.
	ErrLinkDown = errors.New("chaos: link partitioned")
)

// Client decorates a stream.Client as one named directed link
// (From -> To) subject to an Injector's faults:
//
//   - partition: every operation fails with ErrLinkDown;
//   - kill: the operation fails with ErrConnKilled;
//   - drop (Produce only): the message is lost in transit but the caller
//     observes success — the broker never sees it;
//   - dup (Produce only): the message is delivered twice;
//   - delay: the operation is held for the drawn duration via Sleep.
//
// Read operations (Fetch, PartitionCount, ListTopics) are subject to
// partition, kill, and delay; drops and dups only make sense for writes.
type Client struct {
	// From and To name the link's endpoints (e.g. RSU names). The
	// injector's partition matrix is keyed by these names.
	From, To string

	inner stream.Client
	inj   *Injector

	// Sleep implements injected delays; the discrete-event harnesses
	// inject a virtual-clock advance. It is mandatory when the fault
	// config can draw delays: falling back to time.Sleep here would
	// silently re-couple a "deterministic" experiment to the host
	// scheduler, so apply panics instead of guessing.
	Sleep func(time.Duration)
}

var _ stream.Client = (*Client)(nil)

// NewClient wraps inner as the directed link from -> to under inj.
func NewClient(inj *Injector, from, to string, inner stream.Client) *Client {
	if inj == nil {
		inj = NewInjector(Config{})
	}
	return &Client{From: from, To: to, inner: inner, inj: inj}
}

// Injector returns the client's injector.
func (c *Client) Injector() *Injector { return c.inj }

// apply draws the operation's verdict and handles partition/kill/delay.
// It reports (drop, dup, err).
func (c *Client) apply() (bool, bool, error) {
	d := c.inj.decide(c.From, c.To)
	if d.blocked {
		return false, false, fmt.Errorf("%w: %s -> %s", ErrLinkDown, c.From, c.To)
	}
	if d.kill {
		return false, false, fmt.Errorf("%w: %s -> %s", ErrConnKilled, c.From, c.To)
	}
	if d.delay > 0 {
		if c.Sleep == nil {
			panic("chaos: delay fault drawn on link " + c.From + " -> " + c.To +
				" but Client.Sleep is nil; inject a (virtual) clock")
		}
		c.Sleep(d.delay)
	}
	return d.drop, d.dup, nil
}

// CreateTopic implements stream.Client.
func (c *Client) CreateTopic(name string, partitions int) error {
	if _, _, err := c.apply(); err != nil {
		return err
	}
	return c.inner.CreateTopic(name, partitions)
}

// Produce implements stream.Client. A dropped message reports success
// without reaching the broker (offset -1); a duplicated one is appended
// twice and reports the first append's coordinates.
func (c *Client) Produce(topicName string, partition int32, key, value []byte) (int32, int64, error) {
	drop, dup, err := c.apply()
	if err != nil {
		return 0, 0, err
	}
	if drop {
		// Lost in transit after the sender's ack timeout would have
		// fired: the caller cannot distinguish this from success.
		if partition == stream.AutoPartition {
			partition = 0
		}
		return partition, -1, nil
	}
	part, off, err := c.inner.Produce(topicName, partition, key, value)
	if err != nil {
		return part, off, err
	}
	if dup {
		//cad3:allow wireerrexhaustive duplicate-delivery injection: the duplicate's outcome must stay invisible to the caller, exactly like a retransmit the sender never learns about
		_, _, _ = c.inner.Produce(topicName, partition, key, value)
	}
	return part, off, nil
}

// Fetch implements stream.Client.
func (c *Client) Fetch(topicName string, partition int32, offset int64, max int) ([]stream.Message, error) {
	if _, _, err := c.apply(); err != nil {
		return nil, err
	}
	return c.inner.Fetch(topicName, partition, offset, max)
}

// PartitionCount implements stream.Client.
func (c *Client) PartitionCount(topicName string) (int, error) {
	if _, _, err := c.apply(); err != nil {
		return 0, err
	}
	return c.inner.PartitionCount(topicName)
}

// ListTopics implements stream.Client.
func (c *Client) ListTopics() ([]string, error) {
	if _, _, err := c.apply(); err != nil {
		return nil, err
	}
	return c.inner.ListTopics()
}

// Close implements stream.Client. Closing is never fault-injected.
func (c *Client) Close() error { return c.inner.Close() }
