package chaos

import (
	"errors"
	"reflect"
	"testing"
	"time"

	"cad3/internal/flow"
	"cad3/internal/stream"
)

func newBrokerClient(t *testing.T) *stream.InProcClient {
	t.Helper()
	b := stream.NewBroker(stream.BrokerConfig{})
	if err := b.CreateTopic("t", 3); err != nil {
		t.Fatal(err)
	}
	return stream.NewInProcClient(b)
}

// drive runs a fixed operation sequence through a chaos client and
// returns the observed fault fingerprint.
func drive(t *testing.T, seed int64, ops int) (Stats, []int64) {
	t.Helper()
	inj := NewInjector(Config{Seed: seed, DropProb: 0.2, DupProb: 0.1, KillProb: 0.1, DelayProb: 0.3})
	c := NewClient(inj, "a", "b", newBrokerClient(t))
	c.Sleep = func(time.Duration) {} // virtual: no wall-clock waits
	offsets := make([]int64, 0, ops)
	for i := 0; i < ops; i++ {
		_, off, err := c.Produce("t", 0, nil, []byte("payload"))
		if err != nil {
			off = -2 // fingerprint kills distinctly from drops (-1)
		}
		offsets = append(offsets, off)
	}
	return inj.Stats(), offsets
}

func TestInjectorDeterministicUnderSeed(t *testing.T) {
	s1, o1 := drive(t, 42, 200)
	s2, o2 := drive(t, 42, 200)
	if s1 != s2 {
		t.Errorf("same seed produced different stats: %+v vs %+v", s1, s2)
	}
	if !reflect.DeepEqual(o1, o2) {
		t.Error("same seed produced different offset sequences")
	}
	s3, o3 := drive(t, 7, 200)
	if s1 == s3 && reflect.DeepEqual(o1, o3) {
		t.Error("different seeds produced identical runs")
	}
	if s1.Drops == 0 || s1.Kills == 0 || s1.Dups == 0 || s1.Delays == 0 {
		t.Errorf("expected every fault kind at these probabilities: %+v", s1)
	}
}

func TestPartitionIsAsymmetric(t *testing.T) {
	inj := NewInjector(Config{Seed: 1})
	inner := newBrokerClient(t)
	ab := NewClient(inj, "a", "b", inner)
	ba := NewClient(inj, "b", "a", inner)

	inj.Partition("a", "b")
	if _, _, err := ab.Produce("t", 0, nil, []byte("x")); !errors.Is(err, ErrLinkDown) {
		t.Errorf("a->b err = %v, want ErrLinkDown", err)
	}
	if _, _, err := ba.Produce("t", 0, nil, []byte("x")); err != nil {
		t.Errorf("b->a should be unaffected, got %v", err)
	}
	if !inj.Partitioned("a", "b") || inj.Partitioned("b", "a") {
		t.Error("partition matrix wrong")
	}

	inj.Heal("a", "b")
	if _, _, err := ab.Produce("t", 0, nil, []byte("x")); err != nil {
		t.Errorf("healed link still failing: %v", err)
	}
	if got := inj.Stats().Blocked; got != 1 {
		t.Errorf("Blocked = %d, want 1", got)
	}
}

func TestDropIsInvisibleToSender(t *testing.T) {
	inj := NewInjector(Config{Seed: 3, DropProb: 1})
	inner := newBrokerClient(t)
	c := NewClient(inj, "a", "b", inner)
	part, off, err := c.Produce("t", stream.AutoPartition, nil, []byte("lost"))
	if err != nil {
		t.Fatalf("drop must look like success, got %v", err)
	}
	if off != -1 || part != 0 {
		t.Errorf("dropped produce = (%d, %d), want (0, -1)", part, off)
	}
	msgs, err := inner.Fetch("t", 0, 0, 10)
	if err != nil || len(msgs) != 0 {
		t.Errorf("broker saw %d messages, want 0 (err %v)", len(msgs), err)
	}
}

func TestDupDeliversTwice(t *testing.T) {
	inj := NewInjector(Config{Seed: 3, DupProb: 1})
	inner := newBrokerClient(t)
	c := NewClient(inj, "a", "b", inner)
	if _, _, err := c.Produce("t", 0, nil, []byte("twice")); err != nil {
		t.Fatal(err)
	}
	msgs, err := inner.Fetch("t", 0, 0, 10)
	if err != nil || len(msgs) != 2 {
		t.Errorf("broker saw %d messages, want 2 (err %v)", len(msgs), err)
	}
}

func TestKillSurfacesAsTransportError(t *testing.T) {
	inj := NewInjector(Config{Seed: 3, KillProb: 1})
	c := NewClient(inj, "a", "b", newBrokerClient(t))
	if _, err := c.Fetch("t", 0, 0, 1); !errors.Is(err, ErrConnKilled) {
		t.Errorf("err = %v, want ErrConnKilled", err)
	}
	if _, err := c.PartitionCount("t"); !errors.Is(err, ErrConnKilled) {
		t.Errorf("err = %v, want ErrConnKilled", err)
	}
	if _, err := c.ListTopics(); !errors.Is(err, ErrConnKilled) {
		t.Errorf("err = %v, want ErrConnKilled", err)
	}
	if err := c.CreateTopic("u", 1); !errors.Is(err, ErrConnKilled) {
		t.Errorf("err = %v, want ErrConnKilled", err)
	}
}

func TestScheduleFiresInOrder(t *testing.T) {
	s := NewSchedule()
	base := time.Date(2016, 7, 4, 8, 0, 0, 0, time.UTC)
	var got []string
	add := func(d time.Duration, name string) {
		s.At(base.Add(d), name, func() { got = append(got, name) })
	}
	add(30*time.Second, "restart")
	add(10*time.Second, "partition")
	add(10*time.Second, "kill") // same instant: insertion order
	if n := s.Advance(base.Add(5 * time.Second)); n != 0 {
		t.Errorf("fired %d events early", n)
	}
	if n := s.Advance(base.Add(20 * time.Second)); n != 2 {
		t.Errorf("fired %d events, want 2", n)
	}
	// A fired event may schedule a follow-up.
	s.At(base.Add(40*time.Second), "heal", func() { got = append(got, "heal") })
	if n := s.Advance(base.Add(time.Hour)); n != 2 {
		t.Errorf("fired %d events, want 2", n)
	}
	want := []string{"partition", "kill", "restart", "heal"}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("firing order = %v, want %v", got, want)
	}
	if !reflect.DeepEqual(s.Fired(), want) {
		t.Errorf("Fired() = %v, want %v", s.Fired(), want)
	}
	if s.Pending() != 0 {
		t.Errorf("Pending = %d, want 0", s.Pending())
	}
}

// A broker's backpressure verdict must survive the chaos wrapper intact:
// a faulty link does not launder flow control into a transport error, and
// the retry-after hint stays readable.
func TestBackpressurePassesThroughChaosClient(t *testing.T) {
	b := stream.NewBroker(stream.BrokerConfig{FlowCapacity: 1, FlowPolicy: flow.TailDrop{}})
	if err := b.CreateTopic(stream.TopicInData, 1); err != nil {
		t.Fatal(err)
	}
	inj := NewInjector(Config{Seed: 1}) // no fault probabilities: clean link
	c := NewClient(inj, "veh", "rsu", stream.NewInProcClient(b))

	if _, _, err := c.Produce(stream.TopicInData, 0, nil, []byte("t")); err != nil {
		t.Fatal(err)
	}
	_, _, err := c.Produce(stream.TopicInData, 0, nil, []byte("t"))
	if !errors.Is(err, flow.ErrBackpressure) {
		t.Fatalf("got %v, want backpressure through the chaos client", err)
	}
	if hint, ok := flow.RetryAfter(err); !ok || hint <= 0 {
		t.Errorf("hint lost through the chaos client: %v, %v", hint, ok)
	}

	// With the link partitioned, the link fault wins — the broker is never
	// consulted, and the error is the link's, not flow control's.
	inj.Partition("veh", "rsu")
	if _, _, err := c.Produce(stream.TopicInData, 0, nil, []byte("t")); !errors.Is(err, ErrLinkDown) {
		t.Errorf("partitioned link: got %v, want ErrLinkDown", err)
	}
}

// The delay fault must never fall back to time.Sleep: a nil Sleep hook
// under a delay-capable config is a misconfiguration that would couple a
// "deterministic" experiment to the host scheduler, so apply panics
// instead (the virtualclock analyzer enforces the static side of this).
func TestDelayWithNilSleepPanics(t *testing.T) {
	inj := NewInjector(Config{Seed: 1, DelayProb: 1, MinDelay: time.Millisecond})
	c := NewClient(inj, "a", "b", newBrokerClient(t))
	defer func() {
		if recover() == nil {
			t.Fatal("Produce with a drawn delay and nil Sleep did not panic")
		}
	}()
	_, _, _ = c.Produce("t", 0, nil, []byte("payload"))
}

// With an injected Sleep the drawn delays are delivered to the hook —
// virtual time advances, the wall clock does not.
func TestDelayUsesInjectedSleep(t *testing.T) {
	inj := NewInjector(Config{Seed: 1, DelayProb: 1, MinDelay: 2 * time.Millisecond, MaxDelay: 2 * time.Millisecond})
	c := NewClient(inj, "a", "b", newBrokerClient(t))
	var virtual time.Duration
	c.Sleep = func(d time.Duration) { virtual += d }
	start := time.Now()
	for i := 0; i < 50; i++ {
		if _, _, err := c.Produce("t", 0, nil, []byte("payload")); err != nil {
			t.Fatal(err)
		}
	}
	if want := 100 * time.Millisecond; virtual != want {
		t.Errorf("virtual sleep accumulated %v, want %v", virtual, want)
	}
	if elapsed := time.Since(start); elapsed > 50*time.Millisecond {
		t.Errorf("wall clock advanced %v — delays leaked out of the hook", elapsed)
	}
}
