package chaos_test

import (
	"errors"
	"fmt"

	"cad3/internal/chaos"
	"cad3/internal/stream"
)

// ExampleInjector_Partition cuts and heals one directed inter-RSU link.
// While the R1->R2 link is partitioned every operation through it fails
// with ErrLinkDown; the underlying broker and its log are untouched, so
// healing restores service with no data loss.
func ExampleInjector_Partition() {
	inj := chaos.NewInjector(chaos.Config{Seed: 1})
	broker := stream.NewBroker(stream.BrokerConfig{})
	inner := stream.NewInProcClient(broker)
	if err := inner.CreateTopic(stream.TopicCoData, 1); err != nil {
		fmt.Println(err)
		return
	}
	link := chaos.NewClient(inj, "R1", "R2", inner)

	inj.Partition("R1", "R2")
	_, _, err := link.Produce(stream.TopicCoData, 0, nil, []byte("summary"))
	fmt.Println("while partitioned:", errors.Is(err, chaos.ErrLinkDown))

	inj.Heal("R1", "R2")
	_, _, err = link.Produce(stream.TopicCoData, 0, nil, []byte("summary"))
	fmt.Println("after heal:", err == nil)

	fmt.Println("blocked operations:", inj.Stats().Blocked)
	// Output:
	// while partitioned: true
	// after heal: true
	// blocked operations: 1
}
