package chaos

import (
	"fmt"
	"time"

	"cad3/internal/stream"
)

// ReplicaLink decorates a stream.ReplicaLink as one named directed link
// (leader -> follower) subject to an Injector's faults — the replication
// analogue of Client. The ReplicaSet controller treats any link error as
// grounds to drop the follower from the ISR, so the wrapper lets chaos
// studies exercise exactly the paths the durability contract depends on:
//
//   - partition: every replication operation fails with ErrLinkDown (the
//     follower falls out of the ISR until the link heals and a Tick
//     re-syncs it);
//   - kill: the operation fails with ErrConnKilled;
//   - drop (ReplicaAppend only): the append is lost in transit — the
//     follower never sees the records and the leader gets no ack, which
//     on a real wire is indistinguishable from a killed connection, so
//     the caller observes ErrConnKilled;
//   - dup (ReplicaAppend only): the append is delivered twice; the
//     second copy overlaps the follower's log and must be skipped
//     idempotently (the wrapper is a standing test of that invariant);
//   - delay: the operation is held for the drawn duration via Sleep.
type ReplicaLink struct {
	// From and To name the link's endpoints (replica IDs). The injector's
	// partition matrix is keyed by these names, shared with Client links.
	From, To string

	inner stream.ReplicaLink
	inj   *Injector

	// Sleep implements injected delays; see Client.Sleep — mandatory when
	// the fault config can draw delays, and a panic otherwise rather than
	// silently re-coupling a deterministic run to the host scheduler.
	Sleep func(time.Duration)
}

var _ stream.ReplicaLink = (*ReplicaLink)(nil)

// NewReplicaLink wraps inner as the directed replication link from -> to
// under inj.
func NewReplicaLink(inj *Injector, from, to string, inner stream.ReplicaLink) *ReplicaLink {
	if inj == nil {
		inj = NewInjector(Config{})
	}
	return &ReplicaLink{From: from, To: to, inner: inner, inj: inj}
}

// Injector returns the link's injector.
func (l *ReplicaLink) Injector() *Injector { return l.inj }

// apply draws the operation's verdict and handles partition/kill/delay,
// reporting (drop, dup, err) like Client.apply.
func (l *ReplicaLink) apply() (bool, bool, error) {
	d := l.inj.decide(l.From, l.To)
	if d.blocked {
		return false, false, fmt.Errorf("%w: %s -> %s", ErrLinkDown, l.From, l.To)
	}
	if d.kill {
		return false, false, fmt.Errorf("%w: %s -> %s", ErrConnKilled, l.From, l.To)
	}
	if d.delay > 0 {
		if l.Sleep == nil {
			panic("chaos: delay fault drawn on replica link " + l.From + " -> " + l.To +
				" but ReplicaLink.Sleep is nil; inject a (virtual) clock")
		}
		l.Sleep(d.delay)
	}
	return d.drop, d.dup, nil
}

// ReplicaAppend implements stream.ReplicaLink. A dropped append never
// reaches the follower and reports ErrConnKilled (a lost ack); a
// duplicated one is applied twice and reports the second call's high
// watermark — identical to the first's when the follower's overlap skip
// is working.
func (l *ReplicaLink) ReplicaAppend(topicName string, partition int32, epoch, base int64, recs []stream.ReplicaRecord) (int64, error) {
	drop, dup, err := l.apply()
	if err != nil {
		return 0, err
	}
	if drop {
		return 0, fmt.Errorf("%w: %s -> %s (append lost in transit)", ErrConnKilled, l.From, l.To)
	}
	hwm, err := l.inner.ReplicaAppend(topicName, partition, epoch, base, recs)
	if err != nil || !dup {
		return hwm, err
	}
	return l.inner.ReplicaAppend(topicName, partition, epoch, base, recs)
}

// SetPartitionRole implements stream.ReplicaLink. Role pushes are
// control-plane writes: drops and dups do not apply (a role push is
// idempotent and carries no payload to lose), only partition, kill and
// delay.
func (l *ReplicaLink) SetPartitionRole(topicName string, partition int32, follower bool, epoch int64, leaderHint string) error {
	if _, _, err := l.apply(); err != nil {
		return err
	}
	return l.inner.SetPartitionRole(topicName, partition, follower, epoch, leaderHint)
}
