package trace

import (
	"bytes"
	"strings"
	"testing"

	"cad3/internal/geo"
)

func TestRecordsCSVRoundTrip(t *testing.T) {
	net, ds := generateSmallDataset(t, 5, 12)
	recs, err := DeriveRecords(net, ds.Trajectories, DeriveOptions{})
	if err != nil {
		t.Fatal(err)
	}
	clean, _ := FilterRecords(recs)
	if len(clean) > 500 {
		clean = clean[:500]
	}

	var buf bytes.Buffer
	if err := WriteRecordsCSV(&buf, clean); err != nil {
		t.Fatal(err)
	}
	got, err := ReadRecordsCSV(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(clean) {
		t.Fatalf("round trip: %d records, want %d", len(got), len(clean))
	}
	for i := range got {
		a, b := clean[i], got[i]
		if a.Car != b.Car || a.Road != b.Road || a.RoadType != b.RoadType ||
			a.Speed != b.Speed || a.Accel != b.Accel || a.Lat != b.Lat ||
			a.Lon != b.Lon || a.Heading != b.Heading || a.Hour != b.Hour ||
			a.Day != b.Day || a.RoadMeanSpeed != b.RoadMeanSpeed ||
			a.TimestampMs != b.TimestampMs || a.Anomalous != b.Anomalous {
			t.Fatalf("record %d differs:\n%+v\n%+v", i, a, b)
		}
	}
}

func TestRecordsCSVEmpty(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteRecordsCSV(&buf, nil); err != nil {
		t.Fatal(err)
	}
	got, err := ReadRecordsCSV(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 0 {
		t.Errorf("empty round trip yielded %d records", len(got))
	}
}

func TestReadRecordsCSVErrors(t *testing.T) {
	cases := map[string]string{
		"empty input":  "",
		"wrong header": "a,b,c,d,e,f,g,h,i,j,k,l,m\n",
		"bad car":      strings.Join(recordCSVHeader, ",") + "\nx,1,motorway,1,0,0,0,0,1,1,1,1,false\n",
		"bad roadtype": strings.Join(recordCSVHeader, ",") + "\n1,1,bogus,1,0,0,0,0,1,1,1,1,false\n",
		"bad float":    strings.Join(recordCSVHeader, ",") + "\n1,1,motorway,x,0,0,0,0,1,1,1,1,false\n",
		"bad hour":     strings.Join(recordCSVHeader, ",") + "\n1,1,motorway,1,0,0,0,0,x,1,1,1,false\n",
		"bad bool":     strings.Join(recordCSVHeader, ",") + "\n1,1,motorway,1,0,0,0,0,1,1,1,1,maybe\n",
		"short row":    strings.Join(recordCSVHeader, ",") + "\n1,2,3\n",
	}
	for name, in := range cases {
		if _, err := ReadRecordsCSV(strings.NewReader(in)); err == nil {
			t.Errorf("%s: want error", name)
		}
	}
}

func TestRecordsCSVPreservesAnomalyFlag(t *testing.T) {
	recs := []Record{
		{Car: 1, Road: 2, RoadType: geo.Motorway, Speed: 100, Hour: 9, Day: 4, Anomalous: true},
		{Car: 2, Road: 2, RoadType: geo.MotorwayLink, Speed: 35, Hour: 9, Day: 4},
	}
	var buf bytes.Buffer
	if err := WriteRecordsCSV(&buf, recs); err != nil {
		t.Fatal(err)
	}
	got, err := ReadRecordsCSV(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !got[0].Anomalous || got[1].Anomalous {
		t.Errorf("anomaly flags lost: %+v", got)
	}
}
