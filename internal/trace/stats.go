package trace

import (
	"sort"

	"cad3/internal/geo"
)

// StatsRow is one row of the Table III reproduction: dataset statistics
// for a region or road-type slice after filtering.
type StatsRow struct {
	Region       string
	Cars         int
	Trips        int
	MeanSpeedKmh float64
	Trajectories int
}

// DatasetStats computes the Table III rows from filtered records: the
// whole-city row plus one row per requested road type.
func DatasetStats(records []Record, roadTypes []geo.RoadType) []StatsRow {
	rows := []StatsRow{statsFor("Shenzhen", records, func(Record) bool { return true })}
	for _, t := range roadTypes {
		t := t
		rows = append(rows, statsFor(t.String(), records, func(r Record) bool { return r.RoadType == t }))
	}
	return rows
}

func statsFor(region string, records []Record, match func(Record) bool) StatsRow {
	cars := make(map[CarID]bool)
	type carDay struct {
		car CarID
		day int
	}
	// Trips are approximated as distinct (car, day) pairs in the record
	// view, since records do not carry trip IDs on the wire. Exact trip
	// counts are available from the Dataset.Trips table.
	tripKeys := make(map[carDay]bool)
	var speedSum float64
	var n int
	for _, r := range records {
		if !match(r) {
			continue
		}
		cars[r.Car] = true
		tripKeys[carDay{car: r.Car, day: r.Day}] = true
		speedSum += r.Speed
		n++
	}
	row := StatsRow{Region: region, Cars: len(cars), Trips: len(tripKeys), Trajectories: n}
	if n > 0 {
		row.MeanSpeedKmh = speedSum / float64(n)
	}
	return row
}

// TripStats computes exact per-road-type trip and car counts from the raw
// dataset tables (requires trajectory points, which carry trip IDs).
func TripStats(ds *Dataset, net *geo.Network, roadTypes []geo.RoadType) []StatsRow {
	rows := []StatsRow{{
		Region:       "Shenzhen",
		Cars:         distinctCars(ds.Trips),
		Trips:        len(ds.Trips),
		Trajectories: len(ds.Trajectories),
	}}
	for _, t := range roadTypes {
		carSet := make(map[CarID]bool)
		tripSet := make(map[TripID]bool)
		var n int
		for _, p := range ds.Trajectories {
			seg := net.Segment(p.SegmentID)
			if seg == nil || seg.Type != t {
				continue
			}
			carSet[p.Car] = true
			tripSet[p.Trip] = true
			n++
		}
		rows = append(rows, StatsRow{
			Region:       t.String(),
			Cars:         len(carSet),
			Trips:        len(tripSet),
			Trajectories: n,
		})
	}
	return rows
}

func distinctCars(trips []Trip) int {
	set := make(map[CarID]bool, len(trips))
	for _, t := range trips {
		set[t.Car] = true
	}
	return len(set)
}

// AnomalyShare returns the fraction of records flagged as ground-truth
// anomalous by the generator.
func AnomalyShare(records []Record) float64 {
	if len(records) == 0 {
		return 0
	}
	var n int
	for _, r := range records {
		if r.Anomalous {
			n++
		}
	}
	return float64(n) / float64(len(records))
}

// SpeedSeries returns the per-hour mean observed speed for a road type,
// split by day class — the measured counterpart of Figure 2.
func SpeedSeries(records []Record, t geo.RoadType, weekend bool) [24]float64 {
	var sum [24]float64
	var cnt [24]int
	for _, r := range records {
		if r.RoadType != t || Weekend(r.Day) != weekend {
			continue
		}
		sum[r.Hour] += r.Speed
		cnt[r.Hour]++
	}
	var out [24]float64
	for h := 0; h < 24; h++ {
		if cnt[h] > 0 {
			out[h] = sum[h] / float64(cnt[h])
		}
	}
	return out
}

// RecordsOfType returns the records on roads of the given type, preserving
// order.
func RecordsOfType(records []Record, t geo.RoadType) []Record {
	var out []Record
	for _, r := range records {
		if r.RoadType == t {
			out = append(out, r)
		}
	}
	return out
}

// SortRecordsByTime orders records by timestamp (stable), used before
// replaying a dataset through the streaming pipeline.
func SortRecordsByTime(records []Record) {
	sort.SliceStable(records, func(i, j int) bool {
		return records[i].TimestampMs < records[j].TimestampMs
	})
}

// TripSummary describes the distribution of the generated trips table
// (Table I's Mileage / Fuel / Period columns).
type TripSummary struct {
	Trips          int
	MeanMileageM   float64
	MeanFuelML     float64
	MeanPeriodS    float64
	TotalMileageKm float64
}

// SummarizeTrips computes the Table I distribution summary.
func SummarizeTrips(trips []Trip) TripSummary {
	s := TripSummary{Trips: len(trips)}
	if len(trips) == 0 {
		return s
	}
	for _, t := range trips {
		s.MeanMileageM += t.MileageM
		s.MeanFuelML += t.FuelML
		s.MeanPeriodS += t.PeriodS
	}
	s.TotalMileageKm = s.MeanMileageM / 1000
	n := float64(len(trips))
	s.MeanMileageM /= n
	s.MeanFuelML /= n
	s.MeanPeriodS /= n
	return s
}
