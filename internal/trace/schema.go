// Package trace provides the driving-data substrate for CAD3: a synthetic
// generator statistically matched to the paper's proprietary Shenzhen
// private-car dataset (Li et al., ICDEW 2019), the erroneous-record filter,
// the feature-derivation pipeline of Equation 4, dataset statistics
// (Table III), and train/test splitting.
//
// The paper's dataset (3,306 cars, 214,718 trips, ~18M trajectory points,
// July 2016) is not public. This package regenerates a dataset with the
// same schema (Tables I and II), the same spatio-temporal speed structure
// (Figure 2: per-road-type, per-hour, weekday/weekend profiles), injected
// anomalous-driving episodes, and injected sensor errors that the filtering
// stage removes — so every downstream experiment exercises the same code
// paths as the paper's pipeline.
package trace

import (
	"fmt"
	"time"

	"cad3/internal/geo"
)

// CarID identifies a vehicle (the ObjectID column of Table I).
type CarID int64

// TripID identifies one trip of one car.
type TripID int64

// Trip is a row of the trips table (Table I, upper half).
type Trip struct {
	ID        TripID    `json:"tripId"`
	Car       CarID     `json:"carId"`
	StartTime time.Time `json:"startTime"`
	StopTime  time.Time `json:"stopTime"`
	StartLon  float64   `json:"startLon"`
	StartLat  float64   `json:"startLat"`
	StopLon   float64   `json:"stopLon"`
	StopLat   float64   `json:"stopLat"`
	// MileageM is the trip odometer delta in meters (the paper reports
	// "Mileage"); FuelML the fuel used in milliliters; PeriodS the trip
	// duration in seconds.
	MileageM float64 `json:"mileageM"`
	FuelML   float64 `json:"fuelML"`
	PeriodS  float64 `json:"periodS"`
}

// TrajectoryPoint is a row of the trajectories table (Table I, lower half):
// a raw GPS fix with the accumulated mileage.
type TrajectoryPoint struct {
	Car        CarID     `json:"carId"`
	Trip       TripID    `json:"tripId"`
	Lon        float64   `json:"lon"`
	Lat        float64   `json:"lat"`
	GPSTime    time.Time `json:"gpsTime"`
	AcMileageM float64   `json:"acMileageM"`
	// SegmentID is the ground-truth road segment the generator placed the
	// fix on. The map-matching pipeline recovers it from coordinates; it
	// is carried here so experiments can validate the matcher.
	SegmentID geo.SegmentID `json:"-"`
	// Anomalous marks fixes generated during an injected abnormal-driving
	// episode (generator ground truth, unused by the detection models).
	Anomalous bool `json:"-"`
}

// Record is a row of the preprocessed analysis dataset (Table II) and the
// vehicle status message CAD3 streams to RSUs. Serialized as JSON it is
// ~200 bytes, matching the paper's packet-size assumption.
type Record struct {
	Car   CarID         `json:"carId"`
	Road  geo.SegmentID `json:"rdId"`
	Accel float64       `json:"accel"` // km/h per second
	Speed float64       `json:"speed"` // instantaneous, km/h
	// Lat/Lon/Heading carry the vehicle's position fix (heading in
	// degrees clockwise from north), as the IMU/GPS status packet the
	// paper describes would.
	Lat     float64 `json:"lat"`
	Lon     float64 `json:"lon"`
	Heading float64 `json:"hdg"`
	Hour    int     `json:"hour"` // 0..23
	Day     int     `json:"day"`  // day of month, 1..31
	// RoadType is the context the RSU covering the road provides.
	RoadType geo.RoadType `json:"rdType"`
	// RoadMeanSpeed is v̄_r of Equation 4: the mean observed speed on the
	// road, in km/h.
	RoadMeanSpeed float64 `json:"vr"`
	// TimestampMs is the generation time (Unix milliseconds); it rides
	// along for end-to-end latency accounting.
	TimestampMs int64 `json:"tsMs"`
	// Anomalous is generator ground truth for an injected abnormal
	// episode. It is excluded from model features.
	Anomalous bool `json:"-"`
}

// Validate reports whether the record's fields are in range.
func (r Record) Validate() error {
	if r.Hour < 0 || r.Hour > 23 {
		return fmt.Errorf("record: hour %d out of range", r.Hour)
	}
	if r.Day < 1 || r.Day > 31 {
		return fmt.Errorf("record: day %d out of range", r.Day)
	}
	if r.Speed < 0 {
		return fmt.Errorf("record: negative speed %.2f", r.Speed)
	}
	if !r.RoadType.Valid() {
		return fmt.Errorf("record: invalid road type %d", int(r.RoadType))
	}
	return nil
}

// Weekend reports whether the given July-2016 day of month fell on a
// weekend (1 July 2016 was a Friday).
func Weekend(day int) bool {
	// 2 July 2016 = Saturday. Days ≡ 2 or 3 (mod 7) are weekend days.
	m := day % 7
	return m == 2 || m == 3
}

// Dataset bundles the generated tables.
type Dataset struct {
	Trips        []Trip
	Trajectories []TrajectoryPoint
	Records      []Record
}
