package trace

import (
	"math/rand"
	"sort"
)

// Split holds a train/test partition of records.
type Split struct {
	Train []Record
	Test  []Record
}

// SplitRecords shuffles records deterministically and splits them at
// trainFrac (the paper uses 80/20). trainFrac outside (0,1) selects 0.8.
func SplitRecords(records []Record, trainFrac float64, seed int64) Split {
	if trainFrac <= 0 || trainFrac >= 1 {
		trainFrac = 0.8
	}
	shuffled := make([]Record, len(records))
	copy(shuffled, records)
	rng := rand.New(rand.NewSource(seed))
	rng.Shuffle(len(shuffled), func(i, j int) {
		shuffled[i], shuffled[j] = shuffled[j], shuffled[i]
	})
	cut := int(float64(len(shuffled)) * trainFrac)
	return Split{Train: shuffled[:cut], Test: shuffled[cut:]}
}

// SplitByCar partitions records so that every car's records land entirely
// in either train or test. This is the split the mesoscopic (driver-trip)
// experiments need: the test driver's history must be unseen.
func SplitByCar(records []Record, trainFrac float64, seed int64) Split {
	if trainFrac <= 0 || trainFrac >= 1 {
		trainFrac = 0.8
	}
	carSet := make(map[CarID]bool)
	for _, r := range records {
		carSet[r.Car] = true
	}
	cars := make([]CarID, 0, len(carSet))
	for c := range carSet {
		cars = append(cars, c)
	}
	sort.Slice(cars, func(i, j int) bool { return cars[i] < cars[j] })
	rng := rand.New(rand.NewSource(seed))
	rng.Shuffle(len(cars), func(i, j int) { cars[i], cars[j] = cars[j], cars[i] })

	cut := int(float64(len(cars)) * trainFrac)
	trainCars := make(map[CarID]bool, cut)
	for _, c := range cars[:cut] {
		trainCars[c] = true
	}
	var sp Split
	for _, r := range records {
		if trainCars[r.Car] {
			sp.Train = append(sp.Train, r)
		} else {
			sp.Test = append(sp.Test, r)
		}
	}
	return sp
}
