package trace

import (
	"testing"

	"cad3/internal/geo"
)

func TestDatasetStatsShape(t *testing.T) {
	net, ds := generateSmallDataset(t, 30, 2)
	recs, err := DeriveRecords(net, ds.Trajectories, DeriveOptions{})
	if err != nil {
		t.Fatal(err)
	}
	clean, _ := FilterRecords(recs)
	rows := DatasetStats(clean, []geo.RoadType{geo.Motorway, geo.MotorwayLink})
	if len(rows) != 3 {
		t.Fatalf("rows = %d, want 3", len(rows))
	}
	all := rows[0]
	if all.Region != "Shenzhen" || all.Cars == 0 || all.Trajectories == 0 {
		t.Errorf("city row = %+v", all)
	}
	for _, r := range rows[1:] {
		if r.Trajectories > all.Trajectories {
			t.Errorf("%s trajectories %d exceed city total %d", r.Region, r.Trajectories, all.Trajectories)
		}
		if r.Cars > all.Cars {
			t.Errorf("%s cars %d exceed city total %d", r.Region, r.Cars, all.Cars)
		}
	}
	if all.MeanSpeedKmh <= 0 || all.MeanSpeedKmh > 150 {
		t.Errorf("city mean speed %.1f implausible", all.MeanSpeedKmh)
	}
}

func TestTripStats(t *testing.T) {
	net, ds := generateSmallDataset(t, 15, 6)
	rows := TripStats(ds, net, []geo.RoadType{geo.Motorway})
	if rows[0].Trips != len(ds.Trips) {
		t.Errorf("city trips = %d, want %d", rows[0].Trips, len(ds.Trips))
	}
	if rows[0].Cars != 15 {
		t.Errorf("city cars = %d, want 15", rows[0].Cars)
	}
	if rows[0].Trajectories != len(ds.Trajectories) {
		t.Errorf("city trajectories = %d, want %d", rows[0].Trajectories, len(ds.Trajectories))
	}
}

func TestSpeedSeriesReflectsRushHour(t *testing.T) {
	net, err := geo.BuildNetwork(geo.BuildConfig{Scale: 0.02, Seed: 42})
	if err != nil {
		t.Fatal(err)
	}
	g, err := NewGenerator(GeneratorConfig{
		Network: net, Cars: 300, Seed: 3,
		AggressiveFraction: -1, // default 0.30
	})
	if err != nil {
		t.Fatal(err)
	}
	ds, _ := g.Generate()
	recs, err := DeriveRecords(net, ds.Trajectories, DeriveOptions{})
	if err != nil {
		t.Fatal(err)
	}
	clean, _ := FilterRecords(recs)
	series := SpeedSeries(clean, geo.Motorway, false)
	// Weekday rush hour (8h) must be visibly slower than late evening (22h).
	if series[8] == 0 || series[22] == 0 {
		t.Skip("not enough motorway samples in small dataset")
	}
	if series[8] >= series[22] {
		t.Errorf("rush-hour speed %.1f >= evening speed %.1f; Figure 2 dip missing", series[8], series[22])
	}
}

func TestAnomalyShare(t *testing.T) {
	recs := []Record{{Anomalous: true}, {}, {}, {Anomalous: true}}
	if got := AnomalyShare(recs); got != 0.5 {
		t.Errorf("AnomalyShare = %v, want 0.5", got)
	}
	if got := AnomalyShare(nil); got != 0 {
		t.Errorf("AnomalyShare(nil) = %v", got)
	}
}

func TestRecordsOfTypeAndSort(t *testing.T) {
	recs := []Record{
		{RoadType: geo.Motorway, TimestampMs: 3},
		{RoadType: geo.MotorwayLink, TimestampMs: 1},
		{RoadType: geo.Motorway, TimestampMs: 2},
	}
	mw := RecordsOfType(recs, geo.Motorway)
	if len(mw) != 2 {
		t.Fatalf("len = %d, want 2", len(mw))
	}
	SortRecordsByTime(recs)
	if recs[0].TimestampMs != 1 || recs[2].TimestampMs != 3 {
		t.Errorf("sort order wrong: %+v", recs)
	}
}

func TestSplitRecords(t *testing.T) {
	recs := make([]Record, 100)
	for i := range recs {
		recs[i] = Record{Car: CarID(i % 10), TimestampMs: int64(i)}
	}
	sp := SplitRecords(recs, 0.8, 1)
	if len(sp.Train) != 80 || len(sp.Test) != 20 {
		t.Errorf("split sizes = %d/%d, want 80/20", len(sp.Train), len(sp.Test))
	}
	// Bad fraction falls back to 0.8.
	sp = SplitRecords(recs, -1, 1)
	if len(sp.Train) != 80 {
		t.Errorf("fallback split train = %d, want 80", len(sp.Train))
	}
	// Deterministic.
	a := SplitRecords(recs, 0.8, 42)
	b := SplitRecords(recs, 0.8, 42)
	for i := range a.Train {
		if a.Train[i].TimestampMs != b.Train[i].TimestampMs {
			t.Fatal("split not deterministic")
		}
	}
}

func TestSplitByCarKeepsCarsTogether(t *testing.T) {
	recs := make([]Record, 200)
	for i := range recs {
		recs[i] = Record{Car: CarID(i % 20)}
	}
	sp := SplitByCar(recs, 0.8, 3)
	trainCars := make(map[CarID]bool)
	for _, r := range sp.Train {
		trainCars[r.Car] = true
	}
	for _, r := range sp.Test {
		if trainCars[r.Car] {
			t.Fatalf("car %d appears in both train and test", r.Car)
		}
	}
	if len(sp.Train)+len(sp.Test) != len(recs) {
		t.Errorf("records lost in split")
	}
}

func TestHourlyMeansFigure2Shape(t *testing.T) {
	p := DefaultSpeedProfile()
	mw := p.HourlyMeans(geo.Motorway, false)
	lk := p.HourlyMeans(geo.MotorwayLink, false)
	for h := 0; h < 24; h++ {
		if mw[h] <= lk[h] {
			t.Errorf("hour %d: motorway mean %.1f <= link mean %.1f", h, mw[h], lk[h])
		}
	}
	// Weekday rush dip deeper than weekend (Figure 2).
	wkd := p.HourlyMeans(geo.Motorway, false)
	wke := p.HourlyMeans(geo.Motorway, true)
	if wkd[8] >= wke[8] {
		t.Errorf("weekday rush %.1f should dip below weekend %.1f", wkd[8], wke[8])
	}
	if !IsRushHour(8) || !IsRushHour(18) || IsRushHour(3) {
		t.Error("IsRushHour misclassifies")
	}
}

func TestSummarizeTrips(t *testing.T) {
	trips := []Trip{
		{MileageM: 1000, FuelML: 80, PeriodS: 120},
		{MileageM: 3000, FuelML: 240, PeriodS: 360},
	}
	s := SummarizeTrips(trips)
	if s.Trips != 2 || s.MeanMileageM != 2000 || s.MeanFuelML != 160 || s.MeanPeriodS != 240 {
		t.Errorf("summary = %+v", s)
	}
	if s.TotalMileageKm != 4 {
		t.Errorf("total = %v km", s.TotalMileageKm)
	}
	if z := SummarizeTrips(nil); z.Trips != 0 || z.MeanMileageM != 0 {
		t.Errorf("empty summary = %+v", z)
	}
}
