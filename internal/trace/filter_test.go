package trace

import (
	"testing"
	"testing/quick"

	"cad3/internal/geo"
)

func validRecord() Record {
	return Record{
		Car: 1, Road: 1, Speed: 60, Accel: 1, Hour: 10, Day: 5,
		RoadType: geo.Motorway, RoadMeanSpeed: 80,
	}
}

func TestFilterRecords(t *testing.T) {
	good := validRecord()
	tooFast := validRecord()
	tooFast.Speed = 400
	negative := validRecord()
	negative.Speed = -5
	hardAccel := validRecord()
	hardAccel.Accel = 99
	badHour := validRecord()
	badHour.Hour = 25
	badType := validRecord()
	badType.RoadType = 0

	out, res := FilterRecords([]Record{good, tooFast, negative, hardAccel, badHour, badType})
	if len(out) != 1 {
		t.Fatalf("kept %d records, want 1", len(out))
	}
	if res.Kept != 1 || res.DroppedSpeed != 1 || res.DroppedNegative != 1 ||
		res.DroppedAccel != 1 || res.DroppedInvalid != 2 {
		t.Errorf("result = %+v", res)
	}
	if res.Dropped() != 5 {
		t.Errorf("Dropped() = %d, want 5", res.Dropped())
	}
}

func TestFilterRemovesGeneratorErrors(t *testing.T) {
	net := testNetwork(t)
	g, err := NewGenerator(GeneratorConfig{Network: net, Cars: 20, Seed: 8, ErrorRate: 0.05})
	if err != nil {
		t.Fatal(err)
	}
	ds, _ := g.Generate()
	recs, err := DeriveRecords(net, ds.Trajectories, DeriveOptions{})
	if err != nil {
		t.Fatal(err)
	}
	clean, res := FilterRecords(recs)
	if res.Dropped() == 0 {
		t.Error("5% teleport rate should produce dropped records")
	}
	for _, r := range clean {
		if r.Speed > MaxPlausibleSpeedKmh {
			t.Fatalf("filter left implausible speed %.1f", r.Speed)
		}
	}
	// The teleports corrupt at most a few records each; most must survive.
	if float64(len(clean)) < 0.5*float64(len(recs)) {
		t.Errorf("filter kept only %d of %d records", len(clean), len(recs))
	}
}

func TestFilterIdempotentProperty(t *testing.T) {
	f := func(speeds []float64, accels []float64) bool {
		n := len(speeds)
		if len(accels) < n {
			n = len(accels)
		}
		recs := make([]Record, 0, n)
		for i := 0; i < n; i++ {
			r := validRecord()
			r.Speed = speeds[i]
			r.Accel = accels[i]
			recs = append(recs, r)
		}
		once, _ := FilterRecords(recs)
		twice, res := FilterRecords(once)
		return len(twice) == len(once) && res.Dropped() == 0
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
