package trace

import (
	"cad3/internal/geo"
)

// SpeedProfile models the normal-driving speed distribution for a road
// type at a given hour and day class. It reproduces the structure of the
// paper's Figure 2: motorways are fast with a wide spread, motorway links
// slow and narrow; weekday rush hours depress speeds; nights free them.
type SpeedProfile struct {
	// RushFactor scales the mean during weekday rush hours (7-9, 17-19).
	RushFactor float64
	// WeekendRushFactor replaces RushFactor on weekends (milder dip).
	WeekendRushFactor float64
	// NightFactor scales the mean during 0:00-5:00.
	NightFactor float64
	// SpreadFrac is the standard deviation as a fraction of the mean.
	SpreadFrac float64
	// SpreadFloor is the minimum standard deviation in km/h.
	SpreadFloor float64
}

// DefaultSpeedProfile returns the profile used throughout the repository.
func DefaultSpeedProfile() SpeedProfile {
	// The hour factors keep Figure 2's shape (rush-hour dip, free nights)
	// while leaving the per-road sigma cutoff dominated by driver
	// behaviour rather than time-of-day cohorts — the paper feeds Hour to
	// the classifiers precisely so the residual hourly shift is learnable
	// context rather than label noise.
	return SpeedProfile{
		RushFactor:        0.80,
		WeekendRushFactor: 0.90,
		NightFactor:       1.03,
		SpreadFrac:        0.12,
		SpreadFloor:       4,
	}
}

// IsRushHour reports whether the hour falls in the morning or evening peak.
func IsRushHour(hour int) bool {
	return (hour >= 7 && hour <= 9) || (hour >= 17 && hour <= 19)
}

// MeanStd returns the mean and standard deviation (km/h) of normal driving
// speed for the given road type, hour of day, and day class.
func (p SpeedProfile) MeanStd(t geo.RoadType, hour int, weekend bool) (mean, std float64) {
	mean = t.SpeedLimitKmh()
	switch {
	case IsRushHour(hour):
		if weekend {
			mean *= p.WeekendRushFactor
		} else {
			mean *= p.RushFactor
		}
	case hour >= 0 && hour <= 5:
		mean *= p.NightFactor
	}
	std = p.SpreadFrac * mean
	if std < p.SpreadFloor {
		std = p.SpreadFloor
	}
	return mean, std
}

// HourlyMeans returns the 24-hour mean-speed series for a road type,
// the exact series plotted in Figure 2.
func (p SpeedProfile) HourlyMeans(t geo.RoadType, weekend bool) [24]float64 {
	var out [24]float64
	for h := 0; h < 24; h++ {
		out[h], _ = p.MeanStd(t, h, weekend)
	}
	return out
}

// TripStartWeights returns the relative probability of a trip starting at
// each hour of the day: a diurnal pattern with morning and evening peaks.
func TripStartWeights() [24]float64 {
	return [24]float64{
		0.2, 0.1, 0.1, 0.1, 0.2, 0.5, // 0-5
		1.2, 2.5, 2.8, 1.8, 1.2, 1.1, // 6-11
		1.2, 1.1, 1.2, 1.3, 1.6, 2.4, // 12-17
		2.6, 2.0, 1.4, 1.0, 0.7, 0.4, // 18-23
	}
}
