package trace

// MaxPlausibleSpeedKmh is the cutoff above which a derived speed is
// considered a sensor error (GPS teleport) rather than driving, matching
// the paper's "filtering the erroneous values" step.
const MaxPlausibleSpeedKmh = 250

// MaxPlausibleAccel is the physically plausible |acceleration| bound in
// km/h per second (~8.3 m/s^2, beyond hard emergency braking).
const MaxPlausibleAccel = 30

// FilterResult summarises a filtering pass.
type FilterResult struct {
	Kept            int
	DroppedSpeed    int
	DroppedAccel    int
	DroppedInvalid  int
	DroppedNegative int
}

// Dropped returns the total number of dropped records.
func (r FilterResult) Dropped() int {
	return r.DroppedSpeed + r.DroppedAccel + r.DroppedInvalid + r.DroppedNegative
}

// FilterRecords removes erroneous records: negative or implausible speeds,
// implausible accelerations, and out-of-range context fields. It returns
// the clean records and a summary of what was dropped.
func FilterRecords(records []Record) ([]Record, FilterResult) {
	out := make([]Record, 0, len(records))
	var res FilterResult
	for _, r := range records {
		switch {
		case r.Speed < 0:
			res.DroppedNegative++
		case r.Speed > MaxPlausibleSpeedKmh:
			res.DroppedSpeed++
		case r.Accel > MaxPlausibleAccel || r.Accel < -MaxPlausibleAccel:
			res.DroppedAccel++
		case r.Validate() != nil:
			res.DroppedInvalid++
		default:
			out = append(out, r)
		}
	}
	res.Kept = len(out)
	return out, res
}
