package trace

import (
	"errors"
	"fmt"
	"math"
	"math/rand"
	"time"

	"cad3/internal/geo"
)

// Errors returned by the generator.
var (
	ErrNoNetwork = errors.New("trace: generator requires a road network")
	ErrNoCars    = errors.New("trace: generator requires at least one car")
)

// AnomalyKind classifies an injected abnormal-driving episode. The paper's
// abstract names the three leading causes of fatal highway accidents:
// speeding, slowing down, and sudden acceleration.
type AnomalyKind int

// Injected anomaly kinds.
const (
	Speeding AnomalyKind = iota + 1
	Slowing
	SuddenAcceleration
)

// String implements fmt.Stringer.
func (k AnomalyKind) String() string {
	switch k {
	case Speeding:
		return "speeding"
	case Slowing:
		return "slowing"
	case SuddenAcceleration:
		return "sudden_acceleration"
	default:
		return "anomaly"
	}
}

// GeneratorConfig configures the synthetic dataset generator.
type GeneratorConfig struct {
	// Network is the road network to drive over. Required.
	Network *geo.Network
	// Seed makes generation deterministic.
	Seed int64
	// Cars is the number of vehicles. Required (> 0).
	Cars int
	// TripsPerCar is the mean number of trips per car over the month.
	// Values <= 0 select 4.
	TripsPerCar float64
	// Days restricts trips to days 1..Days of July 2016. Values <= 0 or
	// > 31 select 31.
	Days int
	// SampleInterval is the GPS fix interval. Values <= 0 select 1 s.
	SampleInterval time.Duration
	// AggressiveFraction is the fraction of drivers with anomalous
	// tendencies. Negative values select 0.30.
	AggressiveFraction float64
	// EpisodeProb is the per-segment probability that an aggressive
	// driver starts an anomalous episode. Values <= 0 select 0.55.
	EpisodeProb float64
	// EpisodeLenMean is the mean episode length in samples. Values <= 0
	// select 10.
	EpisodeLenMean int
	// ErrorRate is the fraction of trajectory points corrupted with
	// sensor errors (GPS teleports), later removed by the filter.
	// Negative values select 0.01.
	ErrorRate float64
	// RouteSegments is the number of road segments per trip. Values <= 0
	// select 3.
	RouteSegments int
	// GPSSigmaM is the GPS noise standard deviation in meters. Values
	// < 0 select 4.
	GPSSigmaM float64
	// Profile is the speed profile; the zero value selects
	// DefaultSpeedProfile.
	Profile SpeedProfile
}

func (c GeneratorConfig) withDefaults() GeneratorConfig {
	if c.TripsPerCar <= 0 {
		c.TripsPerCar = 4
	}
	if c.Days <= 0 || c.Days > 31 {
		c.Days = 31
	}
	if c.SampleInterval <= 0 {
		c.SampleInterval = time.Second
	}
	if c.AggressiveFraction < 0 {
		c.AggressiveFraction = 0.30
	}
	if c.AggressiveFraction == 0 && c.EpisodeProb == 0 {
		c.AggressiveFraction = 0.30
	}
	if c.EpisodeProb <= 0 {
		c.EpisodeProb = 0.55
	}
	if c.EpisodeLenMean <= 0 {
		c.EpisodeLenMean = 10
	}
	if c.ErrorRate < 0 {
		c.ErrorRate = 0.01
	}
	if c.RouteSegments <= 0 {
		c.RouteSegments = 3
	}
	if c.GPSSigmaM < 0 {
		c.GPSSigmaM = 4
	}
	if c.Profile == (SpeedProfile{}) {
		c.Profile = DefaultSpeedProfile()
	}
	return c
}

// Generator produces synthetic trips and trajectories.
type Generator struct {
	cfg GeneratorConfig
	rng *rand.Rand
	// aggressive[i] marks car i (0-based) as an anomalous-tendency driver;
	// biasK[i] is the driver's persistent speed bias in sigma units.
	aggressive []bool
	biasK      []float64
	segments   []*geo.Segment
	segWeights []float64 // cumulative density weights for start selection
}

// NewGenerator validates the configuration and prepares a generator.
func NewGenerator(cfg GeneratorConfig) (*Generator, error) {
	cfg = cfg.withDefaults()
	if cfg.Network == nil {
		return nil, ErrNoNetwork
	}
	if cfg.Cars <= 0 {
		return nil, ErrNoCars
	}
	if cfg.Network.SegmentCount() == 0 {
		return nil, fmt.Errorf("trace: network has no segments")
	}

	g := &Generator{
		cfg: cfg,
		rng: rand.New(rand.NewSource(cfg.Seed)),
	}
	g.aggressive = make([]bool, cfg.Cars)
	g.biasK = make([]float64, cfg.Cars)
	for i := range g.aggressive {
		g.aggressive[i] = g.rng.Float64() < cfg.AggressiveFraction
		// Drivers have persistent habits: anomalous-tendency drivers sit
		// 0.8-1.8 sigma off the road's normal speed (habitual speeding or
		// crawling, sign fixed per driver) even outside acute episodes;
		// ordinary drivers stay within ~0.3 sigma of it. This persistence
		// is what makes driver-awareness (the CO-DATA summaries) carry
		// signal across the motorway -> link handover.
		sign := 1.0
		if g.rng.Float64() < 0.5 {
			sign = -1
		}
		if g.aggressive[i] {
			g.biasK[i] = sign * (1.2 + g.rng.Float64())
		} else {
			g.biasK[i] = sign * 0.3 * g.rng.Float64()
		}
	}

	// Start-segment selection weighted by the Table V density share of
	// the segment's road type.
	density := make(map[geo.RoadType]float64)
	for _, st := range geo.ShenzhenRoadStats() {
		density[st.Type] = st.DensityShare
	}
	g.segments = cfg.Network.AllSegments()
	g.segWeights = make([]float64, len(g.segments))
	var cum float64
	for i, s := range g.segments {
		w := density[s.Type]
		if w <= 0 {
			w = 0.01
		}
		cum += w
		g.segWeights[i] = cum
	}
	return g, nil
}

// Aggressive reports whether the given car is an anomalous-tendency driver
// (generator ground truth).
func (g *Generator) Aggressive(car CarID) bool {
	idx := int(car) - 1
	return idx >= 0 && idx < len(g.aggressive) && g.aggressive[idx]
}

// Generate produces the full dataset: trips, raw trajectories (with
// injected sensor errors), and nothing else — feature derivation and
// filtering are separate pipeline stages (see DeriveRecords and
// FilterRecords), mirroring the paper's offline preprocessing flow.
func (g *Generator) Generate() (*Dataset, error) {
	ds := &Dataset{}
	var nextTrip TripID = 1
	for car := 1; car <= g.cfg.Cars; car++ {
		nTrips := poissonAtLeast1(g.rng, g.cfg.TripsPerCar)
		for t := 0; t < nTrips; t++ {
			trip, points := g.generateTrip(CarID(car), nextTrip)
			nextTrip++
			ds.Trips = append(ds.Trips, trip)
			ds.Trajectories = append(ds.Trajectories, points...)
		}
	}
	return ds, nil
}

// GenerateTripOn generates a single trip for the given car along an
// explicit route, used by the mesoscopic (driver-trip) experiments to
// script the motorway -> motorway-link handover scenario.
func (g *Generator) GenerateTripOn(car CarID, trip TripID, route []geo.SegmentID, day, hour int) (Trip, []TrajectoryPoint, error) {
	segs := make([]*geo.Segment, 0, len(route))
	for _, id := range route {
		s := g.cfg.Network.Segment(id)
		if s == nil {
			return Trip{}, nil, fmt.Errorf("trace: unknown segment %d in route", id)
		}
		segs = append(segs, s)
	}
	if len(segs) == 0 {
		return Trip{}, nil, fmt.Errorf("trace: empty route")
	}
	start := time.Date(2016, time.July, day, hour, g.rng.Intn(60), g.rng.Intn(60), 0, time.UTC)
	t, pts := g.drive(car, trip, segs, start)
	return t, pts, nil
}

func (g *Generator) generateTrip(car CarID, trip TripID) (Trip, []TrajectoryPoint) {
	route := g.pickRoute()
	day := 1 + g.rng.Intn(g.cfg.Days)
	hour := sampleHour(g.rng)
	start := time.Date(2016, time.July, day, hour, g.rng.Intn(60), g.rng.Intn(60), 0, time.UTC)
	return g.drive(car, trip, route, start)
}

func (g *Generator) pickRoute() []*geo.Segment {
	route := make([]*geo.Segment, 0, g.cfg.RouteSegments)
	cur := g.pickStartSegment()
	route = append(route, cur)
	for len(route) < g.cfg.RouteSegments {
		succ := g.cfg.Network.Successors(cur.ID)
		if len(succ) > 0 {
			cur = g.cfg.Network.Segment(succ[g.rng.Intn(len(succ))])
		} else {
			cur = g.pickStartSegment()
		}
		route = append(route, cur)
	}
	return route
}

func (g *Generator) pickStartSegment() *geo.Segment {
	total := g.segWeights[len(g.segWeights)-1]
	x := g.rng.Float64() * total
	lo, hi := 0, len(g.segWeights)-1
	for lo < hi {
		mid := (lo + hi) / 2
		if g.segWeights[mid] < x {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return g.segments[lo]
}

// episode tracks an in-progress anomalous-driving episode.
type episode struct {
	kind      AnomalyKind
	remaining int
	severity  float64 // sigma multiplier, 1.5..3
}

// drive simulates the vehicle along the route, emitting GPS fixes.
func (g *Generator) drive(car CarID, trip TripID, route []*geo.Segment, start time.Time) (Trip, []TrajectoryPoint) {
	dt := g.cfg.SampleInterval.Seconds()
	now := start
	var points []TrajectoryPoint
	var mileage float64
	aggressive := g.Aggressive(car)

	// Current speed in km/h, initialised near the first segment's mean.
	weekend := Weekend(start.Day())
	mean, std := g.cfg.Profile.MeanStd(route[0].Type, start.Hour(), weekend)
	speed := math.Max(0, mean+g.rng.NormFloat64()*std*0.5)

	var ep *episode
	for _, seg := range route {
		var along float64
		// Fresh chance of an anomalous episode at each segment entry.
		if aggressive && ep == nil && g.rng.Float64() < g.cfg.EpisodeProb {
			ep = g.newEpisode()
		}
		for along < seg.LengthMeters() {
			weekend = Weekend(now.Day())
			mean, std = g.cfg.Profile.MeanStd(seg.Type, now.Hour(), weekend)

			bias := g.driverBias(car)
			target := mean + bias*std + g.rng.NormFloat64()*std*0.6
			anomalous := false
			if ep != nil {
				anomalous = true
				switch ep.kind {
				case Speeding:
					target = mean + ep.severity*std
				case Slowing:
					target = math.Max(0, mean-ep.severity*std)
				case SuddenAcceleration:
					// Alternate hard accelerate / hard brake around the mean.
					if ep.remaining%2 == 0 {
						target = mean + ep.severity*std
					} else {
						target = math.Max(0, mean-ep.severity*std*0.8)
					}
				}
				ep.remaining--
				if ep.remaining <= 0 {
					ep = nil
				}
			}

			// First-order response toward the target with bounded accel.
			maxAccel := 8.0 // km/h per second, ordinary driving
			if anomalous {
				maxAccel = 20
			}
			delta := target - speed
			delta = math.Max(-maxAccel*dt, math.Min(maxAccel*dt, delta))
			speed = math.Max(0, speed+delta)

			stepM := speed / 3.6 * dt
			along += stepM
			mileage += stepM
			frac := along / seg.LengthMeters()
			pos := seg.PointAt(frac)
			if g.cfg.GPSSigmaM > 0 {
				pos = geo.Destination(pos, g.rng.Float64()*360, math.Abs(g.rng.NormFloat64())*g.cfg.GPSSigmaM)
			}
			// Sensor-error injection: GPS teleport.
			if g.rng.Float64() < g.cfg.ErrorRate {
				pos = geo.Destination(pos, g.rng.Float64()*360, 3000+g.rng.Float64()*5000)
			}
			now = now.Add(g.cfg.SampleInterval)
			points = append(points, TrajectoryPoint{
				Car:        car,
				Trip:       trip,
				Lon:        pos.Lon,
				Lat:        pos.Lat,
				GPSTime:    now,
				AcMileageM: mileage,
				SegmentID:  seg.ID,
				Anomalous:  anomalous,
			})
			if len(points) > 100_000 {
				// Safety valve against pathological slow crawls.
				break
			}
		}
	}

	first, last := route[0].Start(), route[len(route)-1].End()
	tr := Trip{
		ID:        trip,
		Car:       car,
		StartTime: start,
		StopTime:  now,
		StartLon:  first.Lon,
		StartLat:  first.Lat,
		StopLon:   last.Lon,
		StopLat:   last.Lat,
		MileageM:  mileage,
		FuelML:    mileage * 0.08, // ~8 L/100 km
		PeriodS:   now.Sub(start).Seconds(),
	}
	return tr, points
}

func (g *Generator) newEpisode() *episode {
	kinds := []AnomalyKind{Speeding, Slowing, SuddenAcceleration}
	length := 1 + int(float64(g.cfg.EpisodeLenMean)*(0.5+g.rng.Float64()))
	return &episode{
		kind:      kinds[g.rng.Intn(len(kinds))],
		remaining: length,
		severity:  2.0 + g.rng.Float64()*1.5,
	}
}

// driverBias returns the car's persistent speed bias in sigma units.
func (g *Generator) driverBias(car CarID) float64 {
	idx := int(car) - 1
	if idx < 0 || idx >= len(g.biasK) {
		return 0
	}
	return g.biasK[idx]
}

// poissonAtLeast1 draws from a Poisson-like distribution with the given
// mean, clamped to >= 1 (every car takes at least one trip).
func poissonAtLeast1(rng *rand.Rand, mean float64) int {
	// Knuth's algorithm; mean values here are small.
	l := math.Exp(-mean)
	k, p := 0, 1.0
	for {
		k++
		p *= rng.Float64()
		if p <= l {
			break
		}
	}
	if k-1 < 1 {
		return 1
	}
	return k - 1
}

func sampleHour(rng *rand.Rand) int {
	w := TripStartWeights()
	var total float64
	for _, x := range w {
		total += x
	}
	x := rng.Float64() * total
	for h, wt := range w {
		x -= wt
		if x <= 0 {
			return h
		}
	}
	return 23
}
