package trace

import (
	"encoding/json"
	"math"
	"testing"
	"time"

	"cad3/internal/geo"
)

func generateSmallDataset(t *testing.T, cars int, seed int64) (*geo.Network, *Dataset) {
	t.Helper()
	net := testNetwork(t)
	g, err := NewGenerator(GeneratorConfig{Network: net, Cars: cars, Seed: seed})
	if err != nil {
		t.Fatal(err)
	}
	ds, err := g.Generate()
	if err != nil {
		t.Fatal(err)
	}
	return net, ds
}

func TestDeriveRecordsBasic(t *testing.T) {
	net, ds := generateSmallDataset(t, 10, 1)
	recs, err := DeriveRecords(net, ds.Trajectories, DeriveOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) == 0 {
		t.Fatal("no records derived")
	}
	for i, r := range recs {
		if r.Speed < 0 {
			t.Fatalf("record %d: negative speed %.2f", i, r.Speed)
		}
		if r.Hour < 0 || r.Hour > 23 || r.Day < 1 || r.Day > 31 {
			t.Fatalf("record %d: bad context hour=%d day=%d", i, r.Hour, r.Day)
		}
		if !r.RoadType.Valid() {
			t.Fatalf("record %d: invalid road type", i)
		}
	}
}

func TestDeriveSpeedMatchesKinematics(t *testing.T) {
	// Hand-built trajectory: two fixes 27.78 m apart, 1 s apart
	// -> 100 km/h... use 27.78 m => 27.78 m/s = 100 km/h.
	net := geo.NewNetwork(0)
	start := geo.ShenzhenCenter
	pts := []geo.Point{start, geo.Destination(start, 90, 1000)}
	seg, err := geo.NewSegment(1, geo.Motorway, "m", pts)
	if err != nil {
		t.Fatal(err)
	}
	if err := net.AddSegment(seg); err != nil {
		t.Fatal(err)
	}
	t0 := time.Date(2016, 7, 4, 9, 0, 0, 0, time.UTC)
	mk := func(d float64, ts time.Time) TrajectoryPoint {
		p := geo.Destination(start, 90, d)
		return TrajectoryPoint{Car: 1, Trip: 1, Lat: p.Lat, Lon: p.Lon, GPSTime: ts, SegmentID: 1}
	}
	traj := []TrajectoryPoint{
		mk(0, t0),
		mk(27.78, t0.Add(time.Second)),
		mk(2*27.78, t0.Add(2*time.Second)),
	}
	recs, err := DeriveRecords(net, traj, DeriveOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 2 {
		t.Fatalf("got %d records, want 2", len(recs))
	}
	if math.Abs(recs[0].Speed-100) > 1 {
		t.Errorf("speed = %.2f, want ~100 km/h", recs[0].Speed)
	}
	if math.Abs(recs[1].Accel) > 0.5 {
		t.Errorf("constant speed should give ~0 accel, got %.2f", recs[1].Accel)
	}
	if recs[0].Hour != 9 || recs[0].Day != 4 {
		t.Errorf("context hour=%d day=%d", recs[0].Hour, recs[0].Day)
	}
	// Road mean speed should be the mean of the two instantaneous speeds.
	if math.Abs(recs[0].RoadMeanSpeed-100) > 1 {
		t.Errorf("road mean speed = %.2f, want ~100", recs[0].RoadMeanSpeed)
	}
}

func TestDeriveHandlesUnsortedInput(t *testing.T) {
	net, ds := generateSmallDataset(t, 3, 9)
	// Reverse the input; derivation must sort internally.
	rev := make([]TrajectoryPoint, len(ds.Trajectories))
	for i, p := range ds.Trajectories {
		rev[len(rev)-1-i] = p
	}
	a, err := DeriveRecords(net, ds.Trajectories, DeriveOptions{})
	if err != nil {
		t.Fatal(err)
	}
	b, err := DeriveRecords(net, rev, DeriveOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if len(a) != len(b) {
		t.Fatalf("record counts differ: %d vs %d", len(a), len(b))
	}
}

func TestDeriveWithMapMatching(t *testing.T) {
	net, ds := generateSmallDataset(t, 2, 4)
	matcher := geo.NewMatcher(net, geo.MatcherConfig{})
	recs, err := DeriveRecords(net, ds.Trajectories, DeriveOptions{UseMapMatching: true, Matcher: matcher})
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) == 0 {
		t.Fatal("no records derived with map matching")
	}
	// Matched road types should mostly agree with ground truth.
	truth, err := DeriveRecords(net, ds.Trajectories, DeriveOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != len(truth) {
		t.Skipf("record counts differ (%d vs %d); matcher fallback path", len(recs), len(truth))
	}
	agree := 0
	for i := range recs {
		if recs[i].Road == truth[i].Road {
			agree++
		}
	}
	if frac := float64(agree) / float64(len(recs)); frac < 0.7 {
		t.Errorf("map matching agrees with ground truth on %.0f%% of records, want >= 70%%", frac*100)
	}
}

func TestRecordWireSizeApprox200Bytes(t *testing.T) {
	r := Record{
		Car: 12345, Road: 556363, Accel: -2.35, Speed: 87.64, Hour: 18,
		Day: 21, RoadType: geo.Motorway, RoadMeanSpeed: 95.33,
		TimestampMs: time.Now().UnixMilli(),
	}
	b, err := json.Marshal(r)
	if err != nil {
		t.Fatal(err)
	}
	if len(b) < 100 || len(b) > 300 {
		t.Errorf("wire size %d bytes, want ~200 (paper's packet size)", len(b))
	}
}

func TestReplayClock(t *testing.T) {
	recs := []Record{{Car: 1}, {Car: 2}, {Car: 3}}
	start := time.Date(2016, 7, 1, 0, 0, 0, 0, time.UTC)
	out := ReplayClock(recs, start, 100*time.Millisecond)
	if out[0].TimestampMs != start.UnixMilli() {
		t.Errorf("first ts = %d", out[0].TimestampMs)
	}
	if out[2].TimestampMs-out[1].TimestampMs != 100 {
		t.Errorf("gap = %d ms, want 100", out[2].TimestampMs-out[1].TimestampMs)
	}
	if recs[0].TimestampMs != 0 {
		t.Error("ReplayClock must not mutate its input")
	}
}
