package trace

import (
	"sort"
	"time"

	"cad3/internal/geo"
)

// DeriveOptions configures feature derivation.
type DeriveOptions struct {
	// UseMapMatching recovers each fix's road segment from coordinates
	// with the HMM matcher instead of the generator ground truth,
	// exercising the full offline pipeline of the paper. Slower.
	UseMapMatching bool
	// Matcher is required when UseMapMatching is set.
	Matcher *geo.Matcher
}

// DeriveRecords converts raw trajectories into the Table II analysis
// records: instantaneous speed per Equation 4, acceleration as the speed
// delta over time, hour/day context, road type, and the per-road mean
// speed v̄_r. Records for which speed cannot be derived (the last point of
// each trip) are omitted.
//
// The input order does not matter: points are grouped by trip and sorted
// by time internally.
func DeriveRecords(net *geo.Network, points []TrajectoryPoint, opts DeriveOptions) ([]Record, error) {
	byTrip := make(map[TripID][]TrajectoryPoint)
	for _, p := range points {
		byTrip[p.Trip] = append(byTrip[p.Trip], p)
	}
	tripIDs := make([]TripID, 0, len(byTrip))
	for id := range byTrip {
		tripIDs = append(tripIDs, id)
	}
	sort.Slice(tripIDs, func(i, j int) bool { return tripIDs[i] < tripIDs[j] })

	var records []Record
	for _, id := range tripIDs {
		pts := byTrip[id]
		sort.Slice(pts, func(i, j int) bool { return pts[i].GPSTime.Before(pts[j].GPSTime) })

		segIDs := make([]geo.SegmentID, len(pts))
		if opts.UseMapMatching && opts.Matcher != nil {
			fixes := make([]geo.Point, len(pts))
			for i, p := range pts {
				fixes[i] = geo.Point{Lat: p.Lat, Lon: p.Lon}
			}
			projs, err := opts.Matcher.Match(fixes)
			if err != nil {
				// Unmatchable trips (e.g. dominated by teleported fixes)
				// fall back to ground truth; the filter removes the
				// resulting out-of-range records anyway.
				for i, p := range pts {
					segIDs[i] = p.SegmentID
				}
			} else {
				for i, pr := range projs {
					segIDs[i] = pr.SegmentID
				}
			}
		} else {
			for i, p := range pts {
				segIDs[i] = p.SegmentID
			}
		}

		var prevSpeed float64
		var havePrev bool
		for i := 0; i+1 < len(pts); i++ {
			a, b := pts[i], pts[i+1]
			dt := b.GPSTime.Sub(a.GPSTime)
			if dt <= 0 {
				havePrev = false
				continue
			}
			distM := geo.DistanceMeters(
				geo.Point{Lat: a.Lat, Lon: a.Lon},
				geo.Point{Lat: b.Lat, Lon: b.Lon},
			)
			speed := distM / dt.Seconds() * 3.6 // km/h
			accel := 0.0
			if havePrev {
				accel = (speed - prevSpeed) / dt.Seconds()
			}
			prevSpeed, havePrev = speed, true

			seg := net.Segment(segIDs[i])
			if seg == nil {
				continue
			}
			records = append(records, Record{
				Car:   a.Car,
				Road:  seg.ID,
				Accel: accel,
				Speed: speed,
				Lat:   a.Lat,
				Lon:   a.Lon,
				Heading: geo.BearingDeg(
					geo.Point{Lat: a.Lat, Lon: a.Lon},
					geo.Point{Lat: b.Lat, Lon: b.Lon},
				),
				Hour:        a.GPSTime.Hour(),
				Day:         a.GPSTime.Day(),
				RoadType:    seg.Type,
				TimestampMs: a.GPSTime.UnixMilli(),
				Anomalous:   a.Anomalous || b.Anomalous,
			})
		}
	}

	attachRoadMeanSpeed(records)
	return records, nil
}

// attachRoadMeanSpeed computes v̄_r per road segment over the plausible
// (< MaxPlausibleSpeedKmh) observations and writes it into every record.
func attachRoadMeanSpeed(records []Record) {
	type agg struct {
		sum float64
		n   int
	}
	byRoad := make(map[geo.SegmentID]*agg)
	for _, r := range records {
		if r.Speed < 0 || r.Speed > MaxPlausibleSpeedKmh {
			continue
		}
		a := byRoad[r.Road]
		if a == nil {
			a = &agg{}
			byRoad[r.Road] = a
		}
		a.sum += r.Speed
		a.n++
	}
	for i := range records {
		if a := byRoad[records[i].Road]; a != nil && a.n > 0 {
			records[i].RoadMeanSpeed = a.sum / float64(a.n)
		}
	}
}

// ReplayClock rewrites record timestamps so a slice of records can be
// replayed starting at the given instant with the given inter-record gap.
// Used by the vehicle emulator, which streams dataset rows at 10 Hz.
func ReplayClock(records []Record, start time.Time, gap time.Duration) []Record {
	out := make([]Record, len(records))
	copy(out, records)
	for i := range out {
		out[i].TimestampMs = start.Add(time.Duration(i) * gap).UnixMilli()
	}
	return out
}
