package trace

import (
	"math"
	"testing"
	"time"

	"cad3/internal/geo"
)

func testNetwork(t *testing.T) *geo.Network {
	t.Helper()
	net, err := geo.BuildNetwork(geo.BuildConfig{Scale: 0.02, Seed: 42})
	if err != nil {
		t.Fatal(err)
	}
	return net
}

func testGenerator(t *testing.T, cars int, seed int64) *Generator {
	t.Helper()
	g, err := NewGenerator(GeneratorConfig{
		Network: testNetwork(t),
		Seed:    seed,
		Cars:    cars,
	})
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func TestNewGeneratorValidation(t *testing.T) {
	if _, err := NewGenerator(GeneratorConfig{Cars: 1}); err != ErrNoNetwork {
		t.Errorf("err = %v, want ErrNoNetwork", err)
	}
	if _, err := NewGenerator(GeneratorConfig{Network: testNetwork(t)}); err != ErrNoCars {
		t.Errorf("err = %v, want ErrNoCars", err)
	}
	empty := geo.NewNetwork(0)
	if _, err := NewGenerator(GeneratorConfig{Network: empty, Cars: 1}); err == nil {
		t.Error("want error for empty network")
	}
}

func TestGenerateBasicShape(t *testing.T) {
	g := testGenerator(t, 20, 1)
	ds, err := g.Generate()
	if err != nil {
		t.Fatal(err)
	}
	if len(ds.Trips) < 20 {
		t.Errorf("trips = %d, want >= cars (each car takes >= 1 trip)", len(ds.Trips))
	}
	if len(ds.Trajectories) == 0 {
		t.Fatal("no trajectory points")
	}
	cars := make(map[CarID]bool)
	for _, tr := range ds.Trips {
		cars[tr.Car] = true
		if !tr.StopTime.After(tr.StartTime) {
			t.Errorf("trip %d: stop %v not after start %v", tr.ID, tr.StopTime, tr.StartTime)
		}
		if tr.MileageM <= 0 {
			t.Errorf("trip %d: mileage %.1f", tr.ID, tr.MileageM)
		}
		if tr.PeriodS <= 0 {
			t.Errorf("trip %d: period %.1f", tr.ID, tr.PeriodS)
		}
	}
	if len(cars) != 20 {
		t.Errorf("distinct cars = %d, want 20", len(cars))
	}
}

func TestGenerateDeterministic(t *testing.T) {
	g1 := testGenerator(t, 5, 7)
	g2 := testGenerator(t, 5, 7)
	ds1, _ := g1.Generate()
	ds2, _ := g2.Generate()
	if len(ds1.Trajectories) != len(ds2.Trajectories) {
		t.Fatalf("trajectory counts differ: %d vs %d", len(ds1.Trajectories), len(ds2.Trajectories))
	}
	for i := range ds1.Trajectories {
		a, b := ds1.Trajectories[i], ds2.Trajectories[i]
		if a.Lat != b.Lat || a.Lon != b.Lon || !a.GPSTime.Equal(b.GPSTime) {
			t.Fatalf("point %d differs between identical seeds", i)
		}
	}
}

func TestGenerateTimesMonotonicWithinTrip(t *testing.T) {
	g := testGenerator(t, 10, 3)
	ds, _ := g.Generate()
	last := make(map[TripID]time.Time)
	for _, p := range ds.Trajectories {
		if prev, ok := last[p.Trip]; ok && !p.GPSTime.After(prev) {
			t.Fatalf("trip %d: non-monotonic GPS time", p.Trip)
		}
		last[p.Trip] = p.GPSTime
	}
}

func TestAggressiveFractionApprox(t *testing.T) {
	g, err := NewGenerator(GeneratorConfig{
		Network:            testNetwork(t),
		Cars:               2000,
		Seed:               5,
		AggressiveFraction: 0.3,
	})
	if err != nil {
		t.Fatal(err)
	}
	var n int
	for c := 1; c <= 2000; c++ {
		if g.Aggressive(CarID(c)) {
			n++
		}
	}
	frac := float64(n) / 2000
	if math.Abs(frac-0.3) > 0.05 {
		t.Errorf("aggressive fraction %.3f, want ~0.3", frac)
	}
	if g.Aggressive(0) || g.Aggressive(99999) {
		t.Error("out-of-range car IDs must not be aggressive")
	}
}

func TestGenerateTripOn(t *testing.T) {
	net := testNetwork(t)
	g, err := NewGenerator(GeneratorConfig{Network: net, Cars: 1, Seed: 2, AggressiveFraction: 1, EpisodeProb: 1})
	if err != nil {
		t.Fatal(err)
	}
	mw := net.SegmentsOfType(geo.Motorway)[0]
	succ := net.Successors(mw.ID)
	if len(succ) == 0 {
		t.Fatal("motorway has no successor")
	}
	trip, pts, err := g.GenerateTripOn(1, 1, []geo.SegmentID{mw.ID, succ[0]}, 4, 8)
	if err != nil {
		t.Fatal(err)
	}
	if trip.StartTime.Day() != 4 || trip.StartTime.Hour() != 8 {
		t.Errorf("start = %v, want day 4 hour 8", trip.StartTime)
	}
	segSet := make(map[geo.SegmentID]bool)
	anomalous := 0
	for _, p := range pts {
		segSet[p.SegmentID] = true
		if p.Anomalous {
			anomalous++
		}
	}
	if !segSet[mw.ID] || !segSet[succ[0]] {
		t.Errorf("trip did not cover both route segments: %v", segSet)
	}
	if anomalous == 0 {
		t.Error("fully aggressive driver with EpisodeProb=1 produced no anomalous points")
	}

	if _, _, err := g.GenerateTripOn(1, 2, []geo.SegmentID{999999}, 1, 1); err == nil {
		t.Error("want error for unknown segment")
	}
	if _, _, err := g.GenerateTripOn(1, 3, nil, 1, 1); err == nil {
		t.Error("want error for empty route")
	}
}

func TestWeekend(t *testing.T) {
	// July 2016: Fri 1, Sat 2, Sun 3, ... Sat 9, Sun 10.
	weekends := map[int]bool{2: true, 3: true, 9: true, 10: true, 16: true, 17: true, 23: true, 24: true, 30: true, 31: true}
	for d := 1; d <= 31; d++ {
		if got := Weekend(d); got != weekends[d] {
			t.Errorf("Weekend(%d) = %v, want %v", d, got, weekends[d])
		}
	}
}

func TestAnomalyKindString(t *testing.T) {
	for _, k := range []AnomalyKind{Speeding, Slowing, SuddenAcceleration} {
		if k.String() == "anomaly" {
			t.Errorf("kind %d has no name", int(k))
		}
	}
	if AnomalyKind(0).String() != "anomaly" {
		t.Error("zero kind should fall back to generic name")
	}
}
