// Package lint is the CAD3 repo-aware static-analysis suite behind
// cmd/cad3-vet. It loads every package in the module with nothing but
// the standard library (go/parser + go/types, stdlib imports resolved
// from $GOROOT source) and runs analyzers that enforce the invariants
// the codebase's hot paths depend on but the compiler cannot check:
//
//   - virtualclock: simulation packages must take an injected clock —
//     no wall-clock time.Now/time.Sleep/timers.
//   - poolsafety: pooled payload buffers must not be read, written, or
//     recycled again after they were handed back to the pool.
//   - wirelayout: the fixed 200 B record frame, the 41 B warning, and
//     the 50 B trace blob at offset 76 are cross-checked against the
//     offsets the codec actually writes, so the constants and the code
//     can never drift apart.
//   - noalloc: functions annotated //cad3:noalloc must not contain
//     allocating constructs (capturing closures, map/slice literals,
//     make/new, string concatenation, interface boxing).
//   - goroutinehygiene: long-running packages must not spawn bare
//     goroutines without lifecycle control (context, stop channel, or
//     WaitGroup).
//   - detorder: determinism-critical packages must not let runtime-
//     randomized orders (map iteration, multi-ready select, global
//     math/rand) leak into transcripts, ledgers, or replicated state.
//   - lockdiscipline: intraprocedural mutex-state tracking — no blocking
//     operation while a lock is held, no double lock on a path, every
//     path to return releases, no copy-by-value of lock-bearing structs.
//   - atomicmix: a field accessed through sync/atomic anywhere must be
//     accessed through sync/atomic everywhere.
//   - wireerrexhaustive: wire client call sites must not discard the v2
//     broker error codes, must not test for codes the called method
//     cannot return, and the analyzer's code table is cross-checked
//     against the sentinels the broker actually encodes.
//
// Findings print as "file:line: [analyzer] message"; a finding can be
// suppressed with an annotation on the same line or the line above:
//
//	//cad3:allow <analyzer> <reason>
//
// The reason is mandatory — an allow without one is itself a finding.
// See DESIGN.md §11 and §16 for each analyzer's rationale.
package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"runtime"
	"sort"
	"strings"
	"sync"
)

// Finding is one analyzer hit.
type Finding struct {
	Pos      token.Position `json:"pos"`
	Analyzer string         `json:"analyzer"`
	Message  string         `json:"message"`
}

// String formats the finding the way cad3-vet prints it.
func (f Finding) String() string {
	return fmt.Sprintf("%s:%d: [%s] %s", f.Pos.Filename, f.Pos.Line, f.Analyzer, f.Message)
}

// Analyzer is one named check over a loaded Program.
type Analyzer struct {
	// Name is the identifier findings carry and //cad3:allow references.
	Name string
	// Doc is a one-line description for cad3-vet -list.
	Doc string
	// Run reports the analyzer's findings over the whole program. Only
	// whole-program analyzers (cross-package state) set it; everything
	// else sets RunPkg instead.
	Run func(prog *Program) []Finding
	// RunPkg reports the analyzer's findings for one package. Per-package
	// analyzers are fanned out across workers and their results are
	// cacheable per package (see Cache).
	RunPkg func(prog *Program, pkg *Package) []Finding
	// KeyPkgs scopes a whole-program analyzer's cache key to the packages
	// with these base names — the ones it actually reads. Per-package
	// analyzers leave it nil (their key is the package plus its
	// module-internal transitive dependencies).
	KeyPkgs []string
}

// Analyzers returns the full suite in stable order.
func Analyzers() []*Analyzer {
	return []*Analyzer{
		VirtualClock,
		PoolSafety,
		WireLayout,
		NoAlloc,
		GoroutineHygiene,
		DetOrder,
		LockDiscipline,
		AtomicMix,
		WireErrExhaustive,
	}
}

// AllowTag is the annotation prefix that suppresses a finding.
const AllowTag = "//cad3:allow"

// Allow is one parsed, well-formed //cad3:allow annotation. The census
// (cad3-vet -allows) prints every Allow with its reason and whether it
// suppressed anything, so suppressions cannot silently accumulate or go
// stale.
type Allow struct {
	Pos      token.Position `json:"pos"`
	Analyzer string         `json:"analyzer"`
	Reason   string         `json:"reason"`
	// Used reports whether the allow matched at least one raw finding in
	// the run that produced it (set by Run/RepoVet, false for an allow
	// that no longer suppresses anything).
	Used bool `json:"used"`
}

// Run executes the analyzers over the program, applies //cad3:allow
// suppressions, and appends a finding for every malformed allow (missing
// analyzer name or reason). Findings come back sorted by position.
// Per-package analyzers are fanned out over GOMAXPROCS workers.
func Run(prog *Program, analyzers []*Analyzer) []Finding {
	findings, _ := RunCensus(prog, analyzers)
	return findings
}

// RunCensus is Run plus the suppression census: every well-formed allow
// annotation in the program, marked Used if it suppressed a finding.
func RunCensus(prog *Program, analyzers []*Analyzer) ([]Finding, []Allow) {
	return RunCensusCached(prog, analyzers, nil)
}

// RunCensusCached is RunCensus through a content-hashed result cache
// (nil disables caching): per-(analyzer, package) jobs whose inputs are
// byte-identical to a previous run return their stored raw findings
// without re-analysis. Suppression filtering and the census always run
// fresh, so allows can never be served stale.
func RunCensusCached(prog *Program, analyzers []*Analyzer, c *Cache) ([]Finding, []Allow) {
	raw := runParallel(prog, analyzers, c)
	allows, bad := prog.Allows()
	out := append(filterAllowed(raw, allows), bad...)
	sortFindings(out)
	return out, allows
}

// runParallel fans the analyzer suite out over the program: one job per
// (per-package analyzer, package) pair plus one per whole-program
// analyzer, bounded by GOMAXPROCS workers. Output order is made
// deterministic by the caller's sort.
func runParallel(prog *Program, analyzers []*Analyzer, c *Cache) []Finding {
	type job func() []Finding
	cached := func(a *Analyzer, pkg *Package, run func() []Finding) job {
		if c == nil {
			return run
		}
		return func() []Finding { return c.wrap(prog, a, pkg, run) }
	}
	var jobs []job
	for _, a := range analyzers {
		a := a
		if a.RunPkg != nil {
			for _, pkg := range prog.Pkgs {
				pkg := pkg
				jobs = append(jobs, cached(a, pkg, func() []Finding { return a.RunPkg(prog, pkg) }))
			}
			continue
		}
		jobs = append(jobs, cached(a, nil, func() []Finding { return a.Run(prog) }))
	}
	results := make([][]Finding, len(jobs))
	workers := runtime.GOMAXPROCS(0)
	if workers > len(jobs) {
		workers = len(jobs)
	}
	if workers <= 1 {
		for i, j := range jobs {
			results[i] = j()
		}
	} else {
		var wg sync.WaitGroup
		next := make(chan int)
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for i := range next {
					results[i] = jobs[i]()
				}
			}()
		}
		for i := range jobs {
			next <- i
		}
		close(next)
		wg.Wait()
	}
	var out []Finding
	for _, r := range results {
		out = append(out, r...)
	}
	return out
}

// sortFindings orders findings by file, line, analyzer, message.
func sortFindings(out []Finding) {
	sort.Slice(out, func(i, j int) bool {
		if out[i].Pos.Filename != out[j].Pos.Filename {
			return out[i].Pos.Filename < out[j].Pos.Filename
		}
		if out[i].Pos.Line != out[j].Pos.Line {
			return out[i].Pos.Line < out[j].Pos.Line
		}
		if out[i].Analyzer != out[j].Analyzer {
			return out[i].Analyzer < out[j].Analyzer
		}
		return out[i].Message < out[j].Message
	})
}

// filterAllowed drops findings covered by a well-formed allow annotation
// for the same analyzer on the finding's line or the line directly
// above, marking each matching allow as used.
func filterAllowed(findings []Finding, allows []Allow) []Finding {
	type key struct {
		file     string
		line     int
		analyzer string
	}
	idx := make(map[key]*Allow, len(allows))
	for i := range allows {
		al := &allows[i]
		idx[key{al.Pos.Filename, al.Pos.Line, al.Analyzer}] = al
	}
	kept := findings[:0]
	for _, f := range findings {
		if al := idx[key{f.Pos.Filename, f.Pos.Line, f.Analyzer}]; al != nil {
			al.Used = true
			continue
		}
		if al := idx[key{f.Pos.Filename, f.Pos.Line - 1, f.Analyzer}]; al != nil {
			al.Used = true
			continue
		}
		kept = append(kept, f)
	}
	return kept
}

// Allows scans every file's comments for //cad3:allow annotations,
// returning the well-formed ones and a finding per malformed one.
func (prog *Program) Allows() ([]Allow, []Finding) {
	var ok []Allow
	var bad []Finding
	for _, pkg := range prog.Pkgs {
		for _, file := range pkg.Files {
			for _, cg := range file.Comments {
				for _, c := range cg.List {
					if !strings.HasPrefix(c.Text, AllowTag) {
						continue
					}
					pos := prog.Fset.Position(c.Pos())
					rest := strings.TrimPrefix(c.Text, AllowTag)
					if i := strings.Index(rest, "//"); i >= 0 {
						rest = rest[:i] // a nested comment is not part of the reason
					}
					fields := strings.Fields(rest)
					if len(fields) < 2 {
						bad = append(bad, Finding{
							Pos:      pos,
							Analyzer: "allow",
							Message:  "malformed " + AllowTag + ": need \"" + AllowTag + " <analyzer> <reason>\" — the reason is mandatory",
						})
						continue
					}
					ok = append(ok, Allow{
						Pos:      pos,
						Analyzer: fields[0],
						Reason:   strings.Join(fields[1:], " "),
					})
				}
			}
		}
	}
	sort.Slice(ok, func(i, j int) bool {
		if ok[i].Pos.Filename != ok[j].Pos.Filename {
			return ok[i].Pos.Filename < ok[j].Pos.Filename
		}
		return ok[i].Pos.Line < ok[j].Pos.Line
	})
	return ok, bad
}

// pkgBase returns the last element of an import path — analyzers that
// target specific repo packages (netem, stream, ...) match on it so the
// golden-file testdata packages trigger the same rules.
func pkgBase(path string) string {
	if i := strings.LastIndex(path, "/"); i >= 0 {
		return path[i+1:]
	}
	return path
}

// funcDecl finds a top-level function declaration by name in the package.
func (p *Package) funcDecl(name string) *ast.FuncDecl {
	for _, f := range p.Files {
		for _, d := range f.Decls {
			if fd, okd := d.(*ast.FuncDecl); okd && fd.Recv == nil && fd.Name.Name == name {
				return fd
			}
		}
	}
	return nil
}
