// Package lint is the CAD3 repo-aware static-analysis suite behind
// cmd/cad3-vet. It loads every package in the module with nothing but
// the standard library (go/parser + go/types, stdlib imports resolved
// from $GOROOT source) and runs analyzers that enforce the invariants
// the codebase's hot paths depend on but the compiler cannot check:
//
//   - virtualclock: simulation packages must take an injected clock —
//     no wall-clock time.Now/time.Sleep/timers.
//   - poolsafety: pooled payload buffers must not be read, written, or
//     recycled again after they were handed back to the pool.
//   - wirelayout: the fixed 200 B record frame, the 41 B warning, and
//     the 50 B trace blob at offset 76 are cross-checked against the
//     offsets the codec actually writes, so the constants and the code
//     can never drift apart.
//   - noalloc: functions annotated //cad3:noalloc must not contain
//     allocating constructs (capturing closures, map/slice literals,
//     make/new, string concatenation, interface boxing).
//   - goroutinehygiene: long-running packages must not spawn bare
//     goroutines without lifecycle control (context, stop channel, or
//     WaitGroup).
//
// Findings print as "file:line: [analyzer] message"; a finding can be
// suppressed with an annotation on the same line or the line above:
//
//	//cad3:allow <analyzer> <reason>
//
// The reason is mandatory — an allow without one is itself a finding.
// See DESIGN.md §11 for each analyzer's rationale.
package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"sort"
	"strings"
)

// Finding is one analyzer hit.
type Finding struct {
	Pos      token.Position
	Analyzer string
	Message  string
}

// String formats the finding the way cad3-vet prints it.
func (f Finding) String() string {
	return fmt.Sprintf("%s:%d: [%s] %s", f.Pos.Filename, f.Pos.Line, f.Analyzer, f.Message)
}

// Analyzer is one named check over a loaded Program.
type Analyzer struct {
	// Name is the identifier findings carry and //cad3:allow references.
	Name string
	// Doc is a one-line description for cad3-vet -list.
	Doc string
	// Run reports the analyzer's findings over the whole program.
	Run func(prog *Program) []Finding
}

// Analyzers returns the full suite in stable order.
func Analyzers() []*Analyzer {
	return []*Analyzer{
		VirtualClock,
		PoolSafety,
		WireLayout,
		NoAlloc,
		GoroutineHygiene,
	}
}

// AllowTag is the annotation prefix that suppresses a finding.
const AllowTag = "//cad3:allow"

// allow is one parsed //cad3:allow annotation.
type allow struct {
	pos      token.Position
	analyzer string
	reason   string
}

// Run executes the analyzers over the program, applies //cad3:allow
// suppressions, and appends a finding for every malformed allow (missing
// analyzer name or reason). Findings come back sorted by position.
func Run(prog *Program, analyzers []*Analyzer) []Finding {
	var out []Finding
	for _, a := range analyzers {
		out = append(out, a.Run(prog)...)
	}
	allows, bad := prog.allows()
	out = append(filterAllowed(out, allows), bad...)
	sort.Slice(out, func(i, j int) bool {
		if out[i].Pos.Filename != out[j].Pos.Filename {
			return out[i].Pos.Filename < out[j].Pos.Filename
		}
		if out[i].Pos.Line != out[j].Pos.Line {
			return out[i].Pos.Line < out[j].Pos.Line
		}
		return out[i].Analyzer < out[j].Analyzer
	})
	return out
}

// filterAllowed drops findings covered by a well-formed allow annotation
// for the same analyzer on the finding's line or the line directly above.
func filterAllowed(findings []Finding, allows []allow) []Finding {
	type key struct {
		file     string
		line     int
		analyzer string
	}
	idx := make(map[key]bool, len(allows))
	for _, al := range allows {
		idx[key{al.pos.Filename, al.pos.Line, al.analyzer}] = true
	}
	kept := findings[:0]
	for _, f := range findings {
		k := key{f.Pos.Filename, f.Pos.Line, f.Analyzer}
		kAbove := key{f.Pos.Filename, f.Pos.Line - 1, f.Analyzer}
		if idx[k] || idx[kAbove] {
			continue
		}
		kept = append(kept, f)
	}
	return kept
}

// allows scans every file's comments for //cad3:allow annotations,
// returning the well-formed ones and a finding per malformed one.
func (prog *Program) allows() ([]allow, []Finding) {
	var ok []allow
	var bad []Finding
	for _, pkg := range prog.Pkgs {
		for _, file := range pkg.Files {
			for _, cg := range file.Comments {
				for _, c := range cg.List {
					if !strings.HasPrefix(c.Text, AllowTag) {
						continue
					}
					pos := prog.Fset.Position(c.Pos())
					rest := strings.TrimPrefix(c.Text, AllowTag)
					if i := strings.Index(rest, "//"); i >= 0 {
						rest = rest[:i] // a nested comment is not part of the reason
					}
					fields := strings.Fields(rest)
					if len(fields) < 2 {
						bad = append(bad, Finding{
							Pos:      pos,
							Analyzer: "allow",
							Message:  "malformed " + AllowTag + ": need \"" + AllowTag + " <analyzer> <reason>\" — the reason is mandatory",
						})
						continue
					}
					ok = append(ok, allow{
						pos:      pos,
						analyzer: fields[0],
						reason:   strings.Join(fields[1:], " "),
					})
				}
			}
		}
	}
	return ok, bad
}

// pkgBase returns the last element of an import path — analyzers that
// target specific repo packages (netem, stream, ...) match on it so the
// golden-file testdata packages trigger the same rules.
func pkgBase(path string) string {
	if i := strings.LastIndex(path, "/"); i >= 0 {
		return path[i+1:]
	}
	return path
}

// funcDecl finds a top-level function declaration by name in the package.
func (p *Package) funcDecl(name string) *ast.FuncDecl {
	for _, f := range p.Files {
		for _, d := range f.Decls {
			if fd, okd := d.(*ast.FuncDecl); okd && fd.Recv == nil && fd.Name.Name == name {
				return fd
			}
		}
	}
	return nil
}
