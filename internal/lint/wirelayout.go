package lint

import (
	"fmt"
	"go/ast"
	"go/constant"
	"go/token"
	"go/types"
)

// WireLayout cross-checks the wire-format constants against the layout
// the codec actually encodes. The 200 B record frame, the 41 B warning,
// the 38 B summary prefix and the 50 B trace blob at offset 76 are all
// load-bearing: the MAC emulation sizes airtime from RecordWireSize, the
// trace context hides in the frame's padding at RecordTraceOffset, and a
// mixed fleet decodes by these offsets. The analyzer recomputes every
// encoder's and decoder's written/read extent from the AST (constant
// indexes into the buffer plus the PutUintNN/UintNN widths) and reports
// any drift between:
//
//   - recordBodySize / warningWireSize / summaryFixedSize and what
//     AppendRecord / AppendWarning / AppendSummary actually write;
//   - the same constants and what DecodeRecord / DecodeWarning /
//     DecodeSummary actually read;
//   - TraceBlobSize and PutTrace / GetTrace extents;
//   - the obsv mirror constants (RecordTraceOffset, RecordFrameSize,
//     WarningTraceOffset) and the core layout they mirror;
//   - StampPayload's per-stage offsets and PutTrace's field offsets;
//   - the trace blob fitting inside the record frame's padding;
//   - the stream wire protocol's fixed v2 layouts: helloBodySize vs
//     putHello/readHelloBody and batchOKResultSize vs
//     putBatchOK/readBatchOK.
//
// Packages are located structurally (a package that defines AppendRecord
// plus recordBodySize is "the codec"; one defining PutTrace plus
// TraceBlobSize is "the trace side"), so the golden testdata exercises
// the same code paths as the real tree.
var WireLayout = &Analyzer{
	Name: "wirelayout",
	Doc:  "wire-format size/offset constants must match the encoded layout computed from the AST",
	Run:  runWireLayout,
	// Cross-package: the codec constants live in core, the trace blob in
	// obsv, and the frame encoders in stream; only those packages feed
	// the result, so only they key the cache.
	KeyPkgs: []string{"core", "obsv", "stream", "wire"},
}

func runWireLayout(prog *Program) []Finding {
	var out []Finding
	core := findPackageWith(prog, "AppendRecord", "recordBodySize")
	obsv := findPackageWith(prog, "PutTrace", "TraceBlobSize")

	var coreBody, coreFrame, coreWarn, coreSummary int64
	var haveCore bool
	if core != nil {
		w := &wireChecker{prog: prog, pkg: core, out: &out}
		coreBody = w.constVal("recordBodySize")
		coreFrame = w.constVal("RecordWireSize")
		coreWarn = w.constVal("warningWireSize")
		coreSummary = w.constVal("summaryFixedSize")
		haveCore = true

		w.checkExtent("AppendRecord", "recordBodySize", coreBody, writeExtent)
		w.checkExtent("DecodeRecord", "recordBodySize", coreBody, readExtent)
		w.checkExtent("AppendWarning", "warningWireSize", coreWarn, writeExtent)
		w.checkExtent("DecodeWarning", "warningWireSize", coreWarn, readExtent)
		w.checkExtent("AppendSummary", "summaryFixedSize", coreSummary, writeExtent)
		w.checkExtent("DecodeSummary", "summaryFixedSize", coreSummary, readExtent)

		if coreBody > coreFrame {
			w.reportConst("RecordWireSize", fmt.Sprintf(
				"record frame (%d B) is smaller than the fixed body (%d B)", coreFrame, coreBody))
		}
	}

	// The stream wire protocol's fixed v2 layouts: the hello body and the
	// per-record batch result. Located structurally like the codec —
	// whichever package defines putHello plus helloBodySize is the wire
	// layer — so the golden fixture exercises the same path.
	if wire := findPackageWith(prog, "putHello", "helloBodySize"); wire != nil {
		w := &wireChecker{prog: prog, pkg: wire, out: &out}
		hello := w.constVal("helloBodySize")
		w.checkExtent("putHello", "helloBodySize", hello, writeExtent)
		w.checkExtent("readHelloBody", "helloBodySize", hello, readExtent)
		batchOK := w.constVal("batchOKResultSize")
		w.checkExtent("putBatchOK", "batchOKResultSize", batchOK, writeExtent)
		w.checkExtent("readBatchOK", "batchOKResultSize", batchOK, readExtent)
	}

	if obsv != nil {
		w := &wireChecker{prog: prog, pkg: obsv, out: &out}
		blob := w.constVal("TraceBlobSize")
		w.checkExtent("PutTrace", "TraceBlobSize", blob, writeExtent)
		w.checkExtent("GetTrace", "TraceBlobSize", blob, readExtent)
		w.checkStampOffsets(blob)

		if haveCore {
			checks := []struct {
				name   string
				expect int64
				what   string
			}{
				{"RecordTraceOffset", coreBody, "the codec's fixed record body size (the first padding byte)"},
				{"RecordFrameSize", coreFrame, "the codec's RecordWireSize"},
				{"WarningTraceOffset", coreWarn, "the codec's fixed warning size"},
			}
			for _, ck := range checks {
				got := w.constVal(ck.name)
				if got < 0 {
					continue // constant absent: nothing to cross-check
				}
				if got != ck.expect {
					w.reportConst(ck.name, fmt.Sprintf(
						"%s = %d drifted from %s (%d)", ck.name, got, ck.what, ck.expect))
				}
			}
			if off, size := w.constVal("RecordTraceOffset"), blob; off >= 0 && size >= 0 && off+size > coreFrame {
				w.reportConst("RecordTraceOffset", fmt.Sprintf(
					"trace blob (%d B at offset %d) overflows the %d B record frame", size, off, coreFrame))
			}
		}
	}
	return out
}

// findPackageWith locates the package defining both a function and a
// constant with the given names.
func findPackageWith(prog *Program, funcName, constName string) *Package {
	for _, pkg := range prog.Pkgs {
		if pkg.funcDecl(funcName) != nil && pkg.constDecl(constName) != nil {
			return pkg
		}
	}
	return nil
}

// constDecl finds the declaration position of a package-level constant.
func (p *Package) constDecl(name string) *ast.Ident {
	for _, f := range p.Files {
		for _, d := range f.Decls {
			gd, ok := d.(*ast.GenDecl)
			if !ok || gd.Tok != token.CONST {
				continue
			}
			for _, spec := range gd.Specs {
				vs, ok := spec.(*ast.ValueSpec)
				if !ok {
					continue
				}
				for _, id := range vs.Names {
					if id.Name == name {
						return id
					}
				}
			}
		}
	}
	return nil
}

type wireChecker struct {
	prog *Program
	pkg  *Package
	out  *[]Finding
}

// constVal evaluates a package-level integer constant, or -1 if absent.
func (w *wireChecker) constVal(name string) int64 {
	obj := w.pkg.Types.Scope().Lookup(name)
	cn, ok := obj.(*types.Const)
	if !ok {
		return -1
	}
	v, ok := constant.Int64Val(constant.ToInt(cn.Val()))
	if !ok {
		return -1
	}
	return v
}

// reportConst emits a finding anchored at the named constant (falling
// back to the package's first file).
func (w *wireChecker) reportConst(name, msg string) {
	pos := w.pkg.Files[0].Pos()
	if id := w.pkg.constDecl(name); id != nil {
		pos = id.Pos()
	}
	*w.out = append(*w.out, Finding{
		Pos:      w.prog.Fset.Position(pos),
		Analyzer: "wirelayout",
		Message:  msg,
	})
}

type extentMode int

const (
	writeExtent extentMode = iota
	readExtent
)

// checkExtent recomputes fn's encoded extent from its body and compares
// it to the named constant.
func (w *wireChecker) checkExtent(fn, constName string, want int64, mode extentMode) {
	decl := w.pkg.funcDecl(fn)
	if decl == nil || decl.Body == nil || want < 0 {
		return
	}
	got := w.bodyExtent(decl.Body, mode)
	if got == 0 {
		return // no constant-indexed accesses found: nothing to compare
	}
	if got != want {
		*w.out = append(*w.out, Finding{
			Pos:      w.prog.Fset.Position(decl.Pos()),
			Analyzer: "wirelayout",
			Message: fmt.Sprintf("%s touches %d bytes of fixed layout but %s = %d — the constant and the codec drifted apart",
				fn, got, constName, want),
		})
	}
}

// putSizes maps the binary.ByteOrder method names to their widths.
var putSizes = map[string]int64{
	"PutUint16": 2, "PutUint32": 4, "PutUint64": 8,
	"Uint16": 2, "Uint32": 4, "Uint64": 8,
}

// bodyExtent computes the maximum constant offset+width the body touches
// on any byte slice: b[K] accesses count K+1, PutUintNN(b[K:], ...) and
// UintNN(b[K:]) count K+widthNN. Non-constant offsets (variable tails,
// loops) are ignored — the fixed layout is what the constants describe.
func (w *wireChecker) bodyExtent(body *ast.BlockStmt, mode extentMode) int64 {
	var max int64
	ast.Inspect(body, func(n ast.Node) bool {
		switch x := n.(type) {
		case *ast.CallExpr:
			sel, ok := x.Fun.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			size, ok := putSizes[sel.Sel.Name]
			if !ok || len(x.Args) == 0 {
				return true
			}
			isPut := sel.Sel.Name[0] == 'P'
			if (mode == writeExtent) != isPut {
				return true
			}
			if off, ok := w.sliceLow(x.Args[0]); ok && off+size > max {
				max = off + size
			}
		case *ast.AssignStmt:
			if mode != writeExtent {
				return true
			}
			for _, lhs := range x.Lhs {
				if ix, ok := lhs.(*ast.IndexExpr); ok {
					if k, ok := w.intConst(ix.Index); ok && k+1 > max {
						max = k + 1
					}
				}
			}
		case *ast.IndexExpr:
			if mode != readExtent {
				return true
			}
			if k, ok := w.intConst(x.Index); ok && k+1 > max {
				max = k + 1
			}
		}
		return true
	})
	return max
}

// sliceLow extracts the constant low bound of a b[K:] argument.
func (w *wireChecker) sliceLow(e ast.Expr) (int64, bool) {
	s, ok := e.(*ast.SliceExpr)
	if !ok {
		return 0, false
	}
	if s.Low == nil {
		return 0, true
	}
	return w.intConst(s.Low)
}

// intConst evaluates an expression to a constant int via the type info.
func (w *wireChecker) intConst(e ast.Expr) (int64, bool) {
	tv, ok := w.pkg.Info.Types[e]
	if !ok || tv.Value == nil {
		return 0, false
	}
	v, ok := constant.Int64Val(constant.ToInt(tv.Value))
	return v, ok
}

// checkStampOffsets verifies StampPayload's in-place stage offsets: each
// must be one of PutTrace's written field offsets, and the 8-byte stamp
// must fit inside the blob.
func (w *wireChecker) checkStampOffsets(blob int64) {
	put := w.pkg.funcDecl("PutTrace")
	stamp := w.pkg.funcDecl("StampPayload")
	if put == nil || stamp == nil || stamp.Body == nil || put.Body == nil {
		return
	}
	writes := map[int64]bool{}
	ast.Inspect(put.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		sel, ok := call.Fun.(*ast.SelectorExpr)
		if !ok || putSizes[sel.Sel.Name] != 8 || sel.Sel.Name[0] != 'P' || len(call.Args) == 0 {
			return true
		}
		if off, ok := w.sliceLow(call.Args[0]); ok {
			writes[off] = true
		}
		return true
	})
	if len(writes) == 0 {
		return
	}
	ast.Inspect(stamp.Body, func(n ast.Node) bool {
		as, ok := n.(*ast.AssignStmt)
		if !ok || len(as.Lhs) != 1 || len(as.Rhs) != 1 {
			return true
		}
		id, ok := as.Lhs[0].(*ast.Ident)
		if !ok || id.Name != "off" {
			return true
		}
		k, ok := w.intConst(as.Rhs[0])
		if !ok {
			return true
		}
		switch {
		case !writes[k]:
			*w.out = append(*w.out, Finding{
				Pos:      w.prog.Fset.Position(as.Pos()),
				Analyzer: "wirelayout",
				Message: fmt.Sprintf("StampPayload stamps offset %d, which PutTrace never writes — the stamp would corrupt a neighboring field",
					k),
			})
		case blob >= 0 && k+8 > blob:
			*w.out = append(*w.out, Finding{
				Pos:      w.prog.Fset.Position(as.Pos()),
				Analyzer: "wirelayout",
				Message:  fmt.Sprintf("StampPayload offset %d+8 overflows the %d-byte trace blob", k, blob),
			})
		}
		return true
	})
}
