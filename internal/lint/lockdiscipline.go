package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// LockDiscipline tracks mutex state through each function body and
// reports the lock-misuse shapes that produce the repo's worst failure
// modes — multi-second stalls on the hot path and replay-breaking
// deadlocks:
//
//   - holding a lock across a blocking operation: a channel send or
//     receive, a select without a default, sync.WaitGroup.Wait,
//     time.Sleep, or a broker/client network call (Produce, Fetch,
//     Poll, Commit, ...). Every other goroutine that needs the lock —
//     including metrics gauges registered against it — stalls for the
//     full network round trip;
//   - double-acquiring the same lock on one path (self-deadlock);
//   - a path that returns with the lock still held and no deferred
//     unlock (everything wedges at the next acquire);
//   - copying a value whose type contains a sync.Mutex/RWMutex by
//     value (the copy's lock state is meaningless).
//
// The analysis is intraprocedural: it does not follow calls into other
// functions, so helpers that acquire on behalf of their caller follow
// the repo convention of a FooLocked name and take a //cad3:allow where
// the analysis cannot see the protocol.
var LockDiscipline = &Analyzer{
	Name:   "lockdiscipline",
	Doc:    "no blocking ops under a mutex, no double-lock, unlock on every path, no lock copies",
	RunPkg: runLockDiscipline,
}

// lockPkgs are the concurrency-bearing packages (matched on the final
// import-path element).
var lockPkgs = map[string]bool{
	"stream": true, "flow": true, "rsu": true, "city": true,
	"obsv": true, "microbatch": true, "vehicle": true, "geo": true,
}

// blockingClientNames are method names that perform (or transitively
// wait on) network round trips in this codebase's client surfaces.
var blockingClientNames = map[string]bool{
	"Produce": true, "ProduceBatch": true, "Fetch": true, "FetchCommitted": true,
	"Poll": true, "PollInto": true, "Commit": true, "CommitOffsets": true,
	"Subscribe": true, "CreateTopic": true, "Dial": true, "DialContext": true,
}

func runLockDiscipline(prog *Program, pkg *Package) []Finding {
	if !lockPkgs[pkgBase(pkg.Path)] {
		return nil
	}
	var out []Finding
	for _, file := range pkg.Files {
		for _, decl := range file.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Body == nil {
				continue
			}
			w := &lockWalker{prog: prog, pkg: pkg, out: &out}
			// Analyze the declared body, then every function literal inside
			// it as an independent function (a goroutine or callback does
			// not inherit the spawner's lock state).
			w.analyzeBody(fn.Body, fn.Name.Name)
			checkLockCopies(prog, pkg, fn, &out)
		}
	}
	return out
}

// lockState is the per-path abstract state: which lock expressions are
// held, and which of them already have a deferred unlock scheduled.
type lockState struct {
	held     map[string]token.Pos
	deferred map[string]bool
}

func newLockState() *lockState {
	return &lockState{held: map[string]token.Pos{}, deferred: map[string]bool{}}
}

func (s *lockState) clone() *lockState {
	c := newLockState()
	for k, v := range s.held {
		c.held[k] = v
	}
	for k := range s.deferred {
		c.deferred[k] = true
	}
	return c
}

// merge intersects held sets (a lock is held after a branch only if
// every surviving path holds it) and unions deferred unlocks.
func merge(states []*lockState) *lockState {
	var live []*lockState
	for _, s := range states {
		if s != nil {
			live = append(live, s)
		}
	}
	if len(live) == 0 {
		return nil
	}
	m := newLockState()
	for k, v := range live[0].held {
		inAll := true
		for _, s := range live[1:] {
			if _, ok := s.held[k]; !ok {
				inAll = false
				break
			}
		}
		if inAll {
			m.held[k] = v
		}
	}
	for _, s := range live {
		for k := range s.deferred {
			m.deferred[k] = true
		}
	}
	return m
}

// unreleased lists the locks held with no deferred unlock, sorted for
// stable messages.
func (s *lockState) unreleased() []string {
	var names []string
	for k := range s.held {
		if !s.deferred[k] {
			names = append(names, k)
		}
	}
	sort.Strings(names)
	return names
}

type lockWalker struct {
	prog *Program
	pkg  *Package
	out  *[]Finding
	fn   string
	// callerHeld records locks whose first operation in this function is
	// an Unlock: the caller holds them by contract (the checkNode-style
	// drop-and-retake helper), so returning with them re-held is the
	// contract, not a leak.
	callerHeld map[string]bool
}

func (w *lockWalker) report(pos token.Pos, msg string) {
	*w.out = append(*w.out, Finding{
		Pos:      w.prog.Fset.Position(pos),
		Analyzer: "lockdiscipline",
		Message:  w.fn + " " + msg,
	})
}

// analyzeBody runs the walk over one function body and then over every
// function literal found inside it, each with a fresh (empty) state.
func (w *lockWalker) analyzeBody(body *ast.BlockStmt, name string) {
	w.fn = name
	w.callerHeld = map[string]bool{}
	if exit := w.block(body.List, newLockState()); exit != nil {
		for _, l := range exit.unreleased() {
			if w.callerHeld[l] {
				continue
			}
			w.report(body.End(), "can end with "+l+" held and no unlock on that path")
		}
	}
	ast.Inspect(body, func(n ast.Node) bool {
		if lit, ok := n.(*ast.FuncLit); ok {
			inner := &lockWalker{prog: w.prog, pkg: w.pkg, out: w.out}
			inner.analyzeBody(lit.Body, name+" (func literal)")
			return false
		}
		return true
	})
}

// block walks a statement list, threading the lock state. A nil result
// means every path through the list terminated (returned).
func (w *lockWalker) block(list []ast.Stmt, st *lockState) *lockState {
	for _, s := range list {
		st = w.stmt(s, st)
		if st == nil {
			return nil
		}
	}
	return st
}

func (w *lockWalker) stmt(s ast.Stmt, st *lockState) *lockState {
	switch x := s.(type) {
	case *ast.ExprStmt:
		if call, ok := x.X.(*ast.CallExpr); ok {
			if w.lockOp(call, st) {
				return st
			}
		}
		w.checkExprs(x, st)
		return st
	case *ast.AssignStmt, *ast.IncDecStmt, *ast.DeclStmt:
		w.checkExprs(s, st)
		return st
	case *ast.SendStmt:
		w.checkExprs(x.Value, st)
		if names := st.unreleasedOrDeferred(); len(names) > 0 {
			w.report(x.Pos(), "sends on a channel while holding "+strings.Join(names, ", ")+
				" — the send can block every other path through the lock")
		}
		return st
	case *ast.DeferStmt:
		w.deferStmt(x, st)
		return st
	case *ast.ReturnStmt:
		w.checkExprs(s, st)
		for _, l := range st.unreleased() {
			if w.callerHeld[l] {
				continue
			}
			w.report(x.Pos(), "returns with "+l+" held and no unlock on this path")
		}
		return nil
	case *ast.IfStmt:
		if x.Init != nil {
			st = w.stmt(x.Init, st)
		}
		w.checkExprs(x.Cond, st)
		thenSt := w.block(x.Body.List, st.clone())
		var elseSt *lockState
		switch e := x.Else.(type) {
		case *ast.BlockStmt:
			elseSt = w.block(e.List, st.clone())
		case *ast.IfStmt:
			elseSt = w.stmt(e, st.clone())
		default:
			elseSt = st.clone() // no else: fall through unchanged
		}
		return merge([]*lockState{thenSt, elseSt})
	case *ast.ForStmt:
		if x.Init != nil {
			st = w.stmt(x.Init, st)
		}
		if x.Cond != nil {
			w.checkExprs(x.Cond, st)
		}
		w.block(x.Body.List, st.clone()) // body findings; loop may run zero times
		return st
	case *ast.RangeStmt:
		w.checkExprs(x.X, st)
		w.block(x.Body.List, st.clone())
		return st
	case *ast.SwitchStmt:
		if x.Init != nil {
			st = w.stmt(x.Init, st)
		}
		if x.Tag != nil {
			w.checkExprs(x.Tag, st)
		}
		return w.caseBodies(x.Body, st, true)
	case *ast.TypeSwitchStmt:
		return w.caseBodies(x.Body, st, true)
	case *ast.SelectStmt:
		hasDefault := false
		for _, cl := range x.Body.List {
			if cc, ok := cl.(*ast.CommClause); ok && cc.Comm == nil {
				hasDefault = true
			}
		}
		if !hasDefault {
			if names := st.unreleasedOrDeferred(); len(names) > 0 {
				w.report(x.Pos(), "blocks in a select (no default) while holding "+strings.Join(names, ", "))
			}
		}
		var exits []*lockState
		for _, cl := range x.Body.List {
			if cc, ok := cl.(*ast.CommClause); ok {
				exits = append(exits, w.block(cc.Body, st.clone()))
			}
		}
		if len(exits) == 0 {
			return st
		}
		return merge(exits)
	case *ast.BlockStmt:
		return w.block(x.List, st)
	case *ast.LabeledStmt:
		return w.stmt(x.Stmt, st)
	case *ast.BranchStmt:
		return nil // break/continue/goto end this path conservatively
	case *ast.GoStmt:
		return st // spawning is non-blocking; the literal is analyzed separately
	default:
		return st
	}
}

// caseBodies merges the exit states of a switch's cases; withFallthrough
// adds the entry state (no case may match when there is no default).
func (w *lockWalker) caseBodies(body *ast.BlockStmt, st *lockState, withEntry bool) *lockState {
	var exits []*lockState
	hasDefault := false
	for _, cl := range body.List {
		cc, ok := cl.(*ast.CaseClause)
		if !ok {
			continue
		}
		if cc.List == nil {
			hasDefault = true
		}
		for _, e := range cc.List {
			w.checkExprs(e, st)
		}
		exits = append(exits, w.block(cc.Body, st.clone()))
	}
	if withEntry && !hasDefault {
		exits = append(exits, st.clone())
	}
	if len(exits) == 0 {
		return st
	}
	return merge(exits)
}

// unreleasedOrDeferred lists every held lock, deferred or not — a
// deferred unlock still means the lock is held right now.
func (s *lockState) unreleasedOrDeferred() []string {
	var names []string
	for k := range s.held {
		names = append(names, k)
	}
	sort.Strings(names)
	return names
}

// lockOp handles x.mu.Lock()/Unlock() calls; reports double-locks.
// Returns true if the call was a lock operation.
func (w *lockWalker) lockOp(call *ast.CallExpr, st *lockState) bool {
	recv, op := lockCallTarget(w.pkg, call)
	if recv == "" {
		return false
	}
	switch op {
	case "Lock", "RLock":
		if _, held := st.held[recv]; held {
			w.report(call.Pos(), "acquires "+recv+" which is already held on this path (self-deadlock)")
		}
		st.held[recv] = call.Pos()
	case "Unlock", "RUnlock":
		if _, held := st.held[recv]; !held {
			// First touch is a release: the caller holds this lock by
			// contract, so re-held exits are part of that contract.
			w.callerHeld[recv] = true
		}
		delete(st.held, recv)
		// A deferred unlock stays scheduled: the drop-and-retake pattern
		// (unlock around a slow call, relock, rely on the defer at exit)
		// still unlocks every path.
	}
	return true
}

// deferStmt recognizes `defer x.mu.Unlock()` and `defer func() { ...
// x.mu.Unlock() ... }()` as scheduled unlocks: the lock stays held for
// the rest of the function but no longer counts as leaked at exits.
func (w *lockWalker) deferStmt(d *ast.DeferStmt, st *lockState) {
	if recv, op := lockCallTarget(w.pkg, d.Call); recv != "" && (op == "Unlock" || op == "RUnlock") {
		st.deferred[recv] = true
		return
	}
	if lit, ok := d.Call.Fun.(*ast.FuncLit); ok {
		ast.Inspect(lit.Body, func(n ast.Node) bool {
			if call, ok := n.(*ast.CallExpr); ok {
				if recv, op := lockCallTarget(w.pkg, call); recv != "" && (op == "Unlock" || op == "RUnlock") {
					st.deferred[recv] = true
				}
			}
			return true
		})
	}
}

// lockCallTarget resolves a call to (canonical receiver expr, op) when
// the callee is Lock/RLock/Unlock/RUnlock on a sync.Mutex or RWMutex.
func lockCallTarget(pkg *Package, call *ast.CallExpr) (string, string) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return "", ""
	}
	op := sel.Sel.Name
	switch op {
	case "Lock", "RLock", "Unlock", "RUnlock":
	default:
		return "", ""
	}
	t := pkg.Info.Types[sel.X].Type
	if t == nil {
		return "", ""
	}
	switch typeName(t) {
	case "sync.Mutex", "sync.RWMutex":
	default:
		return "", ""
	}
	return exprKey(sel.X), op
}

// exprKey renders a lock receiver expression canonically ("r.mu",
// "s.shards[i].mu" collapses to its printed form).
func exprKey(e ast.Expr) string {
	switch x := e.(type) {
	case *ast.Ident:
		return x.Name
	case *ast.SelectorExpr:
		return exprKey(x.X) + "." + x.Sel.Name
	case *ast.ParenExpr:
		return exprKey(x.X)
	case *ast.StarExpr:
		return exprKey(x.X)
	case *ast.IndexExpr:
		return exprKey(x.X) + "[" + exprKey(x.Index) + "]"
	case *ast.BasicLit:
		return x.Value
	case *ast.CallExpr:
		return callName(x) + "()"
	default:
		return "?"
	}
}

// checkExprs scans one statement or expression (without descending into
// nested statements or function literals) for blocking operations
// performed while locks are held.
func (w *lockWalker) checkExprs(n ast.Node, st *lockState) {
	held := st.unreleasedOrDeferred()
	if len(held) == 0 {
		return
	}
	ast.Inspect(n, func(nn ast.Node) bool {
		switch x := nn.(type) {
		case *ast.FuncLit:
			return false // runs later, with its own state
		case *ast.UnaryExpr:
			if x.Op == token.ARROW {
				w.report(x.Pos(), "receives from a channel while holding "+strings.Join(held, ", "))
			}
		case *ast.CallExpr:
			w.checkBlockingCall(x, held)
		}
		return true
	})
}

// checkBlockingCall reports calls that can block for a network round
// trip or an unbounded wait while locks are held.
func (w *lockWalker) checkBlockingCall(call *ast.CallExpr, held []string) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return
	}
	name := sel.Sel.Name
	heldList := strings.Join(held, ", ")
	// time.Sleep under a lock.
	if id, ok := sel.X.(*ast.Ident); ok {
		if pn, ok := w.pkg.Info.Uses[id].(*types.PkgName); ok {
			if pn.Imported().Path() == "time" && name == "Sleep" {
				w.report(call.Pos(), "sleeps while holding "+heldList)
			}
			return // other package-level calls are out of scope
		}
	}
	recvType := w.pkg.Info.Types[sel.X].Type
	// WaitGroup.Wait blocks; sync.Cond.Wait releases the lock by
	// contract and is the one blessed blocking wait under a mutex.
	if name == "Wait" && recvType != nil && typeName(recvType) == "sync.WaitGroup" {
		w.report(call.Pos(), "waits on a WaitGroup while holding "+heldList)
		return
	}
	if !blockingClientNames[name] {
		return
	}
	// Only dynamic dispatch (an interface receiver may be a TCP client)
	// and explicit client types count as round trips; a concrete
	// in-process type (e.g. *Broker) is a same-process call whose cost
	// is bounded by its own critical sections.
	if recvType == nil {
		return
	}
	if !types.IsInterface(recvType.Underlying()) {
		tn := typeName(recvType)
		if !strings.Contains(tn[strings.LastIndexByte(tn, '.')+1:], "Client") &&
			!strings.Contains(tn[strings.LastIndexByte(tn, '.')+1:], "Consumer") {
			return
		}
	}
	w.report(call.Pos(), "calls "+callName(call)+" (a blocking client round trip) while holding "+heldList)
}

// checkLockCopies flags by-value movement of lock-bearing types: value
// receivers, value parameters, and plain assignments that copy an
// existing lock-bearing value.
func checkLockCopies(prog *Program, pkg *Package, fn *ast.FuncDecl, out *[]Finding) {
	report := func(pos token.Pos, what, tname string) {
		*out = append(*out, Finding{
			Pos:      prog.Fset.Position(pos),
			Analyzer: "lockdiscipline",
			Message:  what + " copies " + tname + " which contains a mutex; use a pointer",
		})
	}
	if fn.Recv != nil {
		for _, f := range fn.Recv.List {
			if t := pkg.Info.Types[f.Type].Type; t != nil && typeContainsLock(t, nil) {
				report(f.Pos(), "receiver of "+fn.Name.Name, t.String())
			}
		}
	}
	if fn.Type.Params != nil {
		for _, f := range fn.Type.Params.List {
			if t := pkg.Info.Types[f.Type].Type; t != nil && typeContainsLock(t, nil) {
				report(f.Pos(), "parameter of "+fn.Name.Name, t.String())
			}
		}
	}
	if fn.Body == nil {
		return
	}
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		as, ok := n.(*ast.AssignStmt)
		if !ok || len(as.Lhs) != len(as.Rhs) {
			return true
		}
		for i, rhs := range as.Rhs {
			if !copiesExistingValue(rhs) {
				continue
			}
			if t := pkg.Info.Types[rhs].Type; t != nil && typeContainsLock(t, nil) {
				report(as.Lhs[i].Pos(), "assignment in "+fn.Name.Name, t.String())
			}
		}
		return true
	})
}

// copiesExistingValue reports whether the expression reads an existing
// value (as opposed to constructing a fresh one, which is
// initialization, not a copy).
func copiesExistingValue(e ast.Expr) bool {
	switch x := e.(type) {
	case *ast.Ident:
		return x.Name != "nil"
	case *ast.SelectorExpr, *ast.IndexExpr:
		return true
	case *ast.StarExpr:
		return true
	case *ast.ParenExpr:
		return copiesExistingValue(x.X)
	default:
		return false
	}
}

// typeContainsLock reports whether a type directly embeds lock state:
// sync.Mutex/RWMutex itself, or a struct/array containing one. Pointers,
// slices, and maps reference rather than contain.
func typeContainsLock(t types.Type, seen map[types.Type]bool) bool {
	if seen[t] {
		return false
	}
	if seen == nil {
		seen = map[types.Type]bool{}
	}
	seen[t] = true
	if _, isPtr := t.Underlying().(*types.Pointer); isPtr {
		return false // a pointer references the lock; copying it is fine
	}
	switch typeName(t) {
	case "sync.Mutex", "sync.RWMutex":
		return true
	}
	switch u := t.Underlying().(type) {
	case *types.Struct:
		for i := 0; i < u.NumFields(); i++ {
			if typeContainsLock(u.Field(i).Type(), seen) {
				return true
			}
		}
	case *types.Array:
		return typeContainsLock(u.Elem(), seen)
	}
	return false
}
