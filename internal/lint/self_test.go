package lint

import (
	"path/filepath"
	"testing"
)

// TestRepoIsClean runs the full suite over the real module — the same
// check `make vet` and CI run. Any finding here is a real regression
// against the invariants in DESIGN.md §11.
func TestRepoIsClean(t *testing.T) {
	if testing.Short() {
		t.Skip("type-checking the whole module is not a -short test")
	}
	root, module, err := FindModuleRoot(".")
	if err != nil {
		t.Fatal(err)
	}
	prog, err := NewLoader(root, module).LoadRepo()
	if err != nil {
		t.Fatal(err)
	}
	for _, pkg := range prog.Pkgs {
		for _, e := range pkg.TypeErrors {
			t.Errorf("%s: type error: %v", pkg.Path, e)
		}
	}
	for _, f := range Run(prog, Analyzers()) {
		rel := f
		if r, rerr := filepath.Rel(root, f.Pos.Filename); rerr == nil {
			rel.Pos.Filename = r
		}
		t.Errorf("%s", rel.String())
	}
}
