package lint

import (
	"path/filepath"
	"testing"
)

// TestRepoIsClean runs the full suite over the real module — the same
// check `make vet` and CI run. Any finding here is a real regression
// against the invariants in DESIGN.md §11.
func TestRepoIsClean(t *testing.T) {
	if testing.Short() {
		t.Skip("type-checking the whole module is not a -short test")
	}
	root, module, err := FindModuleRoot(".")
	if err != nil {
		t.Fatal(err)
	}
	prog, err := NewLoader(root, module).LoadRepo()
	if err != nil {
		t.Fatal(err)
	}
	for _, pkg := range prog.Pkgs {
		for _, e := range pkg.TypeErrors {
			t.Errorf("%s: type error: %v", pkg.Path, e)
		}
	}
	for _, f := range Run(prog, Analyzers()) {
		rel := f
		if r, rerr := filepath.Rel(root, f.Pos.Filename); rerr == nil {
			rel.Pos.Filename = r
		}
		t.Errorf("%s", rel.String())
	}
}

// TestWireDecoderPresent pins the repo to carrying the remoteError
// decoder: wireerrexhaustive silently audits nothing when the decoder is
// absent (so miniature fixtures without a protocol stay loadable), and
// that escape hatch must never swallow the real module.
func TestWireDecoderPresent(t *testing.T) {
	root, module, err := FindModuleRoot(".")
	if err != nil {
		t.Fatal(err)
	}
	loader := NewLoader(root, module)
	pkg, err := loader.LoadDir(filepath.Join(root, "internal", "stream"), module+"/internal/stream")
	if err != nil {
		t.Fatal(err)
	}
	set, pos := wireDecodeSet(pkg)
	if !pos.IsValid() {
		t.Fatalf("internal/stream no longer declares %s; wireerrexhaustive is auditing nothing", wireDecoderFunc)
	}
	if len(set) == 0 {
		t.Fatalf("%s reconstructs no sentinels; the decoder moved or was gutted", wireDecoderFunc)
	}
}
