package lint

import (
	"go/ast"
	"go/types"
	"strconv"
)

// VirtualClock forbids wall-clock time in the simulation packages. The
// Figure 6 latency numbers, the chaos study, and the overload curves are
// only reproducible because every component in those packages runs on an
// injected clock (netem.Simulator.Now, Config.Now hooks, injected Sleep
// functions). One stray time.Now or time.Sleep silently re-couples a
// "deterministic" experiment to the host scheduler.
//
// Pure time constructors and arithmetic (time.Date, time.UnixMilli,
// time.Duration math) are fine — only the functions that read or wait on
// the wall clock are banned.
var VirtualClock = &Analyzer{
	Name:   "virtualclock",
	Doc:    "simulation packages must take an injected clock — no time.Now/Sleep/timers",
	RunPkg: runVirtualClock,
}

// virtualClockPkgs are the simulation packages (matched on the final
// import-path element).
var virtualClockPkgs = map[string]bool{
	"experiments": true,
	"netem":       true,
	"trace":       true,
	"chaos":       true,
	"scenario":    true,
	"city":        true,
}

// wallClockFuncs are the time-package functions that read or wait on the
// wall clock.
var wallClockFuncs = map[string]bool{
	"Now":       true,
	"Sleep":     true,
	"NewTimer":  true,
	"NewTicker": true,
	"After":     true,
	"AfterFunc": true,
	"Tick":      true,
	"Since":     true,
	"Until":     true,
}

func runVirtualClock(prog *Program, pkg *Package) []Finding {
	var out []Finding
	if !virtualClockPkgs[pkgBase(pkg.Path)] {
		return nil
	}
	for _, file := range pkg.Files {
		timeNames := timeImportNames(file)
		if len(timeNames) == 0 {
			continue
		}
		ast.Inspect(file, func(n ast.Node) bool {
			sel, ok := n.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			id, ok := sel.X.(*ast.Ident)
			if !ok || !timeNames[id.Name] || !wallClockFuncs[sel.Sel.Name] {
				return true
			}
			// Only flag references through the package, not through a
			// local variable that shadows the import (Uses resolves the
			// qualifier to a PkgName for real package references).
			if obj, known := pkg.Info.Uses[id]; known {
				if _, isPkg := obj.(*types.PkgName); !isPkg {
					return true
				}
			}
			out = append(out, Finding{
				Pos:      prog.Fset.Position(sel.Pos()),
				Analyzer: "virtualclock",
				Message: "wall-clock time." + sel.Sel.Name + " in simulation package " +
					strconv.Quote(pkgBase(pkg.Path)) + "; take an injected clock (Now func / Sleep hook) instead",
			})
			return true
		})
	}
	return out
}

// timeImportNames returns the local names under which the file imports
// the time package (usually just "time"; honors renamed imports, reports
// nothing for "_" and none if the file does not import time).
func timeImportNames(file *ast.File) map[string]bool {
	names := map[string]bool{}
	for _, imp := range file.Imports {
		path, err := strconv.Unquote(imp.Path.Value)
		if err != nil || path != "time" {
			continue
		}
		name := "time"
		if imp.Name != nil {
			name = imp.Name.Name
		}
		if name == "_" || name == "." {
			continue
		}
		names[name] = true
	}
	return names
}
