package lint

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
)

// cacheSchema versions the on-disk entry format; bump it when Finding's
// JSON shape or the key derivation changes.
const cacheSchema = "1"

// Cache memoizes raw analyzer findings on disk, keyed by content: a
// per-package analyzer's key covers the package's files plus every
// module-internal package it transitively imports, and a whole-program
// analyzer's key covers the packages named by its KeyPkgs (or the whole
// module when nil). The analyzer suite's own sources are folded into
// every key, so editing an analyzer invalidates everything it produced
// — no manual version bump to forget.
//
// Entries hold pre-suppression findings: //cad3:allow filtering runs on
// every invocation (the annotations live in the hashed files, so edits
// invalidate the right entries anyway, and the census must always see
// current allows).
type Cache struct {
	dir     string
	version string

	mu      sync.Mutex
	ownHash map[string]string // import path -> hash of the package's own files
	keyHash map[string]string // import path -> hash incl. transitive internal deps
	hits    int
	misses  int
}

// NewCache opens (creating if needed) a result cache in dir for the
// loaded program. The suite version component is the hash of the lint
// package's own sources when the module carries them, else the schema
// constant alone.
func NewCache(dir string, prog *Program) (*Cache, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("lint: cache dir: %w", err)
	}
	c := &Cache{
		dir:     dir,
		ownHash: map[string]string{},
		keyHash: map[string]string{},
	}
	h := sha256.New()
	fmt.Fprintln(h, "schema", cacheSchema)
	lintDir := filepath.Join(prog.Root, "internal", "lint")
	if names, err := sortedGoFiles(lintDir); err == nil {
		for _, n := range names {
			data, rerr := os.ReadFile(filepath.Join(lintDir, n))
			if rerr != nil {
				return nil, rerr
			}
			fmt.Fprintln(h, n)
			h.Write(data)
		}
	}
	c.version = hex.EncodeToString(h.Sum(nil))
	return c, nil
}

// Stats reports cache hits and misses accumulated so far.
func (c *Cache) Stats() (hits, misses int) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.hits, c.misses
}

// sortedGoFiles lists the non-test .go files of dir in name order.
func sortedGoFiles(dir string) ([]string, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var names []string
	for _, e := range entries {
		n := e.Name()
		if e.IsDir() || !strings.HasSuffix(n, ".go") || strings.HasSuffix(n, "_test.go") {
			continue
		}
		names = append(names, n)
	}
	sort.Strings(names)
	return names, nil
}

// pkgOwnHash hashes the package's buildable files (names + contents).
func (c *Cache) pkgOwnHash(prog *Program, pkg *Package) (string, error) {
	c.mu.Lock()
	if h, ok := c.ownHash[pkg.Path]; ok {
		c.mu.Unlock()
		return h, nil
	}
	c.mu.Unlock()
	var files []string
	for _, f := range pkg.Files {
		files = append(files, prog.Fset.Position(f.Pos()).Filename)
	}
	sort.Strings(files)
	h := sha256.New()
	for _, path := range files {
		data, err := os.ReadFile(path)
		if err != nil {
			return "", err
		}
		fmt.Fprintln(h, filepath.Base(path))
		h.Write(data)
	}
	sum := hex.EncodeToString(h.Sum(nil))
	c.mu.Lock()
	c.ownHash[pkg.Path] = sum
	c.mu.Unlock()
	return sum, nil
}

// pkgKeyHash hashes the package plus its module-internal transitive
// imports: any edit below the package in the dependency tree changes
// the key, because analyzers consult imported type information.
func (c *Cache) pkgKeyHash(prog *Program, pkg *Package) (string, error) {
	c.mu.Lock()
	if h, ok := c.keyHash[pkg.Path]; ok {
		c.mu.Unlock()
		return h, nil
	}
	c.mu.Unlock()
	own, err := c.pkgOwnHash(prog, pkg)
	if err != nil {
		return "", err
	}
	byPath := map[string]*Package{}
	for _, p := range prog.Pkgs {
		byPath[p.Path] = p
	}
	var depPaths []string
	for _, imp := range pkg.Types.Imports() {
		p := imp.Path()
		if p == prog.Module || strings.HasPrefix(p, prog.Module+"/") {
			depPaths = append(depPaths, p)
		}
	}
	sort.Strings(depPaths)
	h := sha256.New()
	fmt.Fprintln(h, pkg.Path, own)
	for _, p := range depPaths {
		dep := byPath[p]
		if dep == nil {
			// An internal import outside the loaded set (shouldn't happen
			// for LoadRepo); fold the path in so the key is still distinct.
			fmt.Fprintln(h, p, "unloaded")
			continue
		}
		dh, derr := c.pkgKeyHash(prog, dep)
		if derr != nil {
			return "", derr
		}
		fmt.Fprintln(h, p, dh)
	}
	sum := hex.EncodeToString(h.Sum(nil))
	c.mu.Lock()
	c.keyHash[pkg.Path] = sum
	c.mu.Unlock()
	return sum, nil
}

// jobKey derives the cache key for one (analyzer, package) job; pkg is
// nil for whole-program analyzers, whose key covers KeyPkgs (or every
// loaded package when KeyPkgs is nil).
func (c *Cache) jobKey(prog *Program, a *Analyzer, pkg *Package) (string, error) {
	h := sha256.New()
	fmt.Fprintln(h, "suite", c.version)
	fmt.Fprintln(h, "analyzer", a.Name)
	if pkg != nil {
		kh, err := c.pkgKeyHash(prog, pkg)
		if err != nil {
			return "", err
		}
		fmt.Fprintln(h, pkg.Path, kh)
		return hex.EncodeToString(h.Sum(nil)), nil
	}
	want := map[string]bool{}
	for _, base := range a.KeyPkgs {
		want[base] = true
	}
	for _, p := range prog.Pkgs {
		if a.KeyPkgs != nil && !want[pkgBase(p.Path)] {
			continue
		}
		kh, err := c.pkgKeyHash(prog, p)
		if err != nil {
			return "", err
		}
		fmt.Fprintln(h, p.Path, kh)
	}
	return hex.EncodeToString(h.Sum(nil)), nil
}

// cacheEntry is the on-disk record: the job's raw (pre-suppression)
// findings.
type cacheEntry struct {
	Findings []Finding `json:"findings"`
}

// get loads the entry for key; ok reports a hit.
func (c *Cache) get(key string) ([]Finding, bool) {
	data, err := os.ReadFile(filepath.Join(c.dir, key+".json"))
	if err != nil {
		return nil, false
	}
	var e cacheEntry
	if json.Unmarshal(data, &e) != nil {
		return nil, false
	}
	return e.Findings, true
}

// put stores findings under key; a failed write only costs the next
// run a recompute, so errors are dropped.
func (c *Cache) put(key string, findings []Finding) {
	data, err := json.Marshal(cacheEntry{Findings: findings})
	if err != nil {
		return
	}
	tmp := filepath.Join(c.dir, key+".tmp")
	if os.WriteFile(tmp, data, 0o644) != nil {
		return
	}
	_ = os.Rename(tmp, filepath.Join(c.dir, key+".json"))
}

// wrap memoizes one job through the cache; on any key or decode
// trouble it falls back to running the job directly.
func (c *Cache) wrap(prog *Program, a *Analyzer, pkg *Package, job func() []Finding) []Finding {
	key, err := c.jobKey(prog, a, pkg)
	if err != nil {
		return job()
	}
	if findings, ok := c.get(key); ok {
		c.mu.Lock()
		c.hits++
		c.mu.Unlock()
		return findings
	}
	c.mu.Lock()
	c.misses++
	c.mu.Unlock()
	findings := job()
	c.put(key, findings)
	return findings
}
