package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"path/filepath"
	"strings"
)

// WireErrExhaustive audits the v2 wire protocol's error contract from
// both ends.
//
// The broker refuses requests with sentinel errors (ErrNotLeader with a
// leader + retry-after hint, ErrFencedEpoch, ErrOffsetGap, backpressure
// with a pacing hint, ...). They cross the wire as strings and the
// client-side decoder, remoteError in internal/stream, reconstructs
// them into errors.Is-able sentinels. That reconstruction list is the
// real contract: a sentinel the broker emits but remoteError does not
// decode reaches clients as an opaque remote failure, so every
// errors.Is against it is dead code and retry classifiers misroute it
// (a permanent refusal gets redialed like a transport error).
//
// Three checks:
//
//  1. the decoder is cross-checked against the analyzer's wire table
//     (the codes the broker actually emits): a table entry the decoder
//     misses reports at the decoder; a decoded sentinel missing from
//     the table reports so the table cannot go stale;
//  2. client-side code must not reference sentinels that never cross
//     the wire (dead errors.Is comparisons, retry classifiers listing
//     codes the decoder cannot produce);
//  3. client call sites must not discard the error result of a broker
//     round trip — dropping it silently loses ErrNotLeader redirects,
//     retry-after hints, and circuit state.
//
// The analyzer is whole-program: it reads the decoder out of the stream
// package and then audits every client package against it.
var WireErrExhaustive = &Analyzer{
	Name: "wireerrexhaustive",
	Doc:  "wire error sentinels decoded, matched, and handled consistently at client call sites",
	Run:  runWireErrExhaustive,
}

// wireCrossingErrors is the analyzer's wire table: the sentinels the
// broker emits over the v2 protocol, qualified as pkgbase.Name. Check 1
// keeps this list honest against the decoder.
var wireCrossingErrors = []string{
	"stream.ErrNotLeader",
	"stream.ErrFencedEpoch",
	"stream.ErrOffsetGap",
	"stream.ErrTopicExists",
	"stream.ErrUnknownTopic",
	"stream.ErrBadPartition",
	"stream.ErrBrokerClosed",
	"stream.ErrPartitionDown",
	"stream.ErrValueTooLarge",
	"stream.ErrEmptyTopicName",
	"flow.ErrBackpressure",
}

// clientLocalErrors are sentinels produced on the client side of the
// connection — legal to match anywhere, never decoded from the wire.
var clientLocalErrors = map[string]bool{
	"stream.ErrClientClosed": true,
	"flow.ErrCircuitOpen":    true,
	"flow.ErrBackpressure":   true, // also raised locally by pacers
}

// wireDecoderFunc is the client-side reconstruction point in the stream
// package.
const wireDecoderFunc = "remoteError"

// clientCallNames are the broker round-trip methods whose error result
// carries routing state (leader hints, retry-after) that must not be
// dropped.
var clientCallNames = map[string]bool{
	"Produce": true, "ProduceBatch": true, "Fetch": true, "FetchCommitted": true,
	"Poll": true, "PollInto": true, "Commit": true, "CommitOffsets": true,
	"Subscribe": true, "CreateTopic": true,
}

func runWireErrExhaustive(prog *Program) []Finding {
	var out []Finding
	streamPkg := pkgByBase(prog, "stream")
	if streamPkg == nil {
		return nil // nothing to audit without the protocol package
	}

	decodeSet, decoderPos := wireDecodeSet(streamPkg)
	if decoderPos == token.NoPos {
		// No remoteError decoder: this program does not carry the v2 wire
		// protocol (a fixture or a partial tree), so there is no contract
		// to audit. The self-test pins the real repo to having one.
		return nil
	}
	legal := map[string]bool{}
	for k := range decodeSet {
		legal[k] = true
	}
	for k := range clientLocalErrors {
		legal[k] = true
	}

	// Check 1a: every wire-table sentinel that exists must be decodable.
	inTable := map[string]bool{}
	for _, q := range wireCrossingErrors {
		inTable[q] = true
		if !sentinelDeclared(prog, q) {
			out = append(out, Finding{
				Pos:      prog.Fset.Position(decoderPos),
				Analyzer: "wireerrexhaustive",
				Message:  "wire table lists " + q + " but no such sentinel is declared; the table is stale",
			})
			continue
		}
		if !decodeSet[q] {
			out = append(out, Finding{
				Pos:      prog.Fset.Position(decoderPos),
				Analyzer: "wireerrexhaustive",
				Message: "broker emits " + q + " over the wire but " + wireDecoderFunc + " does not reconstruct it; " +
					"clients see an opaque remote failure and errors.Is against it never matches",
			})
		}
	}
	// Check 1b: the decoder must not reconstruct codes outside the table.
	for q := range decodeSet {
		if !inTable[q] {
			out = append(out, Finding{
				Pos:      prog.Fset.Position(decoderPos),
				Analyzer: "wireerrexhaustive",
				Message:  wireDecoderFunc + " reconstructs " + q + " which is not in the analyzer's wire table; update wireCrossingErrors",
			})
		}
	}

	// Checks 2 and 3 over client-side code.
	for _, pkg := range prog.Pkgs {
		base := pkgBase(pkg.Path)
		for _, file := range pkg.Files {
			fname := filepath.Base(prog.Fset.Position(file.Pos()).Filename)
			// The stream package itself is the server: its internal
			// sentinel uses are legitimate. Only its client-side retry
			// layer is held to the client rules.
			clientScope := base != "stream" || fname == "retry.go"
			if !clientScope {
				continue
			}
			checkDeadSentinelRefs(prog, pkg, file, base, legal, &out)
			checkDiscardedClientErrors(prog, pkg, file, base, &out)
		}
	}
	return out
}

// wireDecodeSet parses the decoder function and returns the qualified
// sentinel names it reconstructs, plus the decoder's position for
// report anchoring.
func wireDecodeSet(pkg *Package) (map[string]bool, token.Pos) {
	set := map[string]bool{}
	var pos token.Pos
	for _, file := range pkg.Files {
		for _, decl := range file.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Name.Name != wireDecoderFunc || fn.Body == nil {
				continue
			}
			pos = fn.Pos()
			ast.Inspect(fn.Body, func(n ast.Node) bool {
				id, ok := n.(*ast.Ident)
				if !ok {
					return true
				}
				if q := qualifiedSentinel(pkg, id); q != "" {
					set[q] = true
				}
				return true
			})
		}
	}
	return set, pos
}

// qualifiedSentinel resolves an identifier to "pkgbase.ErrName" when it
// names an exported error sentinel variable in the stream or flow
// packages.
func qualifiedSentinel(pkg *Package, id *ast.Ident) string {
	v, ok := pkg.Info.Uses[id].(*types.Var)
	if !ok || v.Pkg() == nil || !strings.HasPrefix(v.Name(), "Err") {
		return ""
	}
	base := pkgBase(v.Pkg().Path())
	if base != "stream" && base != "flow" {
		return ""
	}
	if !isErrorType(v.Type()) {
		return ""
	}
	return base + "." + v.Name()
}

// isErrorType reports whether t is the error interface.
func isErrorType(t types.Type) bool {
	return types.Identical(t, types.Universe.Lookup("error").Type())
}

// pkgByBase finds the loaded package with the given final import-path
// element; nil if absent or ambiguous.
func pkgByBase(prog *Program, base string) *Package {
	var found *Package
	for _, pkg := range prog.Pkgs {
		if pkgBase(pkg.Path) == base {
			if found != nil {
				return nil
			}
			found = pkg
		}
	}
	return found
}

// sentinelDeclared reports whether the qualified sentinel exists in the
// loaded program.
func sentinelDeclared(prog *Program, qualified string) bool {
	dot := strings.IndexByte(qualified, '.')
	if dot < 0 {
		return false
	}
	pkg := pkgByBase(prog, qualified[:dot])
	if pkg == nil {
		return false
	}
	obj := pkg.Types.Scope().Lookup(qualified[dot+1:])
	v, ok := obj.(*types.Var)
	return ok && isErrorType(v.Type())
}

// checkDeadSentinelRefs flags client-side references to stream/flow
// sentinels that never cross the wire: errors.Is against them is dead
// code, and retry classifiers listing them misroute real refusals.
func checkDeadSentinelRefs(prog *Program, pkg *Package, file *ast.File, base string, legal map[string]bool, out *[]Finding) {
	ast.Inspect(file, func(n ast.Node) bool {
		id, ok := n.(*ast.Ident)
		if !ok {
			return true
		}
		q := qualifiedSentinel(pkg, id)
		if q == "" || legal[q] {
			return true
		}
		// A package's own sentinel is its to return, not to match: flow
		// code returning flow-internal errors is not a wire concern.
		if strings.HasPrefix(q, base+".") && base != "stream" {
			return true
		}
		*out = append(*out, Finding{
			Pos:      prog.Fset.Position(id.Pos()),
			Analyzer: "wireerrexhaustive",
			Message: q + " never crosses the wire (" + wireDecoderFunc + " does not reconstruct it); " +
				"matching it client-side is dead code — decode it in " + wireDecoderFunc + " or stop referencing it here",
		})
		return true
	})
}

// checkDiscardedClientErrors flags broker round trips whose error
// result is dropped (bare call statement or a blank assignment in the
// error position).
func checkDiscardedClientErrors(prog *Program, pkg *Package, file *ast.File, base string, out *[]Finding) {
	if base == "stream" {
		return // the retry layer routes errors by construction
	}
	report := func(call *ast.CallExpr) {
		*out = append(*out, Finding{
			Pos:      prog.Fset.Position(call.Pos()),
			Analyzer: "wireerrexhaustive",
			Message: "discards the error from " + callName(call) + " — ErrNotLeader redirects, retry-after hints, " +
				"and circuit state are silently lost; handle the error or suppress with a reasoned //cad3:allow",
		})
	}
	ast.Inspect(file, func(n ast.Node) bool {
		switch x := n.(type) {
		case *ast.ExprStmt:
			if call, ok := x.X.(*ast.CallExpr); ok && isClientRoundTrip(pkg, call) {
				report(call)
			}
		case *ast.AssignStmt:
			if len(x.Rhs) != 1 {
				return true
			}
			call, ok := x.Rhs[0].(*ast.CallExpr)
			if !ok || !isClientRoundTrip(pkg, call) {
				return true
			}
			// The error is the last result; a blank in that slot drops it.
			if last, ok := x.Lhs[len(x.Lhs)-1].(*ast.Ident); ok && last.Name == "_" {
				report(call)
			}
		}
		return true
	})
}

// isClientRoundTrip reports whether the call is a broker client method
// (receiver type declared in the stream package) returning an error.
func isClientRoundTrip(pkg *Package, call *ast.CallExpr) bool {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok || !clientCallNames[sel.Sel.Name] {
		return false
	}
	t := pkg.Info.Types[sel.X].Type
	if t == nil {
		return false
	}
	name := typeName(t)
	dot := strings.LastIndexByte(name, '.')
	if dot < 0 || pkgBase(name[:dot]) != "stream" {
		return false
	}
	sig, ok := pkg.Info.Types[call.Fun].Type.(*types.Signature)
	if !ok || sig.Results().Len() == 0 {
		return false
	}
	return isErrorType(sig.Results().At(sig.Results().Len() - 1).Type())
}
