package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"
)

// AtomicMix reports variables that live under two synchronization
// regimes at once: updated through the function-style sync/atomic API
// (atomic.AddInt64(&x.f, ...)) in one place and read or written as a
// plain variable somewhere else. The atomic half promises lock-free
// readers a coherent value; the plain half tears that promise — the
// race detector only catches it when both sides happen to run in the
// same test. Pick one regime per variable: all-atomic (prefer the typed
// atomic.Int64 wrappers, which make mixing a compile error) or
// all-mutex.
var AtomicMix = &Analyzer{
	Name:   "atomicmix",
	Doc:    "a variable is either atomic everywhere or lock-guarded everywhere, never both",
	RunPkg: runAtomicMix,
}

// atomicMixPkgs are the packages with lock-free fast paths (matched on
// the final import-path element).
var atomicMixPkgs = map[string]bool{
	"stream": true, "flow": true, "obsv": true, "city": true,
}

func runAtomicMix(prog *Program, pkg *Package) []Finding {
	if !atomicMixPkgs[pkgBase(pkg.Path)] {
		return nil
	}
	type access struct {
		pos  token.Pos
		expr string
	}
	atomicUse := map[types.Object]access{} // first atomic use per variable
	plainUse := map[types.Object][]access{}
	inAtomicArg := map[ast.Node]bool{} // selector/ident nodes consumed by an atomic call

	// Pass 1: find sync/atomic calls and record the variables they target.
	for _, file := range pkg.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			sel, ok := call.Fun.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			id, ok := sel.X.(*ast.Ident)
			if !ok {
				return true
			}
			pn, ok := pkg.Info.Uses[id].(*types.PkgName)
			if !ok || pn.Imported().Path() != "sync/atomic" {
				return true
			}
			for _, arg := range call.Args {
				un, ok := arg.(*ast.UnaryExpr)
				if !ok || un.Op != token.AND {
					continue
				}
				obj, node := resolveVar(pkg, un.X)
				if obj == nil {
					continue
				}
				inAtomicArg[node] = true
				if _, seen := atomicUse[obj]; !seen {
					atomicUse[obj] = access{pos: un.Pos(), expr: exprKey(un.X)}
				}
			}
			return true
		})
	}
	if len(atomicUse) == 0 {
		return nil
	}

	// Pass 2: every other access to those variables is a plain access.
	for _, file := range pkg.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			if inAtomicArg[n] {
				return false
			}
			var obj types.Object
			switch x := n.(type) {
			case *ast.SelectorExpr:
				if inAtomicArg[x] {
					return false
				}
				if v, ok := pkg.Info.Uses[x.Sel].(*types.Var); ok {
					obj = v
				}
			case *ast.Ident:
				if v, ok := pkg.Info.Uses[x].(*types.Var); ok {
					obj = v
				}
			default:
				return true
			}
			if obj == nil {
				return true
			}
			if _, isAtomic := atomicUse[obj]; isAtomic {
				plainUse[obj] = append(plainUse[obj], access{pos: n.Pos(), expr: obj.Name()})
			}
			if _, ok := n.(*ast.SelectorExpr); ok {
				return false // don't double-count the Sel ident
			}
			return true
		})
	}

	var objs []types.Object
	for obj := range plainUse {
		objs = append(objs, obj)
	}
	sort.Slice(objs, func(i, j int) bool { return objs[i].Pos() < objs[j].Pos() })

	var out []Finding
	for _, obj := range objs {
		a := atomicUse[obj]
		for _, p := range plainUse[obj] {
			out = append(out, Finding{
				Pos:      prog.Fset.Position(p.pos),
				Analyzer: "atomicmix",
				Message: obj.Name() + " is accessed non-atomically here but updated via sync/atomic at " +
					prog.Fset.Position(a.pos).String() + "; use one regime (typed atomics or a mutex), not both",
			})
		}
	}
	return out
}

// resolveVar maps &x.f or &x to the variable object it addresses and
// the AST node carrying the reference.
func resolveVar(pkg *Package, e ast.Expr) (types.Object, ast.Node) {
	switch x := e.(type) {
	case *ast.SelectorExpr:
		if v, ok := pkg.Info.Uses[x.Sel].(*types.Var); ok {
			return v, x
		}
	case *ast.Ident:
		if v, ok := pkg.Info.Uses[x].(*types.Var); ok {
			return v, x
		}
	case *ast.ParenExpr:
		return resolveVar(pkg, x.X)
	case *ast.IndexExpr:
		return resolveVar(pkg, x.X)
	}
	return nil, nil
}
