package lint

import (
	"testing"
	"time"
)

// BenchmarkRepoVet measures one full cad3-vet pass — load (parallel
// parse + wave type-check) plus the whole analyzer suite, no result
// cache — over the real module.
func BenchmarkRepoVet(b *testing.B) {
	root, module, err := FindModuleRoot(".")
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		prog, lerr := NewLoader(root, module).LoadRepo()
		if lerr != nil {
			b.Fatal(lerr)
		}
		Run(prog, Analyzers())
	}
}

// TestRepoVetUnderBudget pins the full uncached vet pass to the wall-
// clock budget the workflow depends on (~10s target; asserted at 3x to
// absorb slow CI machines). If this fails, the loader's parallelism or
// an analyzer's complexity regressed — see BenchmarkRepoVet to profile.
func TestRepoVetUnderBudget(t *testing.T) {
	if testing.Short() {
		t.Skip("full-module vet is not a -short test")
	}
	root, module, err := FindModuleRoot(".")
	if err != nil {
		t.Fatal(err)
	}
	start := time.Now()
	prog, err := NewLoader(root, module).LoadRepo()
	if err != nil {
		t.Fatal(err)
	}
	Run(prog, Analyzers())
	elapsed := time.Since(start)
	t.Logf("full-repo vet (uncached): %v", elapsed)
	if elapsed > 30*time.Second {
		t.Fatalf("full-repo vet took %v, budget is 30s (target ~10s)", elapsed)
	}
}
