package lint

import (
	"go/ast"
	"go/types"
	"strings"
)

// GoroutineHygiene forbids fire-and-forget goroutines in the packages
// that run for the process's lifetime (the broker/TCP substrate, the RSU
// node and supervisor, the flow controllers). A goroutine there must be
// stoppable and awaitable: tied to a context, a stop/done channel, or a
// sync.WaitGroup the owner waits on. A bare `go func` in these packages
// is how shutdown leaks connections and tests leak background work.
var GoroutineHygiene = &Analyzer{
	Name:   "goroutinehygiene",
	Doc:    "long-running packages must not spawn goroutines without lifecycle control",
	RunPkg: runGoroutineHygiene,
}

// goroutinePkgs are the long-running packages (matched on the final
// import-path element).
var goroutinePkgs = map[string]bool{
	"stream": true,
	"rsu":    true,
	"flow":   true,
}

// stopChanNames are identifier names treated as stop-channel evidence.
var stopChanNames = map[string]bool{
	"stop": true, "done": true, "quit": true, "closed": true,
	"closing": true, "shutdown": true, "stopCh": true, "doneCh": true,
}

func runGoroutineHygiene(prog *Program, pkg *Package) []Finding {
	var out []Finding
	if !goroutinePkgs[pkgBase(pkg.Path)] {
		return nil
	}
	for _, file := range pkg.Files {
		// Track the enclosing function body for each go statement so
		// named-function spawns can look for a surrounding WaitGroup.
		var stack []ast.Node
		ast.Inspect(file, func(n ast.Node) bool {
			if n == nil {
				stack = stack[:len(stack)-1]
				return true
			}
			stack = append(stack, n)
			g, ok := n.(*ast.GoStmt)
			if !ok {
				return true
			}
			if goHasLifecycle(pkg, g, stack) {
				return true
			}
			out = append(out, Finding{
				Pos:      prog.Fset.Position(g.Pos()),
				Analyzer: "goroutinehygiene",
				Message: "goroutine in long-running package " + strings.Trim(pkgBase(pkg.Path), "/") +
					" has no lifecycle control; tie it to a context, stop channel, or sync.WaitGroup",
			})
			return true
		})
	}
	return out
}

// goHasLifecycle reports whether the spawned goroutine is controllable:
// its body (for func literals) references a context, a stop channel, or
// a WaitGroup Done; or, for named functions/methods, the enclosing
// function registers it with a WaitGroup Add or hands it a context.
func goHasLifecycle(pkg *Package, g *ast.GoStmt, stack []ast.Node) bool {
	if lit, ok := g.Call.Fun.(*ast.FuncLit); ok {
		if nodeHasLifecycleEvidence(pkg, lit.Body) {
			return true
		}
		// A literal body with no evidence may still be registered by the
		// enclosing function (wg.Add before `go`).
	}
	// A named function or method declared in this package (e.g. a
	// client's reader goroutine `go c.readLoop()`): resolve the
	// declaration and accept it only if its body carries the evidence —
	// a stop channel, context, or WaitGroup it answers to.
	if decl := resolveSpawnedDecl(pkg, g.Call.Fun); decl != nil && decl.Body != nil {
		if nodeHasLifecycleEvidence(pkg, decl.Body) {
			return true
		}
	}
	// Context handed to the spawned call directly?
	for _, arg := range g.Call.Args {
		if exprIsContext(pkg, arg) {
			return true
		}
	}
	// Enclosing function registers the goroutine with a WaitGroup?
	for i := len(stack) - 1; i >= 0; i-- {
		var body *ast.BlockStmt
		switch fn := stack[i].(type) {
		case *ast.FuncDecl:
			body = fn.Body
		case *ast.FuncLit:
			body = fn.Body
		}
		if body == nil {
			continue
		}
		if blockCallsWaitGroupAdd(pkg, body) {
			return true
		}
		break // only the nearest enclosing function counts
	}
	return false
}

// resolveSpawnedDecl maps a spawned named function or method back to its
// declaration in the same package (cross-package spawns resolve to nil —
// their hygiene is the defining package's concern).
func resolveSpawnedDecl(pkg *Package, fun ast.Expr) *ast.FuncDecl {
	var id *ast.Ident
	switch x := fun.(type) {
	case *ast.Ident:
		id = x
	case *ast.SelectorExpr:
		id = x.Sel
	default:
		return nil
	}
	obj, ok := pkg.Info.Uses[id].(*types.Func)
	if !ok {
		return nil
	}
	pos := obj.Pos()
	for _, f := range pkg.Files {
		for _, d := range f.Decls {
			if fd, ok := d.(*ast.FuncDecl); ok && fd.Name.Pos() == pos {
				return fd
			}
		}
	}
	return nil
}

// nodeHasLifecycleEvidence looks for ctx/stop-channel/WaitGroup use
// anywhere in the node.
func nodeHasLifecycleEvidence(pkg *Package, node ast.Node) bool {
	found := false
	ast.Inspect(node, func(n ast.Node) bool {
		if found {
			return false
		}
		switch x := n.(type) {
		case *ast.Ident:
			if stopChanNames[x.Name] || exprIsContext(pkg, x) {
				found = true
			}
		case *ast.SelectorExpr:
			if x.Sel.Name == "Done" || x.Sel.Name == "Wait" {
				found = true
			}
			if stopChanNames[x.Sel.Name] {
				found = true
			}
		}
		return !found
	})
	return found
}

// blockCallsWaitGroupAdd reports whether the block calls Add on a
// sync.WaitGroup (the canonical "registered before spawn" shape).
func blockCallsWaitGroupAdd(pkg *Package, body *ast.BlockStmt) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		if found {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		sel, ok := call.Fun.(*ast.SelectorExpr)
		if !ok || sel.Sel.Name != "Add" {
			return true
		}
		if t := pkg.Info.Types[sel.X].Type; t != nil {
			if named := typeName(t); named == "sync.WaitGroup" {
				found = true
				return false
			}
			// Without full type info, accept any x.Add(...) whose receiver
			// name suggests a WaitGroup.
		}
		if id, ok := sel.X.(*ast.Ident); ok && strings.Contains(strings.ToLower(id.Name), "wg") {
			found = true
		}
		if inner, ok := sel.X.(*ast.SelectorExpr); ok && strings.Contains(strings.ToLower(inner.Sel.Name), "wg") {
			found = true
		}
		return !found
	})
	return found
}

// exprIsContext reports whether the expression's static type is
// context.Context.
func exprIsContext(pkg *Package, e ast.Expr) bool {
	t := pkg.Info.Types[e].Type
	if t == nil {
		if id, ok := e.(*ast.Ident); ok {
			return id.Name == "ctx"
		}
		return false
	}
	return typeName(t) == "context.Context"
}

// typeName renders a (possibly pointer) named type as "pkg.Name".
func typeName(t types.Type) string {
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	n, ok := t.(*types.Named)
	if !ok {
		return ""
	}
	obj := n.Obj()
	if obj.Pkg() == nil {
		return obj.Name()
	}
	return obj.Pkg().Path() + "." + obj.Name()
}
