package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"path/filepath"
	"strconv"
	"strings"
)

// DetOrder forbids runtime-randomized orders in determinism-critical
// code. The scenario engine's transcripts, the city driver's settlement
// ledger, and the replicated broker's control plane are byte-compared
// and replayed across runs; their correctness claims assume that the
// same seed produces the same bytes. Three constructs silently break
// that:
//
//   - ranging over a map: Go randomizes iteration order per run, so any
//     loop whose effects are not order-insensitive diverges between
//     replays;
//   - a select with two or more comm cases: the runtime picks among
//     ready cases pseudo-randomly, racing channels against each other;
//   - the global math/rand functions: they draw from shared process
//     state seeded outside the experiment, so replays cannot pin them.
//
// A map range is accepted when its body is provably order-insensitive:
// commutative accumulation (+=, counters' Inc/Add/Observe, min/max
// tracking guarded by a comparison on the tracked variable, saturating
// boolean flags), rewrites into another map keyed by the loop key, and
// the sorted-key emission idiom (append the keys, sort them after the
// loop, iterate the sorted slice). Everything else reports; genuinely
// order-free sinks the analysis cannot see take a //cad3:allow with the
// reason.
var DetOrder = &Analyzer{
	Name:   "detorder",
	Doc:    "determinism-critical packages must not leak map/select/global-rand ordering",
	RunPkg: runDetOrder,
}

// detOrderPkgs are the fully determinism-critical packages (matched on
// the final import-path element): everything in them feeds a transcript,
// a ledger, or a report that replays byte-identically.
var detOrderPkgs = map[string]bool{
	"scenario":    true,
	"city":        true,
	"experiments": true,
}

// detOrderStreamFiles are the replication-path files of internal/stream:
// elections, replica role pushes, snapshot bootstrap, group rebalance
// and cross-shard summary routing all mutate replicated state that must
// converge identically on every node and every replay.
var detOrderStreamFiles = map[string]bool{
	"replication.go": true,
	"replicaset.go":  true,
	"group.go":       true,
	"snapshot.go":    true,
	"router.go":      true,
}

// detOrderInScope reports whether a file participates in the analysis.
func detOrderInScope(pkg *Package, file *ast.File, fset *token.FileSet) bool {
	base := pkgBase(pkg.Path)
	if detOrderPkgs[base] {
		return true
	}
	if base == "stream" {
		name := filepath.Base(fset.Position(file.Pos()).Filename)
		return detOrderStreamFiles[name]
	}
	return false
}

// commutativeCallNames are method names whose calls are accepted inside
// a map-range body: metric handles and accumulators whose aggregate
// result does not depend on call order.
var commutativeCallNames = map[string]bool{
	"Inc": true, "Add": true, "Dec": true, "Observe": true,
}

func runDetOrder(prog *Program, pkg *Package) []Finding {
	var out []Finding
	for _, file := range pkg.Files {
		if !detOrderInScope(pkg, file, prog.Fset) {
			continue
		}
		// Track enclosing function bodies so the sorted-emission rule can
		// look for a sort call after the loop.
		var fnStack []ast.Node
		ast.Inspect(file, func(n ast.Node) bool {
			if n == nil {
				if len(fnStack) > 0 {
					fnStack = fnStack[:len(fnStack)-1]
				}
				return true
			}
			switch x := n.(type) {
			case *ast.FuncDecl, *ast.FuncLit:
				fnStack = append(fnStack, n)
				return true
			case *ast.RangeStmt:
				fnStack = append(fnStack, n) // keep push/pop balanced
				t := pkg.Info.Types[x.X].Type
				if t == nil {
					return true
				}
				if _, isMap := t.Underlying().(*types.Map); !isMap {
					return true
				}
				c := &detOrderChecker{pkg: pkg}
				c.addLoopVar(x.Key)
				ok, reason, pos := c.stmts(x.Body.List)
				if ok && len(c.appendTargets) > 0 {
					ok, reason, pos = c.checkSortedEmission(x, enclosingFuncBody(fnStack))
				}
				if !ok {
					if pos == token.NoPos {
						pos = x.Pos()
					}
					out = append(out, Finding{
						Pos:      prog.Fset.Position(pos),
						Analyzer: "detorder",
						Message: "map iteration order is randomized per run and this loop is order-dependent (" +
							reason + ") in determinism-critical package " + strconv.Quote(pkgBase(pkg.Path)) +
							"; sort the keys first or make the body commutative",
					})
				}
				return true
			case *ast.SelectStmt:
				fnStack = append(fnStack, n)
				ready := 0
				for _, cl := range x.Body.List {
					if cc, ok := cl.(*ast.CommClause); ok && cc.Comm != nil {
						ready++
					}
				}
				if ready >= 2 {
					out = append(out, Finding{
						Pos:      prog.Fset.Position(x.Pos()),
						Analyzer: "detorder",
						Message: fmt.Sprintf("select with %d comm cases races channels — the runtime picks among ready cases "+
							"pseudo-randomly; determinism-critical code must drain one channel at a time", ready),
					})
				}
				return true
			case *ast.SelectorExpr:
				fnStack = append(fnStack, n)
				if name, bad := globalRandUse(pkg, x); bad {
					out = append(out, Finding{
						Pos:      prog.Fset.Position(x.Pos()),
						Analyzer: "detorder",
						Message: "global math/rand." + name + " draws from shared process-wide state seeded outside the " +
							"experiment; thread a seeded *rand.Rand through the config instead",
					})
				}
				return true
			default:
				fnStack = append(fnStack, n)
				return true
			}
		})
	}
	return out
}

// enclosingFuncBody returns the innermost function body on the stack
// (excluding the node just pushed).
func enclosingFuncBody(stack []ast.Node) *ast.BlockStmt {
	for i := len(stack) - 2; i >= 0; i-- {
		switch fn := stack[i].(type) {
		case *ast.FuncDecl:
			return fn.Body
		case *ast.FuncLit:
			return fn.Body
		}
	}
	return nil
}

// globalRandUse reports a reference to a global math/rand function.
// The explicit constructors (New, NewSource, NewZipf) are the approved
// seeded path and pass.
func globalRandUse(pkg *Package, sel *ast.SelectorExpr) (string, bool) {
	id, ok := sel.X.(*ast.Ident)
	if !ok {
		return "", false
	}
	pn, ok := pkg.Info.Uses[id].(*types.PkgName)
	if !ok {
		return "", false
	}
	path := pn.Imported().Path()
	if path != "math/rand" && path != "math/rand/v2" {
		return "", false
	}
	// Only function references touch the global generator; type
	// references (*rand.Rand fields and params) are the seeded idiom.
	if _, isFunc := pkg.Info.Uses[sel.Sel].(*types.Func); !isFunc {
		return "", false
	}
	switch sel.Sel.Name {
	case "New", "NewSource", "NewZipf", "NewPCG", "NewChaCha8":
		return "", false
	}
	return sel.Sel.Name, true
}

// detOrderChecker decides whether a map-range body is order-insensitive.
type detOrderChecker struct {
	pkg *Package
	// loopKeys are the key objects of the map ranges in scope: an index
	// write m2[k] keyed by one of them is a permutation, not an order.
	loopKeys map[types.Object]bool
	// conds are the if/switch conditions enclosing the current statement;
	// an assignment to a variable read by one of them is min/max/first
	// tracking (guarded update), which is order-insensitive for the
	// extremum the guard computes.
	conds []ast.Expr
	// appendTargets are outer slices appended to inside the loop; they
	// are only legal under the sorted-emission idiom, checked after the
	// body scan.
	appendTargets map[types.Object]bool
}

func (c *detOrderChecker) addLoopVar(e ast.Expr) {
	if c.loopKeys == nil {
		c.loopKeys = map[types.Object]bool{}
	}
	if id, ok := e.(*ast.Ident); ok && id.Name != "_" {
		if o := c.pkg.Info.Defs[id]; o != nil {
			c.loopKeys[o] = true
		}
	}
}

// stmts checks a statement list; the first order-dependent construct
// stops the scan.
func (c *detOrderChecker) stmts(list []ast.Stmt) (bool, string, token.Pos) {
	for _, s := range list {
		if ok, reason, pos := c.stmt(s); !ok {
			return false, reason, pos
		}
	}
	return true, "", token.NoPos
}

func (c *detOrderChecker) stmt(s ast.Stmt) (bool, string, token.Pos) {
	switch x := s.(type) {
	case *ast.ExprStmt:
		return c.exprStmt(x)
	case *ast.IncDecStmt:
		return true, "", token.NoPos
	case *ast.AssignStmt:
		return c.assign(x)
	case *ast.DeclStmt:
		return true, "", token.NoPos
	case *ast.IfStmt:
		c.conds = append(c.conds, x.Cond)
		defer func() { c.conds = c.conds[:len(c.conds)-1] }()
		if x.Init != nil {
			if ok, reason, pos := c.stmt(x.Init); !ok {
				return false, reason, pos
			}
		}
		if ok, reason, pos := c.stmts(x.Body.List); !ok {
			return false, reason, pos
		}
		switch e := x.Else.(type) {
		case *ast.BlockStmt:
			return c.stmts(e.List)
		case *ast.IfStmt:
			return c.stmt(e)
		}
		return true, "", token.NoPos
	case *ast.ForStmt:
		if x.Cond != nil {
			c.conds = append(c.conds, x.Cond)
			defer func() { c.conds = c.conds[:len(c.conds)-1] }()
		}
		return c.stmts(x.Body.List)
	case *ast.RangeStmt:
		// A nested range: over a map, its key joins the keyed-write set
		// (permutation composition); over a slice it is just a loop.
		if t := c.pkg.Info.Types[x.X].Type; t != nil {
			if _, isMap := t.Underlying().(*types.Map); isMap {
				c.addLoopVar(x.Key)
			}
		}
		return c.stmts(x.Body.List)
	case *ast.SwitchStmt:
		for _, cl := range x.Body.List {
			cc, ok := cl.(*ast.CaseClause)
			if !ok {
				continue
			}
			for _, e := range cc.List {
				c.conds = append(c.conds, e)
			}
			okB, reason, pos := c.stmts(cc.Body)
			c.conds = c.conds[:len(c.conds)-len(cc.List)]
			if !okB {
				return false, reason, pos
			}
		}
		return true, "", token.NoPos
	case *ast.TypeSwitchStmt:
		for _, cl := range x.Body.List {
			if cc, ok := cl.(*ast.CaseClause); ok {
				if okB, reason, pos := c.stmts(cc.Body); !okB {
					return false, reason, pos
				}
			}
		}
		return true, "", token.NoPos
	case *ast.BlockStmt:
		return c.stmts(x.List)
	case *ast.LabeledStmt:
		return c.stmt(x.Stmt)
	case *ast.BranchStmt:
		if x.Tok == token.GOTO {
			return false, "jumps out with goto", x.Pos()
		}
		return true, "", token.NoPos // continue/break: captures are caught by the assignment rules
	case *ast.ReturnStmt:
		for _, r := range x.Results {
			if !isConstExpr(c.pkg, r) {
				return false, "returns a value chosen by iteration order", x.Pos()
			}
		}
		return true, "", token.NoPos // returning a constant is the same on every order
	case *ast.SendStmt:
		return false, "sends on a channel in iteration order", x.Pos()
	case *ast.GoStmt:
		return false, "spawns goroutines in iteration order", x.Pos()
	case *ast.DeferStmt:
		return false, "defers calls in iteration order", x.Pos()
	default:
		return false, "contains a construct the analysis cannot prove order-free", s.Pos()
	}
}

func (c *detOrderChecker) exprStmt(x *ast.ExprStmt) (bool, string, token.Pos) {
	call, ok := x.X.(*ast.CallExpr)
	if !ok {
		return false, "evaluates an expression the analysis cannot prove order-free", x.Pos()
	}
	switch fun := call.Fun.(type) {
	case *ast.Ident:
		if fun.Name == "delete" {
			return true, "", token.NoPos // a set of deletions commutes
		}
		if fun.Name == "panic" {
			return false, "panics with an order-chosen element", x.Pos()
		}
	case *ast.SelectorExpr:
		if commutativeCallNames[fun.Sel.Name] {
			return true, "", token.NoPos
		}
	}
	return false, "calls " + callName(call) + " whose effects depend on iteration order", x.Pos()
}

func (c *detOrderChecker) assign(x *ast.AssignStmt) (bool, string, token.Pos) {
	switch x.Tok {
	case token.ADD_ASSIGN, token.SUB_ASSIGN, token.MUL_ASSIGN,
		token.OR_ASSIGN, token.AND_ASSIGN, token.XOR_ASSIGN:
		return true, "", token.NoPos // commutative accumulation
	case token.SHL_ASSIGN, token.SHR_ASSIGN, token.QUO_ASSIGN, token.REM_ASSIGN, token.AND_NOT_ASSIGN:
		return false, "accumulates with a non-commutative operator", x.Pos()
	}
	for i, lhs := range x.Lhs {
		if x.Tok == token.DEFINE {
			if id, ok := lhs.(*ast.Ident); ok {
				if o := c.pkg.Info.Defs[id]; o != nil || id.Name == "_" {
					continue // fresh per-iteration variable
				}
			}
		}
		if ok, reason := c.assignTarget(lhs, rhsFor(x, i)); !ok {
			return false, reason, x.Pos()
		}
	}
	return true, "", token.NoPos
}

// rhsFor returns the RHS paired with LHS i (nil for the multi-value
// single-call form).
func rhsFor(x *ast.AssignStmt, i int) ast.Expr {
	if len(x.Rhs) == len(x.Lhs) {
		return x.Rhs[i]
	}
	return nil
}

// assignTarget decides whether one plain-assignment target is
// order-insensitive.
func (c *detOrderChecker) assignTarget(lhs, rhs ast.Expr) (bool, string) {
	switch t := lhs.(type) {
	case *ast.Ident:
		if t.Name == "_" {
			return true, ""
		}
		// s = append(s, ...): candidate sorted-key emission, resolved
		// after the loop scan.
		if call, ok := rhs.(*ast.CallExpr); ok && calleeName(call) == "append" {
			if o := c.objOf(t); o != nil {
				if c.appendTargets == nil {
					c.appendTargets = map[types.Object]bool{}
				}
				c.appendTargets[o] = true
				return true, ""
			}
		}
		// Saturating flag: x = true / x = 0 — same result on any order.
		if rhs != nil && isConstExpr(c.pkg, rhs) {
			return true, ""
		}
		// Guarded extremum: the variable is read by an enclosing
		// condition inside the loop (min/max/first-seen tracking).
		if o := c.objOf(t); o != nil && c.condsMention(o) {
			return true, ""
		}
		return false, "assigns " + t.Name + " a value chosen by iteration order"
	case *ast.IndexExpr:
		// m2[k] = v keyed by the loop key is a permutation of the same
		// writes; any other index depends on the visit order.
		if id, ok := t.Index.(*ast.Ident); ok {
			if o := c.pkg.Info.Uses[id]; o != nil && c.loopKeys[o] {
				return true, ""
			}
		}
		return false, "writes an index not keyed by the loop key"
	default:
		return false, "assigns through a non-local target"
	}
}

func (c *detOrderChecker) objOf(id *ast.Ident) types.Object {
	if o := c.pkg.Info.Uses[id]; o != nil {
		return o
	}
	return c.pkg.Info.Defs[id]
}

// condsMention reports whether any enclosing condition reads the object.
func (c *detOrderChecker) condsMention(o types.Object) bool {
	for _, cond := range c.conds {
		found := false
		ast.Inspect(cond, func(n ast.Node) bool {
			if id, ok := n.(*ast.Ident); ok && c.pkg.Info.Uses[id] == o {
				found = true
			}
			return !found
		})
		if found {
			return true
		}
	}
	return false
}

// checkSortedEmission validates the append-then-sort idiom: every slice
// appended to inside the loop must be passed to a sort call after the
// loop in the same function.
func (c *detOrderChecker) checkSortedEmission(rng *ast.RangeStmt, fnBody *ast.BlockStmt) (bool, string, token.Pos) {
	if fnBody == nil {
		return false, "keys are emitted into a slice the analysis cannot see sorted", rng.Pos()
	}
	for target := range c.appendTargets {
		if !sortedAfter(c.pkg, fnBody, rng.End(), target) {
			return false, "keys are appended to " + target.Name() + " but never sorted after the loop", rng.Pos()
		}
	}
	return true, "", token.NoPos
}

// sortCallNames are the sort entry points accepted by the
// sorted-emission rule, per qualifying package.
var sortCallNames = map[string]map[string]bool{
	"sort": {
		"Strings": true, "Ints": true, "Float64s": true,
		"Slice": true, "SliceStable": true, "Sort": true, "Stable": true,
	},
	"slices": {
		"Sort": true, "SortFunc": true, "SortStableFunc": true,
	},
}

// sortedAfter reports whether the function body contains a sort call on
// the target object positioned after the loop.
func sortedAfter(pkg *Package, body *ast.BlockStmt, after token.Pos, target types.Object) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		if found {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok || call.Pos() < after || len(call.Args) == 0 {
			return true
		}
		switch fun := call.Fun.(type) {
		case *ast.SelectorExpr:
			pkgID, ok := fun.X.(*ast.Ident)
			if !ok {
				return true
			}
			names := sortCallNames[pkgID.Name]
			if names == nil || !names[fun.Sel.Name] {
				return true
			}
		case *ast.Ident:
			// A local sort helper (sortCalls(revokes), sortKeys(ids), ...):
			// accept by name — the helper's own body is ordinary code the
			// analyzer checks elsewhere.
			if !strings.Contains(strings.ToLower(fun.Name), "sort") {
				return true
			}
		default:
			return true
		}
		if id, ok := call.Args[0].(*ast.Ident); ok && pkg.Info.Uses[id] == target {
			found = true
		}
		return !found
	})
	return found
}

// isConstExpr reports whether the expression is a compile-time constant
// (or nil), so its value cannot depend on iteration order.
func isConstExpr(pkg *Package, e ast.Expr) bool {
	tv, ok := pkg.Info.Types[e]
	if !ok {
		return false
	}
	return tv.Value != nil || tv.IsNil()
}

// callName renders a call's target for messages.
func callName(call *ast.CallExpr) string {
	switch fun := call.Fun.(type) {
	case *ast.Ident:
		return fun.Name
	case *ast.SelectorExpr:
		if id, ok := fun.X.(*ast.Ident); ok {
			return id.Name + "." + fun.Sel.Name
		}
		return fun.Sel.Name
	}
	return "a function"
}
