// Named-function spawn fixtures for the goroutinehygiene analyzer:
// the declaration of a spawned method is resolved and scanned for
// lifecycle evidence.
package stream

// StartReader spawns a named method whose own body waits on the stop
// channel (the pipelined client's reader-goroutine shape): legal.
func (s *Server) StartReader() {
	go s.readLoop()
}

func (s *Server) readLoop() {
	<-s.stop
}

// LeakMethod spawns a named method with no lifecycle evidence anywhere
// in its body: leak.
func (s *Server) LeakMethod(events chan int) {
	go s.drainAll(events) // want "no lifecycle control"
}

func (s *Server) drainAll(events chan int) {
	for range events {
	}
}
