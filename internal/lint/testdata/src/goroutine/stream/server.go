// Package stream is a golden fixture: its name puts it in the
// goroutinehygiene analyzer's long-running set. It spawns goroutines
// under every accepted lifecycle discipline plus two seeded leaks.
package stream

import (
	"context"
	"sync"
)

// Server is a miniature stand-in for the real broker.
type Server struct {
	wg   sync.WaitGroup
	stop chan struct{}
}

// StartGuarded registers the goroutine with a WaitGroup: legal.
func (s *Server) StartGuarded() {
	s.wg.Add(1)
	go func() {
		defer s.wg.Done()
	}()
}

// StartStoppable ties the goroutine to a stop channel: legal.
func (s *Server) StartStoppable() {
	go func() {
		<-s.stop
	}()
}

// StartWithContext hands the spawned call a context: legal.
func (s *Server) StartWithContext(ctx context.Context) {
	go s.pump(ctx)
}

func (s *Server) pump(ctx context.Context) { <-ctx.Done() }

// StartLeak is a fire-and-forget literal: nothing can stop it.
func (s *Server) StartLeak(events chan int) {
	go func() { // want "no lifecycle control"
		for range events {
		}
	}()
}

// LeakNamed spawns a named function with no registration: leak.
func LeakNamed(events chan int) {
	go drain(events) // want "no lifecycle control"
}

func drain(events chan int) {
	for range events {
	}
}
