// Ticker-goroutine fixtures: the replication controller's wall-clock
// tick loop is the canonical shape — a named method handed stop/done
// channels whose body selects on them. A ticker loop without that
// evidence is a leak even though it "only wakes up periodically".
package stream

import "time"

// StartTicker spawns the controller tick loop with stop/done channels:
// legal (the spawned body waits on stop and closes done).
func (s *Server) StartTicker(interval time.Duration) {
	stop := make(chan struct{})
	done := make(chan struct{})
	go s.tickLoop(interval, stop, done)
}

func (s *Server) tickLoop(interval time.Duration, stop, done chan struct{}) {
	defer close(done)
	t := time.NewTicker(interval)
	defer t.Stop()
	for {
		select {
		case <-stop:
			return
		case <-t.C:
		}
	}
}

// StartFreeTicker spawns a ticker loop nothing can cancel: leak.
func (s *Server) StartFreeTicker(interval time.Duration) {
	go s.freeTickLoop(interval) // want "no lifecycle control"
}

func (s *Server) freeTickLoop(interval time.Duration) {
	t := time.NewTicker(interval)
	for range t.C {
	}
}
