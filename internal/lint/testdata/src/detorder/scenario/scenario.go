// Package scenario is a golden fixture for detorder: a miniature
// transcript recorder exercising every order-insensitivity rule — the
// legal idioms (commutative accumulation, sorted-key emission, keyed
// permutation, guarded extrema, seeded rand) and the three leaks the
// analyzer exists to catch (order-dependent map ranges, multi-ready
// selects, the global math/rand state).
package scenario

import (
	"math/rand"
	"sort"
)

// Transcript is a stand-in for the replayed scenario transcript.
type Transcript struct {
	counts map[string]int
	lines  []string
}

// Total is commutative accumulation: any visit order sums the same.
func (t *Transcript) Total() int {
	sum := 0
	for _, n := range t.counts {
		sum += n
	}
	return sum
}

// Emit uses the sorted-key idiom: append the keys, sort after the loop.
func (t *Transcript) Emit() []string {
	var keys []string
	for k := range t.counts {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// Mirror rewrites into a map keyed by the loop key — a permutation of
// the same writes, not an order.
func (t *Transcript) Mirror() map[string]int {
	m := make(map[string]int, len(t.counts))
	for k, v := range t.counts {
		m[k] = v
	}
	return m
}

// Max tracks a guarded extremum: the comparison on best makes the
// assignment order-insensitive.
func (t *Transcript) Max() int {
	best := 0
	for _, n := range t.counts {
		if n > best {
			best = n
		}
	}
	return best
}

// AppendAll leaks map order straight into a struct field: writes through
// a non-local target cannot be proven order-free.
func (t *Transcript) AppendAll() {
	for k := range t.counts {
		t.lines = append(t.lines, k) // want "assigns through a non-local target"
	}
}

// Keys collects into a local slice but never sorts it, so the emission
// order is the runtime's visit order.
func (t *Transcript) Keys() []string {
	var keys []string
	for k := range t.counts { // want "appended to keys but never sorted after the loop"
		keys = append(keys, k)
	}
	return keys
}

// First returns whichever key the runtime happens to visit first.
func (t *Transcript) First() string {
	for k := range t.counts {
		return k // want "returns a value chosen by iteration order"
	}
	return ""
}

// Race drains two channels through a multi-ready select: the runtime
// picks among ready cases pseudo-randomly.
func (t *Transcript) Race(a, b chan string) string {
	select { // want "select with 2 comm cases races channels"
	case s := <-a:
		return s
	case s := <-b:
		return s
	}
}

// Drain is a single-comm select with a default: no race to pick.
func (t *Transcript) Drain(a chan string) string {
	select {
	case s := <-a:
		return s
	default:
		return ""
	}
}

// Jitter draws from the process-global generator, seeded outside the
// experiment.
func (t *Transcript) Jitter() int {
	return rand.Intn(10) // want "global math/rand.Intn"
}

// Seeded threads a seeded *rand.Rand through — the approved path.
func (t *Transcript) Seeded(r *rand.Rand) int {
	return r.Intn(10)
}
