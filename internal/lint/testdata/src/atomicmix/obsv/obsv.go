// Package obsv is a golden fixture for atomicmix: one counter updated
// through sync/atomic and then touched as a plain variable (the tear),
// next to an all-atomic counter and an all-mutex field that are each
// under exactly one regime and must not be flagged.
package obsv

import (
	"sync"
	"sync/atomic"
)

// Gauge mixes three synchronization regimes across its fields.
type Gauge struct {
	mu     sync.Mutex
	hits   int64
	misses int64
	level  int64
}

// Inc is the atomic half of hits.
func (g *Gauge) Inc() {
	atomic.AddInt64(&g.hits, 1)
}

// Read tears the promise: lock-free readers of hits can observe a torn
// or stale value once a plain access exists.
func (g *Gauge) Read() int64 {
	return g.hits // want "hits is accessed non-atomically here"
}

// Reset is the same tear on the write side.
func (g *Gauge) Reset() {
	g.hits = 0 // want "hits is accessed non-atomically here"
}

// Misses is all-atomic — one regime, no finding.
func (g *Gauge) Misses() int64 {
	return atomic.LoadInt64(&g.misses)
}

// Miss is the matching all-atomic update.
func (g *Gauge) Miss() {
	atomic.AddInt64(&g.misses, 1)
}

// Level is all-mutex — one regime, no finding.
func (g *Gauge) Level() int64 {
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.level
}

// SetLevel is the matching all-mutex update.
func (g *Gauge) SetLevel(v int64) {
	g.mu.Lock()
	g.level = v
	g.mu.Unlock()
}
