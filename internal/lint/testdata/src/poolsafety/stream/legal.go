package stream

// The patterns here are all legal; any finding in this file is a false
// positive and fails the golden test.

// pollLoop is the canonical consumer: poll, recycle, re-arm with a
// zero-length reslice.
func pollLoop(msgs []Message) {
	for i := 0; i < 3; i++ {
		msgs = append(msgs, Message{})
		RecycleMessages(msgs)
		msgs = msgs[:0]
	}
}

// rangeRecycle hands each element back; the loop variable rebinds every
// iteration, so no double-recycle.
func rangeRecycle(bufs [][]byte) {
	for _, b := range bufs {
		PutPayload(b)
	}
}

// killOrReturn recycles only on the terminating path; the fallthrough
// path still owns the buffer.
func killOrReturn(flag bool, buf []byte) {
	if flag {
		PutPayload(buf)
		return
	}
	buf[0] = 1
}

// reacquire overwrites the dead variable with a fresh lease.
func reacquire() []byte {
	buf := GetPayload()
	PutPayload(buf)
	buf = GetPayload()
	return buf
}

// deferredRecycle pushes the kill into a deferred closure: it runs at
// function exit, not inline, so the body's uses are fine.
func deferredRecycle() {
	buf := GetPayload()
	defer func() { PutPayload(buf) }()
	buf = append(buf, 1)
	_ = buf
}

// headerLen may keep using len/cap after a batch recycle.
func headerLen(msgs []Message) int {
	RecycleMessages(msgs)
	return len(msgs) + cap(msgs)
}
