package stream

// useAfterPut appends into a buffer that already went back to the pool.
func useAfterPut() {
	buf := GetPayload()
	buf = append(buf, 1)
	PutPayload(buf)
	buf = append(buf, 2) // want "use of pooled buffer buf after recycle"
	_ = buf
}

// doubleRecycle hands the same buffer back twice.
func doubleRecycle() {
	buf := GetPayload()
	PutPayload(buf)
	PutPayload(buf) // want "double recycle of buf via PutPayload"
}

// branchKill recycles on one path only; afterwards the buffer is
// maybe-free, so the read reports.
func branchKill(flag bool) {
	buf := GetPayload()
	buf = append(buf, 1)
	if flag {
		PutPayload(buf)
	}
	_ = buf[0] // want "use of pooled buffer buf"
}

// crossIteration kills at the bottom of the loop and reads at the top of
// the next iteration — only the second analysis pass can see it.
func crossIteration(n int) {
	buf := GetPayload()
	for i := 0; i < n; i++ {
		buf = append(buf, byte(i)) // want "use of pooled buffer buf"
		PutPayload(buf)
	}
}

// batchUse touches an element after the batch was recycled; the header
// length stays legal.
func batchUse(msgs []Message) {
	RecycleMessages(msgs)
	_ = len(msgs)       // ok: header still owned
	_ = msgs[0].Payload // want "use of recycled message batch msgs"
}

// doubleBatch recycles the same batch twice.
func doubleBatch(msgs []Message) {
	RecycleMessages(msgs)
	RecycleMessages(msgs) // want "double recycle of msgs via RecycleMessages"
}
