// Package stream is a golden fixture for the poolsafety analyzer: the
// function NAMES (GetPayload, PutPayload, RecycleMessages) carry the
// ownership contract the analyzer enforces, mirroring the real pool.
package stream

// Message pairs a key and a pooled payload, like the real transport's.
type Message struct {
	Key     []byte
	Payload []byte
}

var payloadFree = make(chan []byte, 4)

// GetPayload leases a buffer from the pool.
func GetPayload() []byte {
	select {
	case b := <-payloadFree:
		return b[:0]
	default:
		return make([]byte, 0, 64)
	}
}

// PutPayload returns a buffer to the pool; the caller gives up ownership.
func PutPayload(b []byte) {
	select {
	case payloadFree <- b:
	default:
	}
}

// RecycleMessages returns every element's payload; the slice header
// itself stays with the caller for reuse via msgs[:0].
func RecycleMessages(msgs []Message) {
	for i := range msgs {
		PutPayload(msgs[i].Payload)
		msgs[i].Payload = nil
	}
}
