// Package wire is a golden fixture for the wirelayout analyzer's stream
// protocol checks: the hello codec agrees with helloBodySize, while the
// batch-result codec writes and reads 13 bytes against a seeded
// batchOKResultSize of 12 — drift both sides must report.
package wire

import "encoding/binary"

var be = binary.BigEndian

const (
	helloBodySize     = 12
	batchOKResultSize = 12 // seeded drift: the codec touches 13
)

// putHello writes version, max frame, window: 12 bytes, consistent.
func putHello(b []byte, version, maxFrame, window uint32) {
	be.PutUint32(b[0:], version)
	be.PutUint32(b[4:], maxFrame)
	be.PutUint32(b[8:], window)
}

// readHelloBody reads the same 12 bytes: consistent.
func readHelloBody(b []byte) (version, maxFrame, window uint32) {
	version = be.Uint32(b[0:])
	maxFrame = be.Uint32(b[4:])
	window = be.Uint32(b[8:])
	return
}

// putBatchOK writes status + partition + offset = 13 bytes; the constant
// says 12.
func putBatchOK(b []byte, part int32, off int64) { // want "putBatchOK touches 13 bytes of fixed layout but batchOKResultSize = 12"
	b[0] = 0
	be.PutUint32(b[1:], uint32(part))
	be.PutUint64(b[5:], uint64(off))
}

// readBatchOK reads the same 13 bytes back; same drift.
func readBatchOK(b []byte) (part int32, off int64) { // want "readBatchOK touches 13 bytes of fixed layout but batchOKResultSize = 12"
	part = int32(be.Uint32(b[1:]))
	off = int64(be.Uint64(b[5:]))
	return
}
