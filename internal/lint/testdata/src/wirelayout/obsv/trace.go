// Package obsv is the trace side of the wirelayout fixture. Its blob
// layout is self-consistent, but the mirror constant RecordTraceOffset
// drifted from the codec's 64-byte body, and StampPayload stamps one
// offset PutTrace never writes.
package obsv

import "encoding/binary"

var le = binary.LittleEndian

const (
	// TraceBlobSize is the in-band trace-context blob.
	TraceBlobSize = 50
	// RecordTraceOffset should equal the codec's fixed body size (64).
	RecordTraceOffset = 70 // want "RecordTraceOffset = 70 drifted from"
	// RecordFrameSize mirrors the codec's frame — consistent.
	RecordFrameSize = 200
)

// PutTrace writes the 50-byte blob: magic, flags, six uint64 fields.
func PutTrace(b []byte, t [6]uint64) {
	b[0] = 0xA7
	b[1] = 1
	le.PutUint64(b[2:], t[0])
	le.PutUint64(b[10:], t[1])
	le.PutUint64(b[18:], t[2])
	le.PutUint64(b[26:], t[3])
	le.PutUint64(b[34:], t[4])
	le.PutUint64(b[42:], t[5])
}

// GetTrace reads the same extent back.
func GetTrace(b []byte) (t [6]uint64, ok bool) {
	if b[0] != 0xA7 {
		return t, false
	}
	t[0] = le.Uint64(b[2:])
	t[1] = le.Uint64(b[10:])
	t[2] = le.Uint64(b[18:])
	t[3] = le.Uint64(b[26:])
	t[4] = le.Uint64(b[34:])
	t[5] = le.Uint64(b[42:])
	return t, true
}

// StampPayload rewrites one stage slot in place; offset 20 is not a
// field boundary PutTrace ever writes.
func StampPayload(b []byte, stage int, v uint64) {
	var off int
	switch stage {
	case 0:
		off = 10
	case 1:
		off = 18
	case 2:
		off = 20 // want "StampPayload stamps offset 20, which PutTrace never writes"
	default:
		return
	}
	le.PutUint64(b[off:], v)
}
