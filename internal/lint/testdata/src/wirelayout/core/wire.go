// Package core is a golden fixture for the wirelayout analyzer: the
// encoder writes 72 bytes of fixed layout while recordBodySize still
// says 64 — seeded drift the analyzer must catch. The decoder reads a
// consistent 64 bytes, so only the encoder reports.
package core

import "encoding/binary"

var le = binary.LittleEndian

const (
	recordBodySize = 64
	// RecordWireSize is the padded on-air frame.
	RecordWireSize = 200
)

// Record is a miniature telemetry record.
type Record struct {
	Car, Seq, A, B, C, D, E, F, G uint64
}

// AppendRecord encodes nine fields (72 bytes); the constant says 64.
func AppendRecord(dst []byte, r Record) []byte { // want "AppendRecord touches 72 bytes of fixed layout but recordBodySize = 64"
	dst = append(dst, make([]byte, RecordWireSize)...)
	b := dst[len(dst)-RecordWireSize:]
	le.PutUint64(b[0:], r.Car)
	le.PutUint64(b[8:], r.Seq)
	le.PutUint64(b[16:], r.A)
	le.PutUint64(b[24:], r.B)
	le.PutUint64(b[32:], r.C)
	le.PutUint64(b[40:], r.D)
	le.PutUint64(b[48:], r.E)
	le.PutUint64(b[56:], r.F)
	le.PutUint64(b[64:], r.G)
	return dst
}

// DecodeRecord reads exactly the first 64 bytes — consistent with the
// constant, so no finding here.
func DecodeRecord(b []byte) (r Record) {
	r.Car = le.Uint64(b[0:])
	r.Seq = le.Uint64(b[8:])
	r.A = le.Uint64(b[16:])
	r.B = le.Uint64(b[24:])
	r.C = le.Uint64(b[32:])
	r.D = le.Uint64(b[40:])
	r.E = le.Uint64(b[48:])
	r.F = le.Uint64(b[56:])
	return r
}
