// Package stream is the protocol half of the wireerrexhaustive golden
// fixture: it mirrors the real broker's sentinel surface and carries a
// remoteError decoder that deliberately drifts from the wire table —
// one emitted code it fails to reconstruct (ErrValueTooLarge) and one
// off-table sentinel it reconstructs anyway (ErrGhost).
package stream

import "errors"

// The wire-crossing sentinel surface, mirroring wireCrossingErrors.
var (
	ErrNotLeader      = errors.New("not leader")
	ErrFencedEpoch    = errors.New("fenced epoch")
	ErrOffsetGap      = errors.New("offset gap")
	ErrTopicExists    = errors.New("topic exists")
	ErrUnknownTopic   = errors.New("unknown topic")
	ErrBadPartition   = errors.New("bad partition")
	ErrBrokerClosed   = errors.New("broker closed")
	ErrPartitionDown  = errors.New("partition down")
	ErrValueTooLarge  = errors.New("value too large")
	ErrEmptyTopicName = errors.New("empty topic name")
)

// ErrClientClosed is produced on the client side of the connection and
// never crosses the wire; matching it anywhere is legal.
var ErrClientClosed = errors.New("client closed")

// ErrGhost is reconstructed by the decoder below but absent from the
// analyzer's wire table — check 1b's bait.
var ErrGhost = errors.New("ghost")
