package stream

// Client is the minimal broker round-trip surface; its methods' error
// results carry redirects and retry hints that call sites must not
// drop.
type Client struct{}

// Produce appends one record.
func (c *Client) Produce(topic string, partition int32, key, value []byte) (int32, int64, error) {
	return partition, 0, nil
}

// CreateTopic declares a topic.
func (c *Client) CreateTopic(name string, partitions int) error { return nil }
