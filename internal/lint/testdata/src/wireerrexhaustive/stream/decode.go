package stream

import "golden/flow"

// remoteError reconstructs wire error codes into errors.Is-able
// sentinels. Two seeded defects anchor the decoder checks on the line
// below: the table's ErrValueTooLarge is never reconstructed (check 1a)
// and the off-table ErrGhost is (check 1b).
func remoteError(code string) error { // want "ErrValueTooLarge over the wire but remoteError does not reconstruct it" "reconstructs stream.ErrGhost which is not in the analyzer's wire table"
	switch code {
	case "not_leader":
		return ErrNotLeader
	case "fenced_epoch":
		return ErrFencedEpoch
	case "offset_gap":
		return ErrOffsetGap
	case "topic_exists":
		return ErrTopicExists
	case "unknown_topic":
		return ErrUnknownTopic
	case "bad_partition":
		return ErrBadPartition
	case "broker_closed":
		return ErrBrokerClosed
	case "partition_down":
		return ErrPartitionDown
	case "empty_topic_name":
		return ErrEmptyTopicName
	case "backpressure":
		return flow.ErrBackpressure
	case "ghost":
		return ErrGhost
	}
	return nil
}

// decode keeps remoteError referenced so the fixture compiles the way
// the real client does.
var decode = remoteError
