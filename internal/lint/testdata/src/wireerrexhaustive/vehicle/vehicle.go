// Package vehicle is the client half of the wireerrexhaustive fixture:
// call sites that handle the round trip's error and match decodable
// sentinels (legal), match a sentinel the decoder cannot produce (dead
// comparison), and discard the error outright (lost redirects).
package vehicle

import (
	"errors"

	"golden/stream"
)

// Reporter publishes warnings through a broker client.
type Reporter struct {
	client *stream.Client
}

// Send handles the error and matches live sentinels: ErrNotLeader is
// decoded from the wire, ErrClientClosed is client-local.
func (r *Reporter) Send(v []byte) error {
	_, _, err := r.client.Produce("warnings", 0, nil, v)
	if errors.Is(err, stream.ErrNotLeader) || errors.Is(err, stream.ErrClientClosed) {
		return nil
	}
	return err
}

// SendDead matches a sentinel remoteError never reconstructs, so the
// comparison can never be true against a wire client.
func (r *Reporter) SendDead(v []byte) error {
	_, _, err := r.client.Produce("warnings", 0, nil, v)
	if errors.Is(err, stream.ErrValueTooLarge) { // want "ErrValueTooLarge never crosses the wire"
		return nil
	}
	return err
}

// FireAndForget drops the round trip's error both ways a call site can.
func (r *Reporter) FireAndForget(v []byte) {
	r.client.Produce("warnings", 0, nil, v)           // want "discards the error from Produce"
	_, _, _ = r.client.Produce("warnings", 0, nil, v) // want "discards the error from Produce"
}

// Ensure returns the error — handled by the caller, no finding.
func (r *Reporter) Ensure() error {
	return r.client.CreateTopic("warnings", 1)
}
