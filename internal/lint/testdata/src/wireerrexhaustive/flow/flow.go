// Package flow is the pacing half of the wireerrexhaustive fixture.
package flow

import "errors"

// ErrBackpressure crosses the wire as a pacing refusal and is also
// raised locally by client-side pacers.
var ErrBackpressure = errors.New("backpressure")

// ErrCircuitOpen is client-local circuit state, never decoded from the
// wire.
var ErrCircuitOpen = errors.New("circuit open")
