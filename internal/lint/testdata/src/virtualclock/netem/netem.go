// Package netem is a golden fixture: its name puts it in the
// virtualclock analyzer's simulation set, and it mixes legal virtual-time
// arithmetic with seeded wall-clock violations.
package netem

import "time"

// Simulator is a miniature stand-in for the real event-driven simulator.
type Simulator struct {
	now time.Time
}

// Step advances virtual time — pure arithmetic, legal.
func (s *Simulator) Step(d time.Duration) {
	s.now = s.now.Add(d)
}

// Epoch uses a pure constructor, legal.
func Epoch() time.Time {
	return time.Date(2026, 1, 1, 0, 0, 0, 0, time.UTC)
}

// Drift reads the wall clock.
func (s *Simulator) Drift() time.Duration {
	return time.Since(s.now) // want "wall-clock time.Since"
}

// Wait blocks on the host scheduler.
func (s *Simulator) Wait(d time.Duration) {
	time.Sleep(d) // want "wall-clock time.Sleep"
}

func stamp() int64 {
	return time.Now().UnixNano() // want "wall-clock time.Now"
}

func timer(d time.Duration) *time.Timer {
	return time.NewTimer(d) // want "wall-clock time.NewTimer"
}

// allowed demonstrates a well-formed suppression: no finding.
func allowed() time.Time {
	return time.Now() //cad3:allow virtualclock boot banner timestamp is display-only
}

// badAllow has a reasonless allow: the suppression is rejected AND
// reported, so the wall-clock finding surfaces too.
func badAllow() time.Time {
	return time.Now() //cad3:allow virtualclock // want "wall-clock time.Now" "reason is mandatory"
}

// shadowed uses a local variable named time-like things resolved through
// a non-package object: not a wall-clock reference.
func shadowed() int {
	type clock struct{ Now func() int }
	time := clock{Now: func() int { return 0 }}
	return time.Now()
}
