// Package scenario is a golden fixture: the declarative scenario engine
// joined the virtualclock analyzer's simulation set when it landed, since
// its byte-identical replay transcripts only hold if nothing in the
// package reads the host clock.
package scenario

import "time"

// Engine is a miniature stand-in for the real scenario engine.
type Engine struct {
	vnow time.Time
}

// Advance moves virtual time — pure arithmetic, legal.
func (e *Engine) Advance(d time.Duration) {
	e.vnow = e.vnow.Add(d)
}

// Stamp reads the wall clock into a transcript.
func (e *Engine) Stamp() time.Time {
	return time.Now() // want "wall-clock time.Now"
}

// Settle polls on the host scheduler instead of the virtual clock.
func (e *Engine) Settle() {
	<-time.After(time.Millisecond) // want "wall-clock time.After"
}
