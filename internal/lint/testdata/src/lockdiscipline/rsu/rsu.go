// Package rsu is a golden fixture for lockdiscipline: a miniature
// uplink exercising the four misuse shapes (blocking op under a lock,
// double-lock, leaked lock on a return path, copied lock-bearing value)
// next to the legal idioms the analyzer must not flag (snapshot-then-
// produce, deferred unlock, the caller-held drop-and-retake contract).
package rsu

import (
	"errors"
	"sync"
	"time"
)

var errAlreadyClosed = errors.New("already closed")

// Client is the blocking round-trip surface; an interface receiver may
// be a TCP-backed client, so calls through it count as network waits.
type Client interface {
	Produce(topic string, partition int32, key, value []byte) (int32, int64, error)
}

// Uplink batches messages toward a broker.
type Uplink struct {
	mu     sync.Mutex
	client Client
	queue  [][]byte
	closed bool
}

// Flush snapshots the queue under the lock and produces outside it —
// the pattern the analyzer wants to see.
func (u *Uplink) Flush() error {
	u.mu.Lock()
	batch := u.queue
	u.queue = nil
	u.mu.Unlock()
	for _, msg := range batch {
		if _, _, err := u.client.Produce("t", 0, nil, msg); err != nil {
			return err
		}
	}
	return nil
}

// FlushHolding performs the round trip with the lock still held: every
// Forward and gauge read stalls for the full network wait.
func (u *Uplink) FlushHolding() error {
	u.mu.Lock()
	defer u.mu.Unlock()
	for _, msg := range u.queue {
		if _, _, err := u.client.Produce("t", 0, nil, msg); err != nil { // want "blocking client round trip.*while holding u.mu"
			return err
		}
	}
	u.queue = nil
	return nil
}

// Enqueue re-acquires the lock it already holds.
func (u *Uplink) Enqueue(msg []byte) {
	u.mu.Lock()
	defer u.mu.Unlock()
	u.mu.Lock() // want "already held on this path .self-deadlock."
	u.queue = append(u.queue, msg)
	u.mu.Unlock()
}

// Close leaks the lock on the early-return path.
func (u *Uplink) Close() error {
	u.mu.Lock()
	if u.closed {
		return errAlreadyClosed // want "returns with u.mu held and no unlock on this path"
	}
	u.closed = true
	u.mu.Unlock()
	return nil
}

// Sweep parks the scheduler with the lock held.
func (u *Uplink) Sweep() {
	u.mu.Lock()
	time.Sleep(time.Millisecond) // want "sleeps while holding u.mu"
	u.mu.Unlock()
}

// reconcile is called with u.mu held: it drops the lock around the slow
// produce and retakes it before returning — the caller-held contract,
// not a leak.
func (u *Uplink) reconcile(msg []byte) {
	u.mu.Unlock()
	u.client.Produce("t", 0, nil, msg)
	u.mu.Lock()
}

// Registry holds a mutex by value, so the type must move by pointer.
type Registry struct {
	mu    sync.Mutex
	sites map[string]int
}

// Snapshot copies the registry (and its lock state) into the receiver.
func (r Registry) Snapshot() int { // want "receiver of Snapshot copies .* which contains a mutex"
	return len(r.sites)
}

// Sites reads through a pointer receiver — no copy.
func (r *Registry) Sites() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return len(r.sites)
}
