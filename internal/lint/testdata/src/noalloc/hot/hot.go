// Package hot is a golden fixture for the noalloc analyzer: annotated
// functions mixing the legal zero-allocation idioms with one seeded
// violation per allocating construct, plus the always-on SendPooled
// encode-closure rule.
package hot

import "fmt"

// Encode is the canonical pooled fast path: the append+make extension
// and in-place writes are all free.
//
//cad3:noalloc
func Encode(dst []byte, v uint64) []byte {
	dst = append(dst, make([]byte, 8)...)
	dst[len(dst)-1] = byte(v)
	return dst
}

// Bad collects the allocating constructs.
//
//cad3:noalloc
func Bad(dst []byte, v uint64) []byte {
	buf := make([]byte, 8)     // want "calls make"
	s := fmt.Sprintf("x%d", v) // want "calls fmt.Sprintf"
	_ = s
	pairs := map[uint64]uint64{v: v} // want "map literal"
	_ = pairs
	extra := []byte{1, 2} // want "slice literal"
	dst = append(dst, extra...)
	return append(dst, buf...)
}

// Counter returns a closure over its accumulator: the environment
// allocates on every call.
//
//cad3:noalloc
func Counter() func() uint64 {
	total := uint64(0)
	return func() uint64 { // want "closure capturing total"
		total++
		return total
	}
}

// Concat allocates the joined string.
//
//cad3:noalloc
func Concat(a, b string) string {
	return a + b // want "concatenates strings"
}

// Bytes copies the string into a fresh slice.
//
//cad3:noalloc
func Bytes(s string) []byte {
	return []byte(s) // want "converts between string"
}

// Box passes a concrete int where an interface is expected.
//
//cad3:noalloc
func Box(v int) {
	sink(v) // want "boxes on the heap"
}

func sink(x interface{}) { _ = x }

// Producer mimics the transport's pooled-send API by name.
type Producer struct{}

// SendPooled matches the real signature shape: key plus encode callback.
func (p *Producer) SendPooled(key []byte, encode func([]byte) []byte) (int, int, error) {
	return 0, 0, nil
}

// SendCapturing builds a fresh capturing closure per send — the
// always-on rule fires without any annotation.
func SendCapturing(p *Producer, key []byte, rec uint64) {
	p.SendPooled(key, func(dst []byte) []byte { // want "SendPooled encode closure captures rec"
		return append(dst, byte(rec))
	})
}

// SendHoisted passes a capture-free literal: legal.
func SendHoisted(p *Producer, key []byte) {
	p.SendPooled(key, func(dst []byte) []byte {
		return append(dst, 0)
	})
}
