package lint

import (
	"fmt"
	"path/filepath"
	"regexp"
	"testing"
)

// The golden tests load a miniature module from testdata/src/<case> and
// compare each analyzer's findings against `// want "regex"` comments:
// every finding must match a want on its exact line, and every want must
// be hit by at least one finding. A want comment may carry several
// quoted patterns when a line produces several findings.

var wantRe = regexp.MustCompile(`// want ((?:"(?:[^"\\]|\\.)*"\s*)+)`)
var wantPatRe = regexp.MustCompile(`"((?:[^"\\]|\\.)*)"`)

type wantEntry struct {
	re      *regexp.Regexp
	matched bool
	raw     string
}

// loadGolden loads the testdata module under dir and fails the test on
// type errors, so a broken fixture can never pass by producing nothing.
func loadGolden(t *testing.T, dir string) *Program {
	t.Helper()
	root, err := filepath.Abs(filepath.Join("testdata", "src", dir))
	if err != nil {
		t.Fatal(err)
	}
	prog, err := NewLoader(root, "golden").LoadRepo()
	if err != nil {
		t.Fatalf("load %s: %v", dir, err)
	}
	for _, pkg := range prog.Pkgs {
		for _, e := range pkg.TypeErrors {
			t.Errorf("%s: type error: %v", pkg.Path, e)
		}
	}
	if t.Failed() {
		t.Fatalf("fixture %s does not type-check", dir)
	}
	return prog
}

// runGolden checks one analyzer (plus the allow machinery in Run)
// against one fixture.
func runGolden(t *testing.T, dir string, analyzers ...*Analyzer) {
	t.Helper()
	prog := loadGolden(t, dir)
	findings := Run(prog, analyzers)

	wants := map[string][]*wantEntry{} // "file:line" -> patterns
	for _, pkg := range prog.Pkgs {
		for _, file := range pkg.Files {
			for _, cg := range file.Comments {
				for _, c := range cg.List {
					m := wantRe.FindStringSubmatch(c.Text)
					if m == nil {
						continue
					}
					pos := prog.Fset.Position(c.Pos())
					key := fmt.Sprintf("%s:%d", pos.Filename, pos.Line)
					for _, pm := range wantPatRe.FindAllStringSubmatch(m[1], -1) {
						re, err := regexp.Compile(pm[1])
						if err != nil {
							t.Fatalf("%s: bad want pattern %q: %v", key, pm[1], err)
						}
						wants[key] = append(wants[key], &wantEntry{re: re, raw: pm[1]})
					}
				}
			}
		}
	}

	for _, f := range findings {
		key := fmt.Sprintf("%s:%d", f.Pos.Filename, f.Pos.Line)
		hit := false
		for _, w := range wants[key] {
			if w.re.MatchString(f.Message) {
				w.matched = true
				hit = true
			}
		}
		if !hit {
			t.Errorf("unexpected finding: %s", f.String())
		}
	}
	for key, entries := range wants {
		for _, w := range entries {
			if !w.matched {
				t.Errorf("%s: expected a finding matching %q, got none", key, w.raw)
			}
		}
	}
}

func TestGoldenVirtualClock(t *testing.T)     { runGolden(t, "virtualclock", VirtualClock) }
func TestGoldenPoolSafety(t *testing.T)       { runGolden(t, "poolsafety", PoolSafety) }
func TestGoldenWireLayout(t *testing.T)       { runGolden(t, "wirelayout", WireLayout) }
func TestGoldenNoAlloc(t *testing.T)          { runGolden(t, "noalloc", NoAlloc) }
func TestGoldenGoroutineHygiene(t *testing.T) { runGolden(t, "goroutine", GoroutineHygiene) }

func TestGoldenDetOrder(t *testing.T)          { runGolden(t, "detorder", DetOrder) }
func TestGoldenLockDiscipline(t *testing.T)    { runGolden(t, "lockdiscipline", LockDiscipline) }
func TestGoldenAtomicMix(t *testing.T)         { runGolden(t, "atomicmix", AtomicMix) }
func TestGoldenWireErrExhaustive(t *testing.T) { runGolden(t, "wireerrexhaustive", WireErrExhaustive) }

// TestGoldenSuiteTogether runs the full suite over every fixture at once
// to prove analyzers do not interfere (each fixture's wants are scoped to
// the analyzers that fire there, so the union must still line up).
func TestGoldenSuiteTogether(t *testing.T) {
	for _, dir := range []string{
		"virtualclock", "poolsafety", "noalloc", "goroutine",
		"detorder", "lockdiscipline", "atomicmix",
	} {
		// wirelayout is excluded: its fixture deliberately seeds layout
		// drift that the dedicated test covers, and the noalloc/poolsafety
		// fixtures define no codec for it to cross-check. wireerrexhaustive
		// is excluded for the same reason: its decoder deliberately drifts
		// from the wire table, which its dedicated test pins.
		t.Run(dir, func(t *testing.T) { runGolden(t, dir, Analyzers()...) })
	}
}
