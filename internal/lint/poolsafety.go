package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// PoolSafety enforces the payload-pool ownership contract from
// internal/stream: once a buffer has been handed back with PutPayload /
// putFrame, or a polled batch recycled with RecycleMessages, the caller
// must not touch it again — the pool may have already handed the bytes
// to another goroutine. The analyzer runs a branch-aware, per-function
// scan: a buffer recycled on some path is "maybe free" afterwards, any
// use reports, and recycling it again reports a double-recycle. Loop
// bodies are scanned twice so a kill at the bottom of an iteration is
// seen by the top of the next.
//
// After RecycleMessages(msgs) the message *slice header* is still owned
// by the caller (only the element buffers went back), so re-arming reuse
// via msgs[:0], len(msgs) and cap(msgs) stays legal; everything else —
// indexing, ranging — reads nil'd payloads and reports.
//
// The analysis is per-function and does not track aliases: a copy of a
// message value taken before the recycle escapes it. The debug build
// (-tags cad3_checks) closes that gap at runtime.
var PoolSafety = &Analyzer{
	Name:   "poolsafety",
	Doc:    "no use of pooled buffers after PutPayload/RecycleMessages, no double-recycle",
	RunPkg: runPoolSafety,
}

// recycle kinds: what the kill call said about the variable.
type recycleKind int

const (
	// recycledBuffer: PutPayload/putFrame — the backing bytes are gone.
	recycledBuffer recycleKind = iota
	// recycledBatch: RecycleMessages — elements freed, header still owned.
	recycledBatch
)

// poolKillFuncs maps callee names to the recycle kind they impose on
// their (first) argument. Name-based matching keeps the analyzer usable
// on golden testdata and immune to import renames; the names are unique
// to the stream package in this repo.
var poolKillFuncs = map[string]recycleKind{
	"PutPayload":      recycledBuffer,
	"putFrame":        recycledBuffer,
	"RecycleMessages": recycledBatch,
	"recyclePayloads": recycledBatch,
}

// kill records where and how a variable was recycled.
type kill struct {
	kind recycleKind
	pos  token.Pos
}

// poolState is the per-path "maybe freed" set, keyed by the variable's
// types.Object identity.
type poolState map[types.Object]kill

func (s poolState) clone() poolState {
	c := make(poolState, len(s))
	for k, v := range s {
		c[k] = v
	}
	return c
}

// merge unions the kills of another path into s (maybe-freed semantics).
func (s poolState) merge(o poolState) {
	for k, v := range o {
		if _, ok := s[k]; !ok {
			s[k] = v
		}
	}
}

// poolChecker scans one function scope.
type poolChecker struct {
	prog *Program
	pkg  *Package
	out  *[]Finding
	seen map[token.Pos]bool // dedupe across the double loop pass
}

func runPoolSafety(prog *Program, pkg *Package) []Finding {
	var out []Finding
	for _, file := range pkg.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			switch fn := n.(type) {
			case *ast.FuncDecl:
				if fn.Body != nil {
					c := &poolChecker{prog: prog, pkg: pkg, out: &out, seen: map[token.Pos]bool{}}
					c.block(fn.Body, poolState{})
				}
			case *ast.FuncLit:
				// Function literals are separate scopes with their own
				// execution time (often deferred callbacks); they are
				// scanned independently, and kills inside them do not
				// leak into the enclosing flow.
				c := &poolChecker{prog: prog, pkg: pkg, out: &out, seen: map[token.Pos]bool{}}
				c.block(fn.Body, poolState{})
				return false
			}
			return true
		})
	}
	return out
}

// report emits one finding, deduped by position.
func (c *poolChecker) report(pos token.Pos, msg string) {
	if c.seen[pos] {
		return
	}
	c.seen[pos] = true
	*c.out = append(*c.out, Finding{
		Pos:      c.prog.Fset.Position(pos),
		Analyzer: "poolsafety",
		Message:  msg,
	})
}

// obj resolves a plain identifier to its object, or nil.
func (c *poolChecker) obj(e ast.Expr) types.Object {
	id, ok := e.(*ast.Ident)
	if !ok {
		return nil
	}
	if o := c.pkg.Info.Uses[id]; o != nil {
		return o
	}
	return c.pkg.Info.Defs[id]
}

// block runs the scan over a statement list, mutating and returning the
// state. terminated reports whether the path definitely left the block
// (return / branch), so callers can skip joining it.
func (c *poolChecker) block(b *ast.BlockStmt, st poolState) (poolState, bool) {
	if b == nil {
		return st, false
	}
	return c.stmts(b.List, st)
}

func (c *poolChecker) stmts(list []ast.Stmt, st poolState) (poolState, bool) {
	for _, s := range list {
		var term bool
		st, term = c.stmt(s, st)
		if term {
			return st, true
		}
	}
	return st, false
}

func (c *poolChecker) stmt(s ast.Stmt, st poolState) (poolState, bool) {
	switch x := s.(type) {
	case *ast.ExprStmt:
		c.expr(x.X, st)
		c.applyKills(x.X, st)
	case *ast.AssignStmt:
		for _, rhs := range x.Rhs {
			c.expr(rhs, st)
			c.applyKills(rhs, st)
		}
		for _, lhs := range x.Lhs {
			if o := c.obj(lhs); o != nil {
				delete(st, o) // reassignment revives the variable
			} else {
				c.expr(lhs, st) // e.g. m.Key = nil: check the base
			}
		}
	case *ast.DeclStmt:
		if gd, ok := x.Decl.(*ast.GenDecl); ok {
			for _, spec := range gd.Specs {
				if vs, ok := spec.(*ast.ValueSpec); ok {
					for _, v := range vs.Values {
						c.expr(v, st)
						c.applyKills(v, st)
					}
					for _, name := range vs.Names {
						if o := c.pkg.Info.Defs[name]; o != nil {
							delete(st, o)
						}
					}
				}
			}
		}
	case *ast.ReturnStmt:
		for _, r := range x.Results {
			c.expr(r, st)
		}
		return st, true
	case *ast.BranchStmt:
		return st, true
	case *ast.IfStmt:
		if x.Init != nil {
			st, _ = c.stmt(x.Init, st)
		}
		c.expr(x.Cond, st)
		thenSt, thenTerm := c.block(x.Body, st.clone())
		elseSt, elseTerm := st.clone(), false
		if x.Else != nil {
			switch e := x.Else.(type) {
			case *ast.BlockStmt:
				elseSt, elseTerm = c.block(e, elseSt)
			case *ast.IfStmt:
				elseSt, elseTerm = c.stmt(e, elseSt)
			}
		}
		switch {
		case thenTerm && elseTerm:
			return st, true
		case thenTerm:
			return elseSt, false
		case elseTerm:
			return thenSt, false
		default:
			thenSt.merge(elseSt)
			return thenSt, false
		}
	case *ast.ForStmt:
		if x.Init != nil {
			st, _ = c.stmt(x.Init, st)
		}
		if x.Cond != nil {
			c.expr(x.Cond, st)
		}
		// Two passes: the second starts from the first pass's out-state so
		// a kill late in iteration N is visible early in iteration N+1.
		once, _ := c.block(x.Body, st.clone())
		if x.Post != nil {
			once, _ = c.stmt(x.Post, once)
		}
		if x.Cond != nil {
			c.expr(x.Cond, once) // the condition re-reads state each iteration
		}
		twice, _ := c.block(x.Body, once)
		st.merge(twice)
		return st, false
	case *ast.RangeStmt:
		c.expr(x.X, st)
		// Key/value are rebound at the top of every iteration, so a kill of
		// the loop variable in iteration N does not carry into N+1.
		clearLoopVars := func(s poolState) {
			if o := c.obj(x.Key); o != nil {
				delete(s, o)
			}
			if o := c.obj(x.Value); o != nil {
				delete(s, o)
			}
		}
		clearLoopVars(st)
		once, _ := c.block(x.Body, st.clone())
		clearLoopVars(once)
		twice, _ := c.block(x.Body, once)
		st.merge(twice)
		return st, false
	case *ast.SwitchStmt:
		if x.Init != nil {
			st, _ = c.stmt(x.Init, st)
		}
		if x.Tag != nil {
			c.expr(x.Tag, st)
		}
		joined := st.clone()
		for _, cc := range x.Body.List {
			cl := cc.(*ast.CaseClause)
			for _, e := range cl.List {
				c.expr(e, st)
			}
			caseSt, term := c.stmts(cl.Body, st.clone())
			if !term {
				joined.merge(caseSt)
			}
		}
		return joined, false
	case *ast.TypeSwitchStmt:
		if x.Init != nil {
			st, _ = c.stmt(x.Init, st)
		}
		joined := st.clone()
		for _, cc := range x.Body.List {
			cl := cc.(*ast.CaseClause)
			caseSt, term := c.stmts(cl.Body, st.clone())
			if !term {
				joined.merge(caseSt)
			}
		}
		return joined, false
	case *ast.SelectStmt:
		joined := st.clone()
		for _, cc := range x.Body.List {
			cl := cc.(*ast.CommClause)
			caseSt := st.clone()
			if cl.Comm != nil {
				caseSt, _ = c.stmt(cl.Comm, caseSt)
			}
			caseSt, term := c.stmts(cl.Body, caseSt)
			if !term {
				joined.merge(caseSt)
			}
		}
		return joined, false
	case *ast.BlockStmt:
		return c.block(x, st)
	case *ast.LabeledStmt:
		return c.stmt(x.Stmt, st)
	case *ast.SendStmt:
		c.expr(x.Chan, st)
		c.expr(x.Value, st)
	case *ast.IncDecStmt:
		c.expr(x.X, st)
	case *ast.GoStmt, *ast.DeferStmt:
		// Spawned/deferred bodies execute at another time; their kills and
		// uses are checked in their own scope (runPoolSafety visits every
		// FuncLit independently).
	}
	return st, false
}

// applyKills registers recycle calls appearing in the expression.
func (c *poolChecker) applyKills(e ast.Expr, st poolState) {
	call, ok := e.(*ast.CallExpr)
	if !ok {
		return
	}
	name := calleeName(call)
	kind, isKill := poolKillFuncs[name]
	if !isKill || len(call.Args) == 0 {
		return
	}
	arg := call.Args[0]
	if u, ok := arg.(*ast.UnaryExpr); ok && u.Op == token.AND {
		arg = u.X
	}
	o := c.obj(arg)
	if o == nil {
		return
	}
	if prev, dead := st[o]; dead {
		c.report(call.Pos(), "double recycle of "+o.Name()+" via "+name+
			" (already recycled at "+c.prog.Fset.Position(prev.pos).String()+")")
		return
	}
	st[o] = kill{kind: kind, pos: call.Pos()}
}

// expr reports uses of maybe-freed variables inside e.
func (c *poolChecker) expr(e ast.Expr, st poolState) {
	if e == nil || len(st) == 0 {
		return
	}
	ast.Inspect(e, func(n ast.Node) bool {
		switch x := n.(type) {
		case *ast.FuncLit:
			return false // separate scope, separate execution time
		case *ast.CallExpr:
			// The recycle call itself is handled by applyKills; len/cap of
			// a recycled batch is legal. Re-killing shows as double-recycle.
			if name := calleeName(x); name == "len" || name == "cap" {
				if len(x.Args) == 1 {
					if o := c.obj(x.Args[0]); o != nil {
						if k, dead := st[o]; dead && k.kind == recycledBatch {
							return false
						}
					}
				}
			}
			if _, isKill := poolKillFuncs[calleeName(x)]; isKill {
				for _, a := range x.Args[min(1, len(x.Args)):] {
					c.expr(a, st)
				}
				return false
			}
			return true
		case *ast.SliceExpr:
			// msgs[:0] re-arms a recycled batch for PollInto — legal.
			if o := c.obj(x.X); o != nil {
				if k, dead := st[o]; dead && k.kind == recycledBatch && sliceIsZeroReset(x) {
					return false
				}
			}
			return true
		case *ast.Ident:
			o := c.pkg.Info.Uses[x]
			if o == nil {
				return true
			}
			if k, dead := st[o]; dead {
				what := "pooled buffer"
				if k.kind == recycledBatch {
					what = "recycled message batch"
				}
				c.report(x.Pos(), "use of "+what+" "+o.Name()+" after recycle at "+
					c.prog.Fset.Position(k.pos).String())
			}
		}
		return true
	})
}

// sliceIsZeroReset matches x[:0] (and x[0:0]) — a length reset that
// keeps only the header.
func sliceIsZeroReset(s *ast.SliceExpr) bool {
	if s.High == nil || s.Slice3 {
		return false
	}
	if lit, ok := s.High.(*ast.BasicLit); !ok || lit.Value != "0" {
		return false
	}
	if s.Low == nil {
		return true
	}
	lit, ok := s.Low.(*ast.BasicLit)
	return ok && lit.Value == "0"
}

// calleeName extracts the called function's bare name from a call.
func calleeName(call *ast.CallExpr) string {
	switch f := call.Fun.(type) {
	case *ast.Ident:
		return f.Name
	case *ast.SelectorExpr:
		return f.Sel.Name
	}
	return ""
}
