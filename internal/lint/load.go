package lint

import (
	"fmt"
	"go/ast"
	"go/build/constraint"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"runtime"
	"sort"
	"strings"
)

// Package is one loaded, parsed, type-checked package.
type Package struct {
	// Path is the package's import path (module-qualified for repo
	// packages, synthetic for golden-file testdata).
	Path string
	// Dir is the directory the files came from.
	Dir   string
	Files []*ast.File
	// Types is the type-checked package; Info holds the use/def/type
	// maps the analyzers consult. Both are always non-nil, but may be
	// incomplete if the package had type errors (analyzers must treat
	// missing Info entries as "unknown", not crash).
	Types *types.Package
	Info  *types.Info
	// TypeErrors collects type-check diagnostics. cad3-vet surfaces them
	// as a load failure; the golden harness asserts there are none so a
	// broken testdata package cannot silently produce zero findings.
	TypeErrors []error
}

// Program is the full set of packages one analysis run sees.
type Program struct {
	Fset *token.FileSet
	Pkgs []*Package
}

// Loader loads repo packages with the standard library only: files are
// parsed with go/parser, repo-internal imports are resolved recursively
// from source, and standard-library imports go through go/importer's
// source importer ($GOROOT/src). No go/packages, no subprocesses.
type Loader struct {
	// Root is the module root directory.
	Root string
	// Module is the module path ("cad3"); imports under it load from Root.
	Module string
	// Tags are extra build tags considered active (GOOS, GOARCH, and the
	// toolchain's go1.x tags are always active).
	Tags []string

	fset *token.FileSet
	std  types.Importer
	pkgs map[string]*Package
}

// NewLoader returns a loader rooted at the module directory.
func NewLoader(root, module string, tags ...string) *Loader {
	fset := token.NewFileSet()
	return &Loader{
		Root:   root,
		Module: module,
		Tags:   tags,
		fset:   fset,
		std:    importer.ForCompiler(fset, "source", nil),
		pkgs:   map[string]*Package{},
	}
}

// Fset returns the loader's file set.
func (l *Loader) Fset() *token.FileSet { return l.fset }

// Import implements types.Importer so the type checker can pull in
// dependencies: module-internal paths load (and cache) from source,
// everything else is delegated to the stdlib source importer.
func (l *Loader) Import(path string) (*types.Package, error) {
	if path == l.Module || strings.HasPrefix(path, l.Module+"/") {
		rel := strings.TrimPrefix(strings.TrimPrefix(path, l.Module), "/")
		pkg, err := l.LoadDir(filepath.Join(l.Root, rel), path)
		if err != nil {
			return nil, err
		}
		return pkg.Types, nil
	}
	return l.std.Import(path)
}

// LoadDir parses and type-checks the package in dir under the given
// import path, reusing the cache on repeat calls.
func (l *Loader) LoadDir(dir, path string) (*Package, error) {
	if p, ok := l.pkgs[path]; ok {
		return p, nil
	}
	names, err := l.goFiles(dir)
	if err != nil {
		return nil, err
	}
	if len(names) == 0 {
		return nil, fmt.Errorf("lint: no buildable Go files in %s", dir)
	}
	var files []*ast.File
	for _, n := range names {
		f, perr := parser.ParseFile(l.fset, filepath.Join(dir, n), nil,
			parser.ParseComments|parser.SkipObjectResolution)
		if perr != nil {
			return nil, fmt.Errorf("lint: parse %s: %w", n, perr)
		}
		files = append(files, f)
	}
	pkg := &Package{Path: path, Dir: dir, Files: files}
	// Register before type-checking: import cycles would otherwise
	// recurse forever (the type checker reports the cycle as an error).
	l.pkgs[path] = pkg
	info := &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
		Scopes:     map[ast.Node]*types.Scope{},
	}
	conf := types.Config{
		Importer: l,
		Error:    func(err error) { pkg.TypeErrors = append(pkg.TypeErrors, err) },
	}
	tpkg, _ := conf.Check(path, l.fset, files, info) // errors land in TypeErrors
	if tpkg == nil {
		tpkg = types.NewPackage(path, files[0].Name.Name)
	}
	pkg.Types = tpkg
	pkg.Info = info
	return pkg, nil
}

// goFiles lists the buildable non-test Go files of dir, honoring
// //go:build constraints against the loader's active tag set.
func (l *Loader) goFiles(dir string) ([]string, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var names []string
	for _, e := range entries {
		n := e.Name()
		if e.IsDir() || !strings.HasSuffix(n, ".go") ||
			strings.HasSuffix(n, "_test.go") || strings.HasPrefix(n, ".") {
			continue
		}
		ok, cerr := l.fileBuildable(filepath.Join(dir, n))
		if cerr != nil {
			return nil, cerr
		}
		if ok {
			names = append(names, n)
		}
	}
	sort.Strings(names)
	return names, nil
}

// fileBuildable evaluates the file's //go:build constraint (if any)
// against GOOS, GOARCH, the toolchain release tags, and l.Tags. Files
// guarded by foreign tags (e.g. the cad3_checks debug build) are
// excluded exactly like `go build` excludes them.
func (l *Loader) fileBuildable(path string) (bool, error) {
	src, err := os.ReadFile(path)
	if err != nil {
		return false, err
	}
	for _, line := range strings.Split(string(src), "\n") {
		line = strings.TrimSpace(line)
		if line == "" || strings.HasPrefix(line, "//") {
			if !constraint.IsGoBuild(line) {
				continue
			}
			expr, perr := constraint.Parse(line)
			if perr != nil {
				return false, fmt.Errorf("lint: %s: %w", path, perr)
			}
			return expr.Eval(l.tagActive), nil
		}
		break // first non-comment, non-blank line: constraints must precede it
	}
	return true, nil
}

// tagActive reports whether a build tag is satisfied in this toolchain's
// default configuration.
func (l *Loader) tagActive(tag string) bool {
	if tag == runtime.GOOS || tag == runtime.GOARCH || tag == "unix" && unixOS[runtime.GOOS] {
		return true
	}
	if strings.HasPrefix(tag, "go1.") {
		return releaseTagActive(tag)
	}
	for _, t := range l.Tags {
		if t == tag {
			return true
		}
	}
	return false
}

var unixOS = map[string]bool{
	"aix": true, "android": true, "darwin": true, "dragonfly": true,
	"freebsd": true, "illumos": true, "ios": true, "linux": true,
	"netbsd": true, "openbsd": true, "solaris": true,
}

// releaseTagActive reports whether a go1.N tag is at or below the
// running toolchain's minor version.
func releaseTagActive(tag string) bool {
	var n int
	if _, err := fmt.Sscanf(tag, "go1.%d", &n); err != nil {
		return false
	}
	cur := runtime.Version() // e.g. "go1.24.0"
	var major int
	if _, err := fmt.Sscanf(cur, "go1.%d", &major); err != nil {
		return true // unusual toolchain string: accept the tag
	}
	return n <= major
}

// LoadRepo loads every package in the module (skipping testdata, hidden
// directories, and directories with no buildable files) into a Program.
func (l *Loader) LoadRepo() (*Program, error) {
	var dirs []string
	err := filepath.WalkDir(l.Root, func(path string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if !d.IsDir() {
			return nil
		}
		base := filepath.Base(path)
		if path != l.Root && (strings.HasPrefix(base, ".") || strings.HasPrefix(base, "_") || base == "testdata") {
			return filepath.SkipDir
		}
		names, gerr := l.goFiles(path)
		if gerr != nil || len(names) == 0 {
			return nil //nolint: unreadable dirs and file-less dirs are skipped
		}
		dirs = append(dirs, path)
		return nil
	})
	if err != nil {
		return nil, err
	}
	prog := &Program{Fset: l.fset}
	for _, dir := range dirs {
		rel, rerr := filepath.Rel(l.Root, dir)
		if rerr != nil {
			return nil, rerr
		}
		path := l.Module
		if rel != "." {
			path = l.Module + "/" + filepath.ToSlash(rel)
		}
		pkg, lerr := l.LoadDir(dir, path)
		if lerr != nil {
			return nil, fmt.Errorf("lint: load %s: %w", path, lerr)
		}
		prog.Pkgs = append(prog.Pkgs, pkg)
	}
	sort.Slice(prog.Pkgs, func(i, j int) bool { return prog.Pkgs[i].Path < prog.Pkgs[j].Path })
	return prog, nil
}

// FindModuleRoot walks up from dir to the directory holding go.mod and
// returns it with the module path parsed from the file.
func FindModuleRoot(dir string) (root, module string, err error) {
	dir, err = filepath.Abs(dir)
	if err != nil {
		return "", "", err
	}
	for {
		data, rerr := os.ReadFile(filepath.Join(dir, "go.mod"))
		if rerr == nil {
			for _, line := range strings.Split(string(data), "\n") {
				line = strings.TrimSpace(line)
				if rest, ok := strings.CutPrefix(line, "module "); ok {
					return dir, strings.TrimSpace(rest), nil
				}
			}
			return "", "", fmt.Errorf("lint: %s/go.mod has no module directive", dir)
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			return "", "", fmt.Errorf("lint: no go.mod found above %s", dir)
		}
		dir = parent
	}
}
