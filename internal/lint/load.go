package lint

import (
	"fmt"
	"go/ast"
	"go/build/constraint"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"runtime"
	"sort"
	"strconv"
	"strings"
	"sync"
)

// Package is one loaded, parsed, type-checked package.
type Package struct {
	// Path is the package's import path (module-qualified for repo
	// packages, synthetic for golden-file testdata).
	Path string
	// Dir is the directory the files came from.
	Dir   string
	Files []*ast.File
	// Types is the type-checked package; Info holds the use/def/type
	// maps the analyzers consult. Both are always non-nil, but may be
	// incomplete if the package had type errors (analyzers must treat
	// missing Info entries as "unknown", not crash).
	Types *types.Package
	Info  *types.Info
	// TypeErrors collects type-check diagnostics. cad3-vet surfaces them
	// as a load failure; the golden harness asserts there are none so a
	// broken testdata package cannot silently produce zero findings.
	TypeErrors []error

	// checking/checked guard the type-check phase (loader.mu): a package
	// whose check is in flight answers imports with its incomplete Types,
	// which is how an import cycle surfaces as a type error instead of
	// infinite recursion.
	checking bool
	checked  bool
}

// Program is the full set of packages one analysis run sees.
type Program struct {
	Fset *token.FileSet
	Pkgs []*Package
	// Root and Module identify the loaded module (set by LoadRepo); the
	// result cache keys package hashes under them.
	Root   string
	Module string
}

// Loader loads repo packages with the standard library only: files are
// parsed with go/parser, repo-internal imports are resolved recursively
// from source, and standard-library imports go through go/importer's
// source importer ($GOROOT/src). No go/packages, no subprocesses.
//
// LoadRepo parallelizes the two phases that dominate wall time: every
// package's files are parsed concurrently (token.FileSet is safe for
// concurrent use), and type-checking proceeds in dependency waves —
// packages whose module-internal imports are all checked run together.
// The stdlib source importer is not documented as concurrency-safe, so
// its calls serialize behind stdMu; it caches internally, making each
// distinct stdlib package a one-time cost.
type Loader struct {
	// Root is the module root directory.
	Root string
	// Module is the module path ("cad3"); imports under it load from Root.
	Module string
	// Tags are extra build tags considered active (GOOS, GOARCH, and the
	// toolchain's go1.x tags are always active).
	Tags []string

	fset *token.FileSet
	std  types.Importer

	mu    sync.Mutex // guards pkgs and the per-package checking/checked flags
	stdMu sync.Mutex // serializes the stdlib source importer
	pkgs  map[string]*Package
}

// NewLoader returns a loader rooted at the module directory.
func NewLoader(root, module string, tags ...string) *Loader {
	fset := token.NewFileSet()
	return &Loader{
		Root:   root,
		Module: module,
		Tags:   tags,
		fset:   fset,
		std:    importer.ForCompiler(fset, "source", nil),
		pkgs:   map[string]*Package{},
	}
}

// Fset returns the loader's file set.
func (l *Loader) Fset() *token.FileSet { return l.fset }

// Import implements types.Importer so the type checker can pull in
// dependencies: module-internal paths load (and cache) from source,
// everything else is delegated to the stdlib source importer. Safe for
// concurrent use by wave-parallel type checks.
func (l *Loader) Import(path string) (*types.Package, error) {
	if path == l.Module || strings.HasPrefix(path, l.Module+"/") {
		rel := strings.TrimPrefix(strings.TrimPrefix(path, l.Module), "/")
		pkg, err := l.LoadDir(filepath.Join(l.Root, rel), path)
		if err != nil {
			return nil, err
		}
		return pkg.Types, nil
	}
	l.stdMu.Lock()
	defer l.stdMu.Unlock()
	return l.std.Import(path)
}

// LoadDir parses and type-checks the package in dir under the given
// import path, reusing the cache on repeat calls.
func (l *Loader) LoadDir(dir, path string) (*Package, error) {
	pkg, err := l.parseDir(dir, path)
	if err != nil {
		return nil, err
	}
	l.check(pkg)
	return pkg, nil
}

// parseDir parses the package's buildable files and registers the
// (unchecked) package, reusing an existing registration. Concurrent
// callers may both parse; the first registration wins and the loser's
// work is discarded.
func (l *Loader) parseDir(dir, path string) (*Package, error) {
	l.mu.Lock()
	if p, ok := l.pkgs[path]; ok {
		l.mu.Unlock()
		return p, nil
	}
	l.mu.Unlock()
	names, err := l.goFiles(dir)
	if err != nil {
		return nil, err
	}
	if len(names) == 0 {
		return nil, fmt.Errorf("lint: no buildable Go files in %s", dir)
	}
	var files []*ast.File
	for _, n := range names {
		f, perr := parser.ParseFile(l.fset, filepath.Join(dir, n), nil,
			parser.ParseComments|parser.SkipObjectResolution)
		if perr != nil {
			return nil, fmt.Errorf("lint: parse %s: %w", n, perr)
		}
		files = append(files, f)
	}
	pkg := &Package{Path: path, Dir: dir, Files: files}
	l.mu.Lock()
	if p, ok := l.pkgs[path]; ok {
		l.mu.Unlock()
		return p, nil
	}
	l.pkgs[path] = pkg
	l.mu.Unlock()
	return pkg, nil
}

// check type-checks a parsed package once. A package already being
// checked answers immediately with whatever Types it has so far — that
// is how an import cycle surfaces as the type checker's cycle error
// instead of infinite recursion. LoadRepo's dependency waves guarantee
// that in the acyclic (i.e. every real) case, a package's imports are
// fully checked before any concurrent importer can reach it.
func (l *Loader) check(pkg *Package) {
	l.mu.Lock()
	if pkg.checked || pkg.checking {
		l.mu.Unlock()
		return
	}
	pkg.checking = true
	l.mu.Unlock()

	info := &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
		Scopes:     map[ast.Node]*types.Scope{},
	}
	conf := types.Config{
		Importer: l,
		Error:    func(err error) { pkg.TypeErrors = append(pkg.TypeErrors, err) },
	}
	tpkg, _ := conf.Check(pkg.Path, l.fset, pkg.Files, info) // errors land in TypeErrors
	if tpkg == nil {
		tpkg = types.NewPackage(pkg.Path, pkg.Files[0].Name.Name)
	}
	pkg.Types = tpkg
	pkg.Info = info

	l.mu.Lock()
	pkg.checking = false
	pkg.checked = true
	l.mu.Unlock()
}

// goFiles lists the buildable non-test Go files of dir, honoring
// //go:build constraints against the loader's active tag set.
func (l *Loader) goFiles(dir string) ([]string, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var names []string
	for _, e := range entries {
		n := e.Name()
		if e.IsDir() || !strings.HasSuffix(n, ".go") ||
			strings.HasSuffix(n, "_test.go") || strings.HasPrefix(n, ".") {
			continue
		}
		ok, cerr := l.fileBuildable(filepath.Join(dir, n))
		if cerr != nil {
			return nil, cerr
		}
		if ok {
			names = append(names, n)
		}
	}
	sort.Strings(names)
	return names, nil
}

// fileBuildable evaluates the file's //go:build constraint (if any)
// against GOOS, GOARCH, the toolchain release tags, and l.Tags. Files
// guarded by foreign tags (e.g. the cad3_checks debug build) are
// excluded exactly like `go build` excludes them.
func (l *Loader) fileBuildable(path string) (bool, error) {
	src, err := os.ReadFile(path)
	if err != nil {
		return false, err
	}
	for _, line := range strings.Split(string(src), "\n") {
		line = strings.TrimSpace(line)
		if line == "" || strings.HasPrefix(line, "//") {
			if !constraint.IsGoBuild(line) {
				continue
			}
			expr, perr := constraint.Parse(line)
			if perr != nil {
				return false, fmt.Errorf("lint: %s: %w", path, perr)
			}
			return expr.Eval(l.tagActive), nil
		}
		break // first non-comment, non-blank line: constraints must precede it
	}
	return true, nil
}

// tagActive reports whether a build tag is satisfied in this toolchain's
// default configuration.
func (l *Loader) tagActive(tag string) bool {
	if tag == runtime.GOOS || tag == runtime.GOARCH || tag == "unix" && unixOS[runtime.GOOS] {
		return true
	}
	if strings.HasPrefix(tag, "go1.") {
		return releaseTagActive(tag)
	}
	for _, t := range l.Tags {
		if t == tag {
			return true
		}
	}
	return false
}

var unixOS = map[string]bool{
	"aix": true, "android": true, "darwin": true, "dragonfly": true,
	"freebsd": true, "illumos": true, "ios": true, "linux": true,
	"netbsd": true, "openbsd": true, "solaris": true,
}

// releaseTagActive reports whether a go1.N tag is at or below the
// running toolchain's minor version.
func releaseTagActive(tag string) bool {
	var n int
	if _, err := fmt.Sscanf(tag, "go1.%d", &n); err != nil {
		return false
	}
	cur := runtime.Version() // e.g. "go1.24.0"
	var major int
	if _, err := fmt.Sscanf(cur, "go1.%d", &major); err != nil {
		return true // unusual toolchain string: accept the tag
	}
	return n <= major
}

// LoadRepo loads every package in the module (skipping testdata, hidden
// directories, and directories with no buildable files) into a Program.
// Parsing runs fully parallel; type-checking runs in dependency waves
// so that independent packages check concurrently while every package
// still sees its module-internal imports fully checked.
func (l *Loader) LoadRepo() (*Program, error) {
	var dirs []string
	err := filepath.WalkDir(l.Root, func(path string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if !d.IsDir() {
			return nil
		}
		base := filepath.Base(path)
		if path != l.Root && (strings.HasPrefix(base, ".") || strings.HasPrefix(base, "_") || base == "testdata") {
			return filepath.SkipDir
		}
		names, gerr := l.goFiles(path)
		if gerr != nil || len(names) == 0 {
			return nil //nolint: unreadable dirs and file-less dirs are skipped
		}
		dirs = append(dirs, path)
		return nil
	})
	if err != nil {
		return nil, err
	}

	// Phase 1: parse every package concurrently.
	paths := make([]string, len(dirs))
	pkgs := make([]*Package, len(dirs))
	errs := make([]error, len(dirs))
	var wg sync.WaitGroup
	sem := make(chan struct{}, runtime.GOMAXPROCS(0))
	for i, dir := range dirs {
		rel, rerr := filepath.Rel(l.Root, dir)
		if rerr != nil {
			return nil, rerr
		}
		path := l.Module
		if rel != "." {
			path = l.Module + "/" + filepath.ToSlash(rel)
		}
		paths[i] = path
		wg.Add(1)
		go func(i int, dir, path string) {
			defer wg.Done()
			sem <- struct{}{}
			defer func() { <-sem }()
			pkgs[i], errs[i] = l.parseDir(dir, path)
		}(i, dir, path)
	}
	wg.Wait()
	for i, e := range errs {
		if e != nil {
			return nil, fmt.Errorf("lint: load %s: %w", paths[i], e)
		}
	}

	// Phase 2: type-check in dependency waves. The wave graph comes from
	// the parsed import declarations, so it covers exactly what the type
	// checker will ask the importer for.
	byPath := make(map[string]*Package, len(pkgs))
	for _, p := range pkgs {
		byPath[p.Path] = p
	}
	pending := make(map[string]int, len(pkgs)) // path -> unchecked internal deps
	dependents := make(map[string][]string)    // path -> packages importing it
	for _, p := range pkgs {
		deps := map[string]bool{}
		for _, f := range p.Files {
			for _, imp := range f.Imports {
				ip, ierr := strconv.Unquote(imp.Path.Value)
				if ierr != nil {
					continue
				}
				if (ip == l.Module || strings.HasPrefix(ip, l.Module+"/")) && byPath[ip] != nil && ip != p.Path {
					deps[ip] = true
				}
			}
		}
		pending[p.Path] = len(deps)
		for d := range deps {
			dependents[d] = append(dependents[d], p.Path)
		}
	}
	wave := []string{}
	for _, p := range pkgs {
		if pending[p.Path] == 0 {
			wave = append(wave, p.Path)
		}
	}
	checked := 0
	for len(wave) > 0 {
		sort.Strings(wave) // deterministic scheduling order
		var cwg sync.WaitGroup
		for _, path := range wave {
			cwg.Add(1)
			go func(pkg *Package) {
				defer cwg.Done()
				sem <- struct{}{}
				defer func() { <-sem }()
				l.check(pkg)
			}(byPath[path])
		}
		cwg.Wait()
		checked += len(wave)
		var next []string
		for _, path := range wave {
			for _, dep := range dependents[path] {
				pending[dep]--
				if pending[dep] == 0 {
					next = append(next, dep)
				}
			}
		}
		wave = next
	}
	// An import cycle leaves packages with pending deps; check them
	// sequentially so the type checker reports the cycle as an error.
	if checked < len(pkgs) {
		for _, p := range pkgs {
			l.check(p)
		}
	}

	prog := &Program{Fset: l.fset, Root: l.Root, Module: l.Module, Pkgs: pkgs}
	sort.Slice(prog.Pkgs, func(i, j int) bool { return prog.Pkgs[i].Path < prog.Pkgs[j].Path })
	return prog, nil
}

// FindModuleRoot walks up from dir to the directory holding go.mod and
// returns it with the module path parsed from the file.
func FindModuleRoot(dir string) (root, module string, err error) {
	dir, err = filepath.Abs(dir)
	if err != nil {
		return "", "", err
	}
	for {
		data, rerr := os.ReadFile(filepath.Join(dir, "go.mod"))
		if rerr == nil {
			for _, line := range strings.Split(string(data), "\n") {
				line = strings.TrimSpace(line)
				if rest, ok := strings.CutPrefix(line, "module "); ok {
					return dir, strings.TrimSpace(rest), nil
				}
			}
			return "", "", fmt.Errorf("lint: %s/go.mod has no module directive", dir)
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			return "", "", fmt.Errorf("lint: no go.mod found above %s", dir)
		}
		dir = parent
	}
}
