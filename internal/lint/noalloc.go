package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// NoAlloc enforces the zero-allocation contract on annotated hot-path
// functions. A function whose doc comment contains a line starting with
//
//	//cad3:noalloc
//
// must not contain constructs that reach the allocator:
//
//   - function literals that capture variables (a closure allocates its
//     environment on every evaluation);
//   - map literals, map/chan make, slice literals and slice make —
//     except the append(buf, make([]T, n)...) extension pattern, which
//     the compiler recognizes and does not materialize;
//   - new(T);
//   - non-constant string concatenation and string<->[]byte conversions;
//   - fmt.* calls and errors.New (both always allocate);
//   - implicit interface conversions at call boundaries (boxing);
//   - go statements (a goroutine allocates its stack).
//
// Independent of annotations, the analyzer also enforces the repo's
// pooled-send contract everywhere: an encode closure handed to
// SendPooled must not capture variables — SendPooled exists so the
// telemetry fast path stays allocation-free, and a capturing closure
// silently reintroduces one heap allocation per message sent.
var NoAlloc = &Analyzer{
	Name:   "noalloc",
	Doc:    "//cad3:noalloc functions must not contain allocating constructs",
	RunPkg: runNoAlloc,
}

// NoAllocTag marks a function as allocation-free in its doc comment.
const NoAllocTag = "//cad3:noalloc"

func runNoAlloc(prog *Program, pkg *Package) []Finding {
	var out []Finding
	for _, file := range pkg.Files {
		for _, decl := range file.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Body == nil {
				continue
			}
			if hasNoAllocTag(fn.Doc) {
				c := &allocChecker{prog: prog, pkg: pkg, fn: fn, out: &out}
				c.check()
			}
		}
		checkSendPooledClosures(prog, pkg, file, &out)
	}
	return out
}

func hasNoAllocTag(doc *ast.CommentGroup) bool {
	if doc == nil {
		return false
	}
	for _, c := range doc.List {
		if strings.HasPrefix(c.Text, NoAllocTag) {
			return true
		}
	}
	return false
}

type allocChecker struct {
	prog *Program
	pkg  *Package
	fn   *ast.FuncDecl
	out  *[]Finding
	// extensionMakes are make(...) calls inside append(x, make(...)...) —
	// the compiler-recognized no-allocation extension idiom.
	extensionMakes map[*ast.CallExpr]bool
}

func (c *allocChecker) report(pos token.Pos, msg string) {
	*c.out = append(*c.out, Finding{
		Pos:      c.prog.Fset.Position(pos),
		Analyzer: "noalloc",
		Message:  c.fn.Name.Name + " is //cad3:noalloc but " + msg,
	})
}

func (c *allocChecker) check() {
	c.extensionMakes = map[*ast.CallExpr]bool{}
	ast.Inspect(c.fn.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok || calleeName(call) != "append" || call.Ellipsis == token.NoPos || len(call.Args) != 2 {
			return true
		}
		if mk, ok := call.Args[1].(*ast.CallExpr); ok && calleeName(mk) == "make" {
			c.extensionMakes[mk] = true
		}
		return true
	})

	ast.Inspect(c.fn.Body, func(n ast.Node) bool {
		switch x := n.(type) {
		case *ast.FuncLit:
			if caps := capturedVars(c.pkg, x); len(caps) > 0 {
				c.report(x.Pos(), "contains a closure capturing "+strings.Join(caps, ", ")+" (allocates its environment per call)")
			}
			return true
		case *ast.GoStmt:
			c.report(x.Pos(), "spawns a goroutine (allocates a stack)")
		case *ast.CompositeLit:
			t := c.pkg.Info.Types[x].Type
			if t == nil {
				return true
			}
			switch t.Underlying().(type) {
			case *types.Map:
				c.report(x.Pos(), "contains a map literal (allocates)")
			case *types.Slice:
				c.report(x.Pos(), "contains a slice literal (allocates)")
			}
		case *ast.CallExpr:
			c.checkCall(x)
		case *ast.BinaryExpr:
			if x.Op != token.ADD {
				return true
			}
			tv := c.pkg.Info.Types[ast.Expr(x)]
			if tv.Value != nil {
				return true // constant-folded: free
			}
			if t := tv.Type; t != nil {
				if b, ok := t.Underlying().(*types.Basic); ok && b.Info()&types.IsString != 0 {
					c.report(x.Pos(), "concatenates strings at runtime (allocates)")
				}
			}
		}
		return true
	})
}

func (c *allocChecker) checkCall(call *ast.CallExpr) {
	// Conversions: T(x) where the callee is a type, not a function.
	if tv, ok := c.pkg.Info.Types[call.Fun]; ok && tv.IsType() && len(call.Args) == 1 {
		from := c.pkg.Info.Types[call.Args[0]].Type
		to := tv.Type
		if from != nil && isStringByteConversion(from, to) {
			c.report(call.Pos(), "converts between string and []byte (copies and allocates)")
		}
		return
	}
	switch calleeName(call) {
	case "make":
		if c.extensionMakes[call] {
			return
		}
		c.report(call.Pos(), "calls make (allocates); pool or preallocate the buffer instead")
		return
	case "new":
		if tv, ok := c.pkg.Info.Types[call.Fun]; !ok || !tv.IsType() {
			c.report(call.Pos(), "calls new (allocates)")
		}
		return
	}
	if sel, ok := call.Fun.(*ast.SelectorExpr); ok {
		if id, ok := sel.X.(*ast.Ident); ok {
			if obj, isPkg := c.pkg.Info.Uses[id].(*types.PkgName); isPkg {
				switch obj.Imported().Path() {
				case "fmt":
					c.report(call.Pos(), "calls fmt."+sel.Sel.Name+" (allocates)")
					return
				case "errors":
					if sel.Sel.Name == "New" {
						c.report(call.Pos(), "calls errors.New (allocates)")
						return
					}
				}
			}
		}
	}
	c.checkBoxing(call)
}

// checkBoxing flags arguments implicitly converted to interface
// parameters — the conversion boxes the value on the heap.
func (c *allocChecker) checkBoxing(call *ast.CallExpr) {
	sig := c.callSignature(call)
	if sig == nil {
		return
	}
	params := sig.Params()
	for i, arg := range call.Args {
		var pt types.Type
		switch {
		case sig.Variadic() && i >= params.Len()-1:
			if call.Ellipsis != token.NoPos {
				continue // forwarding a slice: no per-element boxing
			}
			last := params.At(params.Len() - 1).Type()
			if sl, ok := last.(*types.Slice); ok {
				pt = sl.Elem()
			}
		case i < params.Len():
			pt = params.At(i).Type()
		}
		if pt == nil {
			continue
		}
		if _, isIface := pt.Underlying().(*types.Interface); !isIface {
			continue
		}
		if _, isTypeParam := pt.(*types.TypeParam); isTypeParam {
			continue
		}
		at := c.pkg.Info.Types[arg]
		if at.Type == nil || at.IsNil() {
			continue
		}
		if _, argIsIface := at.Type.Underlying().(*types.Interface); argIsIface {
			continue
		}
		c.report(arg.Pos(), "passes a concrete value where an interface is expected (boxes on the heap)")
	}
}

// callSignature resolves the callee's *types.Signature, or nil for
// builtins, type conversions, and unresolved calls.
func (c *allocChecker) callSignature(call *ast.CallExpr) *types.Signature {
	if tv, ok := c.pkg.Info.Types[call.Fun]; ok {
		if tv.IsType() {
			return nil
		}
		if sig, ok := tv.Type.(*types.Signature); ok {
			return sig
		}
	}
	return nil
}

// isStringByteConversion reports string <-> []byte/[]rune conversions.
func isStringByteConversion(from, to types.Type) bool {
	isStr := func(t types.Type) bool {
		b, ok := t.Underlying().(*types.Basic)
		return ok && b.Info()&types.IsString != 0
	}
	isBytes := func(t types.Type) bool {
		sl, ok := t.Underlying().(*types.Slice)
		if !ok {
			return false
		}
		b, ok := sl.Elem().Underlying().(*types.Basic)
		return ok && (b.Kind() == types.Byte || b.Kind() == types.Rune || b.Kind() == types.Uint8 || b.Kind() == types.Int32)
	}
	return (isStr(from) && isBytes(to)) || (isBytes(from) && isStr(to))
}

// capturedVars lists the variables a function literal captures from an
// enclosing function scope, sorted by name. Package-level objects and
// the literal's own parameters/locals do not count — only function-local
// variables declared outside the literal (those force an environment
// allocation when the closure value is built).
func capturedVars(pkg *Package, lit *ast.FuncLit) []string {
	pkgScope := pkg.Types.Scope()
	seen := map[string]bool{}
	var names []string
	ast.Inspect(lit.Body, func(n ast.Node) bool {
		id, ok := n.(*ast.Ident)
		if !ok {
			return true
		}
		v, ok := pkg.Info.Uses[id].(*types.Var)
		if !ok || v.IsField() {
			return true
		}
		if pos := v.Pos(); pos >= lit.Pos() && pos <= lit.End() {
			return true // the literal's own params/locals
		}
		if p := v.Parent(); p == nil || p == pkgScope || p == types.Universe {
			return true // package-level or universe: addressed statically
		}
		if !seen[v.Name()] {
			seen[v.Name()] = true
			names = append(names, v.Name())
		}
		return true
	})
	sort.Strings(names)
	return names
}

// checkSendPooledClosures enforces the pooled-send contract everywhere:
// the encode callback must be a reusable value or a capture-free
// literal, never a capturing closure built per call.
func checkSendPooledClosures(prog *Program, pkg *Package, file *ast.File, out *[]Finding) {
	ast.Inspect(file, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok || calleeName(call) != "SendPooled" || len(call.Args) < 2 {
			return true
		}
		lit, ok := call.Args[1].(*ast.FuncLit)
		if !ok {
			return true
		}
		if caps := capturedVars(pkg, lit); len(caps) > 0 {
			*out = append(*out, Finding{
				Pos:      prog.Fset.Position(lit.Pos()),
				Analyzer: "noalloc",
				Message: "SendPooled encode closure captures " + strings.Join(caps, ", ") +
					" — this allocates per send; hoist a reusable closure so the pooled fast path stays allocation-free",
			})
		}
		return true
	})
}
