package vehicle

import (
	"testing"

	"cad3/internal/stream"
)

func countTopic(t *testing.T, b *stream.Broker, topic string) int {
	t.Helper()
	parts, err := b.PartitionCount(topic)
	if err != nil {
		t.Fatal(err)
	}
	n := 0
	for p := 0; p < parts; p++ {
		msgs, err := b.Fetch(topic, int32(p), 0, 10_000)
		if err != nil {
			t.Fatal(err)
		}
		n += len(msgs)
		stream.RecycleMessages(msgs)
	}
	return n
}

// TestVehicleRebind moves a vehicle's stream affinity between brokers
// mid-replay — the shard-handover hook: records sent after Rebind land
// on the destination broker, and warning polls follow too.
func TestVehicleRebind(t *testing.T) {
	src, srcClient := testBrokerClient(t)
	dst, dstClient := testBrokerClient(t)
	v, err := New(Config{ID: 9, Client: srcClient, Records: testRecords(4), Loop: true})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := v.SendNext(0); err != nil {
		t.Fatal(err)
	}
	if err := v.Rebind(dstClient); err != nil {
		t.Fatal(err)
	}
	if _, err := v.SendNext(1); err != nil {
		t.Fatal(err)
	}
	if _, err := v.SendNext(2); err != nil {
		t.Fatal(err)
	}
	if got := countTopic(t, src, stream.TopicInData); got != 1 {
		t.Fatalf("source broker holds %d telemetry records, want 1", got)
	}
	if got := countTopic(t, dst, stream.TopicInData); got != 2 {
		t.Fatalf("destination broker holds %d telemetry records, want 2", got)
	}
	if _, err := v.PollWarnings(); err != nil {
		t.Fatalf("warning poll against the destination: %v", err)
	}
	if err := v.Rebind(nil); err == nil {
		t.Fatal("nil rebind accepted")
	}
}
