// Package vehicle emulates the connected vehicles of the paper's testbed
// (the "Kafka Producers" and warning consumers on PC1): each vehicle
// replays dataset records to its RSU's IN-DATA topic at 10 Hz and polls
// OUT-DATA every 10 ms for warnings, measuring end-to-end latency.
package vehicle

import (
	"context"
	"errors"
	"fmt"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"cad3/internal/core"
	"cad3/internal/flow"
	"cad3/internal/metrics"
	"cad3/internal/obsv"
	"cad3/internal/stream"
	"cad3/internal/trace"
)

// Defaults from the paper's evaluation setup.
const (
	// DefaultSendInterval is the 10 Hz status update period.
	DefaultSendInterval = 100 * time.Millisecond
	// DefaultPollInterval is the warning pull period ("each Kafka
	// consumer pulls every 10 ms to avoid consuming the bandwidth").
	DefaultPollInterval = 10 * time.Millisecond
)

// ErrNoRecords is returned when a vehicle has nothing to replay.
var ErrNoRecords = errors.New("vehicle: no records to replay")

// Config configures one emulated vehicle.
type Config struct {
	// ID is the vehicle's car ID; warnings for other cars are ignored.
	ID trace.CarID
	// Client reaches the serving RSU's broker. Required.
	Client stream.Client
	// Records is the telemetry to replay, in order. Required.
	Records []trace.Record
	// SendInterval overrides the 10 Hz update period.
	SendInterval time.Duration
	// PollInterval overrides the 10 ms warning poll.
	PollInterval time.Duration
	// Loop restarts the replay when the records run out.
	Loop bool
	// JSONWire publishes telemetry as JSON instead of the compact binary
	// codec — the debugging/interop fallback (RSUs decode both).
	JSONWire bool
	// Pacing enables send-side congestion response when MaxDecimation > 0:
	// a backpressured send doubles the vehicle's decimation factor (send
	// every k-th sample, drop the rest locally) instead of retrying, and a
	// streak of accepted sends earns the rate back — the AIMD response
	// DSRC congestion control mandates for status-message channels. The
	// zero value leaves the vehicle unpaced (backpressure surfaces as a
	// send error).
	Pacing flow.PacerConfig
	// Now injects the clock. Nil selects time.Now.
	Now func() time.Time
}

// Vehicle is one emulated connected vehicle.
type Vehicle struct {
	cfg      Config
	producer *stream.Producer
	consumer *stream.Consumer
	// pacer is the send-side congestion response (nil = unpaced).
	pacer *flow.Pacer
	// key is the precomputed partitioning key ("car-<id>").
	key []byte
	// encodeRec is the reusable SendPooled encode callback; it reads the
	// pending* staging fields so the binary fast path builds no closure
	// (and therefore allocates nothing) per send. Each vehicle has a
	// single sender goroutine, so plain fields suffice.
	encodeRec  func(dst []byte) []byte
	pendingRec trace.Record
	pendingTC  obsv.TraceContext

	sent     atomic.Int64
	received atomic.Int64
	// latencies holds end-to-end warning latencies (send -> receipt),
	// reconstructed at millisecond resolution from the warning body.
	latencies *metrics.LatencyRecorder
	// traced streams the microsecond-precision live breakdowns carried by
	// the wire-format trace context (Tx/Queue/Processing/Dissemination per
	// warning) — the vehicle is both the trace origin (StageSent on send)
	// and terminus (StageDeliver on receipt).
	traced    *metrics.BreakdownAccumulator
	bandwidth *metrics.BandwidthMeter

	// pollMu guards the reused warning-poll scratch buffer.
	pollMu  sync.Mutex
	pollBuf []stream.Message
}

// New validates the config and prepares a vehicle.
func New(cfg Config) (*Vehicle, error) {
	if cfg.Client == nil {
		return nil, errors.New("vehicle: config requires a client")
	}
	if len(cfg.Records) == 0 {
		return nil, ErrNoRecords
	}
	if cfg.SendInterval <= 0 {
		cfg.SendInterval = DefaultSendInterval
	}
	if cfg.PollInterval <= 0 {
		cfg.PollInterval = DefaultPollInterval
	}
	if cfg.Now == nil {
		cfg.Now = time.Now
	}
	p, err := stream.NewProducer(cfg.Client, stream.TopicInData)
	if err != nil {
		return nil, fmt.Errorf("vehicle %d: %w", cfg.ID, err)
	}
	c, err := stream.NewConsumer(cfg.Client, stream.TopicOutData, 0)
	if err != nil {
		return nil, fmt.Errorf("vehicle %d: %w", cfg.ID, err)
	}
	v := &Vehicle{
		cfg:       cfg,
		producer:  p,
		consumer:  c,
		key:       []byte("car-" + strconv.FormatInt(int64(cfg.ID), 10)),
		latencies: metrics.NewLatencyRecorder(),
		traced:    metrics.NewBreakdownAccumulator(),
		bandwidth: metrics.NewBandwidthMeter(),
	}
	v.encodeRec = func(dst []byte) []byte {
		return core.AppendRecordTraced(dst, v.pendingRec, v.pendingTC)
	}
	if cfg.Pacing.MaxDecimation > 0 {
		v.pacer = flow.NewPacer(cfg.Pacing)
	}
	return v, nil
}

// SendNext publishes the record at the given replay index (modulo the
// record count when looping), stamped with the current time so latency is
// measured from transmission. It returns the stamped record.
//
// A paced vehicle (Config.Pacing) may not transmit at all: under an
// elevated decimation factor most samples are dropped locally, and a send
// the broker refuses with backpressure is absorbed — the pacer doubles its
// decimation instead of the vehicle retrying or erroring out. Either way
// the returned error is nil; Sent() tells how many records actually left.
func (v *Vehicle) SendNext(i int) (trace.Record, error) {
	if !v.cfg.Loop && i >= len(v.cfg.Records) {
		return trace.Record{}, ErrNoRecords
	}
	rec := v.cfg.Records[i%len(v.cfg.Records)]
	rec.Car = v.cfg.ID
	rec.TimestampMs = v.cfg.Now().UnixMilli()
	if v.pacer != nil && !v.pacer.Tick() {
		// Locally decimated: the congestion response cuts the channel rate
		// at the source, no traffic reaches the broker.
		return rec, nil
	}
	var payloadLen int
	var err error
	if v.cfg.JSONWire {
		var payload []byte
		payload, err = core.EncodeRecordJSON(rec)
		if err != nil {
			return trace.Record{}, fmt.Errorf("vehicle %d: encode: %w", v.cfg.ID, err)
		}
		_, _, err = v.producer.Send(v.key, payload)
		payloadLen = len(payload)
	} else {
		// Binary fast path: encode into a pooled buffer that recycles
		// right after the broker's copy. The trace context rides the
		// frame's padding: StageSent here, StageArrive at the broker,
		// the rest down the RSU pipeline (JSON payloads carry no trace).
		v.pendingRec = rec
		v.pendingTC = obsv.TraceContext{}
		v.pendingTC.Stamp(obsv.StageSent, v.cfg.Now())
		_, _, err = v.producer.SendPooled(v.key, v.encodeRec)
		payloadLen = core.RecordWireSize
	}
	if err != nil {
		if v.pacer != nil && errors.Is(err, flow.ErrBackpressure) {
			// Refused by the gate: never blind-retry — double the
			// decimation and move on. The next samples absorb the cut.
			v.pacer.OnBackpressure()
			return rec, nil
		}
		if v.pacer != nil && errors.Is(err, flow.ErrCircuitOpen) {
			// Every pooled link's breaker is open: the RSU is not
			// answering at all. Worse than backpressure — cut straight
			// to the decimation floor and let the breaker's half-open
			// probes discover recovery; the pacer then earns the rate
			// back through its usual streaks.
			v.pacer.Floor()
			return rec, nil
		}
		return trace.Record{}, fmt.Errorf("vehicle %d: send: %w", v.cfg.ID, err)
	}
	if v.pacer != nil {
		v.pacer.OnSuccess()
	}
	v.sent.Add(1)
	v.bandwidth.Add(payloadLen, v.cfg.Now())
	return rec, nil
}

// PollWarnings drains pending warnings addressed to this vehicle,
// recording end-to-end latency for each. It returns the warnings received
// this round.
func (v *Vehicle) PollWarnings() ([]core.Warning, error) {
	v.pollMu.Lock()
	defer v.pollMu.Unlock()
	//cad3:allow lockdiscipline pollMu exists to serialize drain rounds so pollBuf reuse is safe; the poll is the critical section, and nothing else contends on pollMu
	msgs, err := v.consumer.PollInto(v.pollBuf[:0], 64)
	v.pollBuf = msgs
	var out []core.Warning
	now := v.cfg.Now()
	for _, m := range msgs {
		w, derr := core.DecodeWarning(m.Value)
		if derr != nil {
			continue
		}
		if w.Car != v.cfg.ID {
			continue // broadcast topic: other vehicles' warnings
		}
		v.received.Add(1)
		total := now.UnixMilli() - w.SourceTsMs
		if total < 0 {
			total = 0
		}
		detect := w.DetectedTsMs - w.SourceTsMs
		if detect < 0 {
			detect = 0
		}
		v.latencies.Record(metrics.LatencyBreakdown{
			Queue:         time.Duration(detect) * time.Millisecond,
			Dissemination: time.Duration(total-detect) * time.Millisecond,
		})
		// A traced warning carries the pipeline's per-stage stamps; this
		// receipt is the final one. A complete, monotonic context yields
		// the live µs-precision breakdown of Figure 6.
		if tc, ok := core.WarningTrace(m.Value); ok {
			tc.Stamp(obsv.StageDeliver, now)
			if bd, complete := tc.Breakdown(); complete {
				v.traced.Observe(bd)
			}
		}
		out = append(out, w)
	}
	// DecodeWarning copies into the struct; recycle the payload buffers.
	stream.RecycleMessages(msgs)
	return out, err
}

// Run replays records at SendInterval and polls warnings at PollInterval
// until the context ends or (when not looping) the records run out.
func (v *Vehicle) Run(ctx context.Context) error {
	send := time.NewTicker(v.cfg.SendInterval)
	defer send.Stop()
	poll := time.NewTicker(v.cfg.PollInterval)
	defer poll.Stop()

	i := 0
	for {
		select {
		case <-ctx.Done():
			return ctx.Err()
		case <-send.C:
			if _, err := v.SendNext(i); err != nil {
				if errors.Is(err, ErrNoRecords) {
					return nil
				}
				return err
			}
			i++
		case <-poll.C:
			_, _ = v.PollWarnings() // per-poll errors are transient
		}
	}
}

// Rebind swaps the vehicle's broker client in place: the shard-handover
// hook. When a journey crosses a shard boundary, the city driver moves
// the vehicle's stream affinity to the destination shard's broker —
// telemetry produces and warning polls both follow the new client from
// the next call on. Consumer offsets are preserved (the replicated
// failover case: the destination holds the same log); rebinding to a
// broker with an unrelated OUT-DATA log re-reads or skips accordingly,
// which the warning path tolerates by design (warnings are idempotent
// per (car, source-timestamp)).
func (v *Vehicle) Rebind(client stream.Client) error {
	if client == nil {
		return errors.New("vehicle: rebind requires a client")
	}
	if err := v.producer.SwapClient(client); err != nil {
		return fmt.Errorf("vehicle %d: rebind producer: %w", v.cfg.ID, err)
	}
	if err := v.consumer.SwapClient(client); err != nil {
		return fmt.Errorf("vehicle %d: rebind consumer: %w", v.cfg.ID, err)
	}
	v.cfg.Client = client
	return nil
}

// Sent returns the number of records published.
func (v *Vehicle) Sent() int64 { return v.sent.Load() }

// Pacer returns the vehicle's send-side pacer, or nil when unpaced.
func (v *Vehicle) Pacer() *flow.Pacer { return v.pacer }

// Received returns the number of warnings addressed to this vehicle.
func (v *Vehicle) Received() int64 { return v.received.Load() }

// Latencies reports the recorded warning latency breakdowns.
func (v *Vehicle) Latencies() metrics.LatencyReport { return v.latencies.Report() }

// TracedLatencies reports the live wire-trace breakdowns (µs precision,
// all four Figure 6 components). Zero counts when the pipeline ran
// untraced (JSON wire, or pre-trace peers).
func (v *Vehicle) TracedLatencies() metrics.LatencyReport { return v.traced.Report() }

// TracedCount returns the number of fully-traced warnings received.
func (v *Vehicle) TracedCount() int { return v.traced.Count() }

// MergeTracedInto folds this vehicle's live-trace streams into a
// fleet-level accumulator.
func (v *Vehicle) MergeTracedInto(dst *metrics.BreakdownAccumulator) { dst.Merge(v.traced) }

// BandwidthBitsPerSec returns the vehicle's average uplink rate.
func (v *Vehicle) BandwidthBitsPerSec() float64 { return v.bandwidth.RateBitsPerSec() }

// Fleet runs a set of vehicles together.
type Fleet struct {
	vehicles []*Vehicle
}

// NewFleet builds n vehicles replaying slices of records round-robin.
// clientFor returns the broker client for vehicle i (vehicles may attach
// to different RSUs).
func NewFleet(n int, records []trace.Record, clientFor func(i int) stream.Client, opts Config) (*Fleet, error) {
	if n <= 0 {
		return nil, errors.New("vehicle: fleet size must be positive")
	}
	if len(records) == 0 {
		return nil, ErrNoRecords
	}
	f := &Fleet{vehicles: make([]*Vehicle, 0, n)}
	for i := 0; i < n; i++ {
		// Deal records round-robin so vehicles replay distinct slices.
		var slice []trace.Record
		for j := i; j < len(records); j += n {
			slice = append(slice, records[j])
		}
		if len(slice) == 0 {
			slice = records
		}
		cfg := opts
		cfg.ID = trace.CarID(i + 1)
		cfg.Client = clientFor(i)
		cfg.Records = slice
		v, err := New(cfg)
		if err != nil {
			return nil, fmt.Errorf("fleet vehicle %d: %w", i, err)
		}
		f.vehicles = append(f.vehicles, v)
	}
	return f, nil
}

// Run drives every vehicle concurrently until the context ends.
func (f *Fleet) Run(ctx context.Context) error {
	var wg sync.WaitGroup
	errs := make([]error, len(f.vehicles))
	for i, v := range f.vehicles {
		wg.Add(1)
		go func(i int, v *Vehicle) {
			defer wg.Done()
			if err := v.Run(ctx); err != nil && !errors.Is(err, context.Canceled) &&
				!errors.Is(err, context.DeadlineExceeded) {
				errs[i] = err
			}
		}(i, v)
	}
	wg.Wait()
	return errors.Join(errs...)
}

// Vehicles returns the fleet members.
func (f *Fleet) Vehicles() []*Vehicle { return f.vehicles }

// TotalSent sums records published across the fleet.
func (f *Fleet) TotalSent() int64 {
	var total int64
	for _, v := range f.vehicles {
		total += v.Sent()
	}
	return total
}

// TotalReceived sums warnings received across the fleet.
func (f *Fleet) TotalReceived() int64 {
	var total int64
	for _, v := range f.vehicles {
		total += v.Received()
	}
	return total
}
