package vehicle_test

import (
	"fmt"

	"cad3/internal/flow"
	"cad3/internal/geo"
	"cad3/internal/stream"
	"cad3/internal/trace"
	"cad3/internal/vehicle"
)

// Example_pacing shows a vehicle's send-side congestion response: a
// backpressured send doubles the decimation factor (every second sample is
// then dropped locally), and a streak of accepted sends earns the full
// rate back — no retries ever hit the broker.
func Example_pacing() {
	// A deliberately tiny broker: one partition, one credit.
	broker := stream.NewBroker(stream.BrokerConfig{
		FlowCapacity: 1,
		FlowPolicy:   flow.TailDrop{},
	})
	for _, topic := range []string{stream.TopicInData, stream.TopicOutData} {
		if err := broker.CreateTopic(topic, 1); err != nil {
			panic(err)
		}
	}
	client := stream.NewInProcClient(broker)

	v, err := vehicle.New(vehicle.Config{
		ID:     7,
		Client: client,
		Loop:   true,
		Records: []trace.Record{{
			Car: 7, Road: 3, RoadType: geo.Motorway, Speed: 100,
		}},
		Pacing: flow.PacerConfig{MaxDecimation: 8, RecoverAfter: 2},
	})
	if err != nil {
		panic(err)
	}

	// First send takes the only credit; the second is refused and the
	// pacer backs off instead of surfacing an error.
	v.SendNext(0)
	v.SendNext(1)
	fmt.Println("decimation after backpressure:", v.Pacer().Decimation())

	// Drain the queue, then keep sending: accepted sends recover the rate.
	consumer, _ := stream.NewConsumer(client, stream.TopicInData, 0)
	for i := 2; v.Pacer().Decimation() > 1 && i < 20; i++ {
		msgs, _ := consumer.Poll(8)
		stream.RecycleMessages(msgs)
		v.SendNext(i)
	}
	fmt.Println("decimation after recovery:", v.Pacer().Decimation())
	fmt.Println("records on the wire:", v.Sent())

	// Output:
	// decimation after backpressure: 2
	// decimation after recovery: 1
	// records on the wire: 3
}
