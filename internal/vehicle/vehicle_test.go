package vehicle

import (
	"context"
	"errors"
	"testing"
	"time"

	"cad3/internal/core"
	"cad3/internal/flow"
	"cad3/internal/geo"
	"cad3/internal/stream"
	"cad3/internal/trace"
)

func testBrokerClient(t *testing.T) (*stream.Broker, stream.Client) {
	t.Helper()
	b := stream.NewBroker(stream.BrokerConfig{})
	for _, topic := range []string{stream.TopicInData, stream.TopicOutData} {
		if err := b.CreateTopic(topic, stream.DefaultPartitions); err != nil {
			t.Fatal(err)
		}
	}
	return b, stream.NewInProcClient(b)
}

func testRecords(n int) []trace.Record {
	out := make([]trace.Record, n)
	for i := range out {
		out[i] = trace.Record{
			Car: 1, Road: 7, RoadType: geo.MotorwayLink, Speed: 30 + float64(i),
			Accel: 0.5, Hour: 9, Day: 4, RoadMeanSpeed: 35,
		}
	}
	return out
}

func TestVehicleSendNext(t *testing.T) {
	_, client := testBrokerClient(t)
	v, err := New(Config{ID: 9, Client: client, Records: testRecords(3)})
	if err != nil {
		t.Fatal(err)
	}
	rec, err := v.SendNext(0)
	if err != nil {
		t.Fatal(err)
	}
	if rec.Car != 9 {
		t.Errorf("sent record carries car %d, want 9", rec.Car)
	}
	if rec.TimestampMs == 0 {
		t.Error("timestamp not stamped")
	}
	if v.Sent() != 1 {
		t.Errorf("Sent = %d", v.Sent())
	}

	// Replay end without looping.
	if _, err := v.SendNext(3); !errors.Is(err, ErrNoRecords) {
		t.Errorf("err = %v, want ErrNoRecords", err)
	}
	// With looping, index wraps.
	v2, _ := New(Config{ID: 9, Client: client, Records: testRecords(3), Loop: true})
	if _, err := v2.SendNext(7); err != nil {
		t.Errorf("looped send: %v", err)
	}

	// The record landed in IN-DATA.
	c, _ := stream.NewConsumer(client, stream.TopicInData, 0)
	msgs, _ := c.Poll(16)
	if len(msgs) != 2 {
		t.Errorf("IN-DATA has %d messages, want 2", len(msgs))
	}
}

func TestVehiclePollWarnings(t *testing.T) {
	_, client := testBrokerClient(t)
	v, err := New(Config{ID: 5, Client: client, Records: testRecords(1)})
	if err != nil {
		t.Fatal(err)
	}

	now := time.Now().UnixMilli()
	mine := core.Warning{Car: 5, Road: 7, SourceTsMs: now - 40, DetectedTsMs: now - 15}
	other := core.Warning{Car: 6, Road: 7, SourceTsMs: now - 40, DetectedTsMs: now - 15}
	for _, w := range []core.Warning{mine, other} {
		payload, err := core.EncodeWarning(w)
		if err != nil {
			t.Fatal(err)
		}
		if _, _, err := client.Produce(stream.TopicOutData, stream.AutoPartition, nil, payload); err != nil {
			t.Fatal(err)
		}
	}
	// A malformed warning must be skipped silently.
	_, _, _ = client.Produce(stream.TopicOutData, stream.AutoPartition, nil, []byte("junk"))

	got, err := v.PollWarnings()
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 1 || got[0].Car != 5 {
		t.Fatalf("warnings = %+v, want only car 5's", got)
	}
	if v.Received() != 1 {
		t.Errorf("Received = %d", v.Received())
	}
	rep := v.Latencies()
	if rep.Total.Count != 1 {
		t.Fatalf("latency count = %d", rep.Total.Count)
	}
	if rep.Total.Mean < 30*time.Millisecond || rep.Total.Mean > 200*time.Millisecond {
		t.Errorf("latency mean = %v, want ~40ms", rep.Total.Mean)
	}
}

func TestVehicleRunEndsWhenRecordsExhausted(t *testing.T) {
	_, client := testBrokerClient(t)
	v, err := New(Config{
		ID: 2, Client: client, Records: testRecords(3),
		SendInterval: time.Millisecond, PollInterval: time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
	defer cancel()
	if err := v.Run(ctx); err != nil {
		t.Fatalf("Run = %v, want clean end", err)
	}
	if v.Sent() != 3 {
		t.Errorf("Sent = %d, want 3", v.Sent())
	}
	if v.BandwidthBitsPerSec() <= 0 {
		t.Error("bandwidth should be measured")
	}
}

func TestVehicleValidation(t *testing.T) {
	_, client := testBrokerClient(t)
	if _, err := New(Config{Client: client}); !errors.Is(err, ErrNoRecords) {
		t.Errorf("err = %v, want ErrNoRecords", err)
	}
	if _, err := New(Config{Records: testRecords(1)}); err == nil {
		t.Error("want error for nil client")
	}
}

func TestFleetDistributesRecords(t *testing.T) {
	_, client := testBrokerClient(t)
	records := testRecords(10)
	f, err := NewFleet(4, records, func(int) stream.Client { return client }, Config{})
	if err != nil {
		t.Fatal(err)
	}
	if len(f.Vehicles()) != 4 {
		t.Fatalf("fleet size = %d", len(f.Vehicles()))
	}
	// Vehicle IDs are 1..n and each replays a distinct slice.
	var total int
	for i, v := range f.Vehicles() {
		if v.cfg.ID != trace.CarID(i+1) {
			t.Errorf("vehicle %d has ID %d", i, v.cfg.ID)
		}
		total += len(v.cfg.Records)
	}
	if total != 10 {
		t.Errorf("fleet covers %d records, want 10", total)
	}

	if _, err := NewFleet(0, records, func(int) stream.Client { return client }, Config{}); err == nil {
		t.Error("want error for empty fleet")
	}
	if _, err := NewFleet(2, nil, func(int) stream.Client { return client }, Config{}); !errors.Is(err, ErrNoRecords) {
		t.Errorf("err = %v, want ErrNoRecords", err)
	}
}

func TestFleetRun(t *testing.T) {
	_, client := testBrokerClient(t)
	f, err := NewFleet(3, testRecords(9), func(int) stream.Client { return client }, Config{
		SendInterval: time.Millisecond,
		PollInterval: time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
	defer cancel()
	if err := f.Run(ctx); err != nil {
		t.Fatal(err)
	}
	if f.TotalSent() != 9 {
		t.Errorf("TotalSent = %d, want 9", f.TotalSent())
	}
	if f.TotalReceived() != 0 {
		t.Errorf("TotalReceived = %d with no RSU running", f.TotalReceived())
	}
}

// A paced vehicle responds to backpressure by decimating its send rate
// instead of erroring or retrying, then earns the rate back on sustained
// acceptance.
func TestVehiclePacingUnderBackpressure(t *testing.T) {
	// Keyed sends land on one partition; capacity 1 means every second
	// un-drained send is refused.
	b := stream.NewBroker(stream.BrokerConfig{FlowCapacity: 1, FlowPolicy: flow.TailDrop{}})
	for _, topic := range []string{stream.TopicInData, stream.TopicOutData} {
		if err := b.CreateTopic(topic, 1); err != nil {
			t.Fatal(err)
		}
	}
	client := stream.NewInProcClient(b)
	v, err := New(Config{
		ID: 9, Client: client, Records: testRecords(4), Loop: true,
		Pacing: flow.PacerConfig{MaxDecimation: 8, RecoverAfter: 2},
	})
	if err != nil {
		t.Fatal(err)
	}

	// First send is admitted; the queue is now full.
	if _, err := v.SendNext(0); err != nil {
		t.Fatal(err)
	}
	if v.Sent() != 1 {
		t.Fatalf("Sent = %d, want 1", v.Sent())
	}

	// Second send is refused: no error surfaces, the pacer backs off.
	if _, err := v.SendNext(1); err != nil {
		t.Fatalf("backpressured send must not error, got %v", err)
	}
	if v.Sent() != 1 {
		t.Errorf("refused send counted as sent")
	}
	if got := v.Pacer().Decimation(); got != 2 {
		t.Errorf("decimation after backpressure = %d, want 2", got)
	}
	if v.Pacer().Backpressured() != 1 {
		t.Errorf("Backpressured = %d, want 1", v.Pacer().Backpressured())
	}

	// At factor 2, the next sample is dropped locally — the broker sees no
	// traffic at all.
	before := b.BytesIn()
	if _, err := v.SendNext(2); err != nil {
		t.Fatal(err)
	}
	if b.BytesIn() != before {
		t.Error("decimated sample reached the broker")
	}
	if v.Pacer().Decimated() != 1 {
		t.Errorf("Decimated = %d, want 1", v.Pacer().Decimated())
	}

	// Drain the queue; a streak of accepted sends recovers full rate.
	drain := func() {
		t.Helper()
		c, err := stream.NewConsumer(client, stream.TopicInData, 0)
		if err != nil {
			t.Fatal(err)
		}
		msgs, _ := c.Poll(64)
		stream.RecycleMessages(msgs)
	}
	for i := 3; v.Pacer().Decimation() > 1 && i < 40; i++ {
		drain()
		if _, err := v.SendNext(i); err != nil {
			t.Fatal(err)
		}
	}
	if got := v.Pacer().Decimation(); got != 1 {
		t.Errorf("decimation never recovered: %d", got)
	}
}

// An unpaced vehicle surfaces backpressure as a send error (matchable via
// flow.ErrBackpressure) rather than silently dropping.
func TestVehicleUnpacedSurfacesBackpressure(t *testing.T) {
	b := stream.NewBroker(stream.BrokerConfig{FlowCapacity: 1, FlowPolicy: flow.TailDrop{}})
	for _, topic := range []string{stream.TopicInData, stream.TopicOutData} {
		if err := b.CreateTopic(topic, 1); err != nil {
			t.Fatal(err)
		}
	}
	v, err := New(Config{ID: 9, Client: stream.NewInProcClient(b), Records: testRecords(4)})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := v.SendNext(0); err != nil {
		t.Fatal(err)
	}
	if _, err := v.SendNext(1); !errors.Is(err, flow.ErrBackpressure) {
		t.Errorf("got %v, want a backpressure error", err)
	}
}

// TestSendNextNoPerSendClosure pins the binary fast path's allocation
// budget: the only heap traffic per send is the broker's stored-message
// bookkeeping (2 allocs on the accepted path, measured independently in
// the stream package). SendNext itself must add nothing — its encode
// callback is the reusable v.encodeRec, not a per-send capturing closure,
// which is exactly what cad3-vet's noalloc analyzer enforces statically.
func TestSendNextNoPerSendClosure(t *testing.T) {
	_, client := testBrokerClient(t)
	v, err := New(Config{ID: 9, Client: client, Records: testRecords(3), Loop: true})
	if err != nil {
		t.Fatal(err)
	}
	i := 0
	allocs := testing.AllocsPerRun(500, func() {
		if _, serr := v.SendNext(i); serr != nil {
			t.Fatal(serr)
		}
		i++
	})
	if allocs > 2 {
		t.Errorf("SendNext: %v allocs/op, want <= 2 (broker storage only)", allocs)
	}
}
