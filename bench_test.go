// Benchmarks regenerating every table and figure of the paper's
// evaluation (§VI). Each benchmark prints its rows once (the series the
// paper reports) and exposes the headline quantity as a custom metric, so
//
//	go test -bench=. -benchmem
//
// reproduces the whole evaluation. EXPERIMENTS.md records paper-vs-
// measured values.
package cad3_test

import (
	"fmt"
	"sync"
	"testing"
	"time"

	"cad3/internal/experiments"
	"cad3/internal/geo"
	"cad3/internal/netem"
)

// Shared fixtures, built once per benchmark binary.
var (
	benchScenarioOnce sync.Once
	benchScenario     *experiments.Scenario
	benchScenarioErr  error

	benchInputsOnce sync.Once
	benchPool       []experiments.LatencyConfig
	benchLatCfg     experiments.LatencyConfig
	benchInputsErr  error

	printOnce sync.Map
)

func scenario(b *testing.B) *experiments.Scenario {
	b.Helper()
	benchScenarioOnce.Do(func() {
		benchScenario, benchScenarioErr = experiments.BuildScenario(experiments.ScenarioConfig{Cars: 500, Seed: 42})
	})
	if benchScenarioErr != nil {
		b.Fatal(benchScenarioErr)
	}
	return benchScenario
}

func latencyBase(b *testing.B) experiments.LatencyConfig {
	b.Helper()
	benchInputsOnce.Do(func() {
		pool, det, err := experiments.BuildLatencyInputs(42)
		if err != nil {
			benchInputsErr = err
			return
		}
		benchLatCfg = experiments.LatencyConfig{
			Duration: 2 * time.Second,
			Seed:     42,
			Records:  pool,
			Detector: det,
		}
		_ = benchPool
	})
	if benchInputsErr != nil {
		b.Fatal(benchInputsErr)
	}
	return benchLatCfg
}

// printRows prints an experiment's output once per process.
func printRows(name, out string) {
	if _, loaded := printOnce.LoadOrStore(name, true); !loaded {
		fmt.Printf("\n=== %s ===\n%s", name, out)
	}
}

// BenchmarkFigure2SpeedProfiles regenerates the Figure 2 speed-profile
// series (motorway vs motorway link, weekday vs weekend, by hour).
func BenchmarkFigure2SpeedProfiles(b *testing.B) {
	sc := scenario(b)
	b.ResetTimer()
	var series []experiments.SpeedProfileSeries
	for i := 0; i < b.N; i++ {
		series = experiments.RunFigure2(sc)
	}
	b.StopTimer()
	printRows("Figure 2: speed profiles", experiments.FormatFigure2(series))
}

// BenchmarkTable3DatasetStats regenerates the Table III dataset
// statistics after filtering.
func BenchmarkTable3DatasetStats(b *testing.B) {
	sc := scenario(b)
	b.ResetTimer()
	var rows interface{ Len() int }
	_ = rows
	var out string
	for i := 0; i < b.N; i++ {
		out = experiments.FormatTable3(experiments.RunTable3(sc))
	}
	b.StopTimer()
	printRows("Table III: dataset statistics", out)
}

// BenchmarkFigure6aLatencyScaling regenerates the latency-vs-vehicles
// series (Tx / processing / total, 8..256 vehicles) on the discrete-event
// DSRC pipeline.
func BenchmarkFigure6aLatencyScaling(b *testing.B) {
	base := latencyBase(b)
	counts := []int{8, 16, 32, 64, 128, 256}
	b.ResetTimer()
	var results []*experiments.LatencyResult
	for i := 0; i < b.N; i++ {
		var err error
		results, err = experiments.RunLatencyScaling(counts, base)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	last := results[len(results)-1]
	b.ReportMetric(float64(last.Report.Total.Mean.Microseconds())/1000, "ms-total@256")
	printRows("Figure 6a/6c: latency and bandwidth scaling", experiments.FormatLatencyResults(results))
}

// BenchmarkFigure6bDisseminationLatency regenerates the 5-RSU
// dissemination-latency comparison.
func BenchmarkFigure6bDisseminationLatency(b *testing.B) {
	base := latencyBase(b)
	cfg := experiments.MultiRSUConfig{
		MotorwayRSUs:   4,
		VehiclesPerRSU: 128,
		Duration:       2 * time.Second,
		Seed:           42,
		Records:        base.Records,
		Detector:       base.Detector,
	}
	b.ResetTimer()
	var results []experiments.RSUResult
	for i := 0; i < b.N; i++ {
		var err error
		results, err = experiments.RunMultiRSU(cfg)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	b.ReportMetric(float64(results[0].Dissemination.Mean.Microseconds())/1000, "ms-dissem-link")
	printRows("Figure 6b/6d: multi-RSU dissemination and bandwidth", experiments.FormatRSUResults(results))
}

// BenchmarkFigure6cBandwidth isolates the bandwidth-vs-vehicles series
// (per-vehicle ~20 kb/s; total ~5 Mb/s at 256 << 27 Mb/s DSRC).
func BenchmarkFigure6cBandwidth(b *testing.B) {
	base := latencyBase(b)
	base.Vehicles = 256
	b.ResetTimer()
	var res *experiments.LatencyResult
	for i := 0; i < b.N; i++ {
		var err error
		res, err = experiments.RunLatency(base)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	b.ReportMetric(res.PerVehicleBps/1000, "kbps-per-vehicle")
	b.ReportMetric(res.TotalBps/1e6, "mbps-total")
}

// BenchmarkFigure6dPerRSUBandwidth isolates the per-RSU bandwidth bars
// (the link RSU slightly higher from CO-DATA).
func BenchmarkFigure6dPerRSUBandwidth(b *testing.B) {
	base := latencyBase(b)
	cfg := experiments.MultiRSUConfig{
		MotorwayRSUs:   4,
		VehiclesPerRSU: 64,
		Duration:       time.Second,
		Seed:           43,
		Records:        base.Records,
		Detector:       base.Detector,
	}
	b.ResetTimer()
	var results []experiments.RSUResult
	for i := 0; i < b.N; i++ {
		var err error
		results, err = experiments.RunMultiRSU(cfg)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	b.ReportMetric(results[0].TotalBps()/1e6, "mbps-link-rsu")
	b.ReportMetric(results[1].TotalBps()/1e6, "mbps-mw-rsu")
}

// BenchmarkFigure7ModelComparison regenerates the F1/accuracy comparison
// of centralized vs AD3 vs CAD3.
func BenchmarkFigure7ModelComparison(b *testing.B) {
	sc := scenario(b)
	b.ResetTimer()
	var rows []experiments.ModelRow
	for i := 0; i < b.N; i++ {
		var err error
		rows, err = experiments.RunModelComparison(sc)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	for _, r := range rows {
		b.ReportMetric(r.F1, "f1-"+r.Model)
	}
	printRows("Figure 7 + Table IV: model comparison", experiments.FormatModelRows(rows))
}

// BenchmarkFigure8MesoscopicTrip regenerates the driver-trip timeline.
func BenchmarkFigure8MesoscopicTrip(b *testing.B) {
	sc := scenario(b)
	b.ResetTimer()
	var res *experiments.MesoscopicResult
	for i := 0; i < b.N; i++ {
		var err error
		res, err = experiments.RunMesoscopicTimeline(sc)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	b.ReportMetric(res.Accuracy["CAD3"], "trip-acc-CAD3")
	b.ReportMetric(res.Accuracy["AD3"], "trip-acc-AD3")
	printRows("Figure 8: mesoscopic timeline", experiments.FormatMesoscopic(res))
}

// BenchmarkTable4AccidentEstimation regenerates the TP/FN/E(Lambda)
// table (part of the model comparison; reported separately for the
// Table IV metric).
func BenchmarkTable4AccidentEstimation(b *testing.B) {
	sc := scenario(b)
	b.ResetTimer()
	var rows []experiments.ModelRow
	for i := 0; i < b.N; i++ {
		var err error
		rows, err = experiments.RunModelComparison(sc)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	for _, r := range rows {
		b.ReportMetric(r.ExpectedAccidents, "ELambda-"+r.Model)
	}
}

// BenchmarkTable5RSUPlanning regenerates the RSU deployment plan.
func BenchmarkTable5RSUPlanning(b *testing.B) {
	var fromStats, fromNet []geo.RSUPlanRow
	for i := 0; i < b.N; i++ {
		var err error
		fromStats, fromNet, err = experiments.RunTable5(1.0, 5)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	b.ReportMetric(float64(geo.TotalRSUs(fromStats)), "rsus-from-stats")
	b.ReportMetric(float64(geo.TotalRSUs(fromNet)), "rsus-from-network")
	printRows("Table V: RSU deployment plan (from paper statistics)", experiments.FormatTable5(fromStats))
	printRows("Table V (from sampled synthetic network)", experiments.FormatTable5(fromNet))
}

// BenchmarkTable6InfrastructureSpacing regenerates the roadside
// infrastructure spacing statistics.
func BenchmarkTable6InfrastructureSpacing(b *testing.B) {
	var rows []geo.SpacingStats
	for i := 0; i < b.N; i++ {
		var err error
		rows, err = experiments.RunTable6(0.2, 6)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	b.ReportMetric(rows[0].AvgM, "m-traffic-light-avg")
	printRows("Table VI: infrastructure spacing", experiments.FormatTable6(rows))
}

// BenchmarkMACAccessTime evaluates Equation 5 (channel-access time; §VI-D1
// and the §VII-B dense-deployment case).
func BenchmarkMACAccessTime(b *testing.B) {
	var rows []experiments.MACRow
	for i := 0; i < b.N; i++ {
		var err error
		rows, err = experiments.RunMACAnalysis()
		if err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	for _, r := range rows {
		if r.Vehicles == 256 {
			b.ReportMetric(float64(r.AccessTime.Microseconds())/1000,
				fmt.Sprintf("ms-access-256@MCS%d", int(r.MCS)))
		}
	}
	printRows("Equation 5: MAC channel-access time", experiments.FormatMACRows(rows))
}

// BenchmarkCityScaleCapacity evaluates the §II-B / §VI-D2 scale
// arithmetic.
func BenchmarkCityScaleCapacity(b *testing.B) {
	var c experiments.CityScale
	for i := 0; i < b.N; i++ {
		c = experiments.RunCityScale(2_000_000)
	}
	b.StopTimer()
	b.ReportMetric(c.CentralizedBytesPerSec/1e9, "GBps-centralized")
	b.ReportMetric(float64(c.SystemCapacity)/1e6, "Mvehicles-capacity")
	printRows("City-scale capacity", experiments.FormatCityScale(c))
}

// BenchmarkAblationCollabWeight sweeps Equation 1's fusion weight.
func BenchmarkAblationCollabWeight(b *testing.B) {
	sc := scenario(b)
	b.ResetTimer()
	var rows []experiments.WeightRow
	for i := 0; i < b.N; i++ {
		var err error
		rows, err = experiments.RunCollabWeightSweep(sc, nil)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	printRows("Ablation: collaboration weight", experiments.FormatWeightRows(rows))
}

// BenchmarkAblationSummaryDepth sweeps the summary depth (full-trip mean
// vs last-k).
func BenchmarkAblationSummaryDepth(b *testing.B) {
	sc := scenario(b)
	b.ResetTimer()
	var rows []experiments.DepthRow
	for i := 0; i < b.N; i++ {
		var err error
		rows, err = experiments.RunSummaryDepthSweep(sc, nil)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	printRows("Ablation: summary depth", experiments.FormatDepthRows(rows))
}

// BenchmarkAblationDTFeatures ablates the Decision Tree feature set.
func BenchmarkAblationDTFeatures(b *testing.B) {
	sc := scenario(b)
	b.ResetTimer()
	var rows []experiments.FeatureRow
	for i := 0; i < b.N; i++ {
		var err error
		rows, err = experiments.RunDTFeatureAblation(sc)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	printRows("Ablation: decision-tree features", experiments.FormatFeatureRows(rows))
}

// BenchmarkAblationBatchInterval sweeps the micro-batch window.
func BenchmarkAblationBatchInterval(b *testing.B) {
	base := latencyBase(b)
	base.Vehicles = 64
	base.Duration = time.Second
	b.ResetTimer()
	var rows []experiments.IntervalRow
	for i := 0; i < b.N; i++ {
		var err error
		rows, err = experiments.RunBatchIntervalSweep(base, nil)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	printRows("Ablation: micro-batch interval", experiments.FormatIntervalRows(rows))
}

// BenchmarkAblationPollInterval sweeps the consumer poll period.
func BenchmarkAblationPollInterval(b *testing.B) {
	base := latencyBase(b)
	base.Vehicles = 64
	base.Duration = time.Second
	b.ResetTimer()
	var rows []experiments.IntervalRow
	for i := 0; i < b.N; i++ {
		var err error
		rows, err = experiments.RunPollIntervalSweep(base, nil)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	printRows("Ablation: consumer poll interval", experiments.FormatIntervalRows(rows))
}

// BenchmarkExtensionDetectorComparison scores the standalone detector
// algorithms (the paper's future-work direction).
func BenchmarkExtensionDetectorComparison(b *testing.B) {
	sc := scenario(b)
	b.ResetTimer()
	var rows []experiments.DetectorRow
	for i := 0; i < b.N; i++ {
		var err error
		rows, err = experiments.RunDetectorComparison(sc)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	printRows("Extension: detector algorithms", experiments.FormatDetectorRows(rows))
}

// BenchmarkExtensionMobileHandover drives vehicles along the corridor
// geometry through a live 2-RSU cluster with automatic handover.
func BenchmarkExtensionMobileHandover(b *testing.B) {
	sc := scenario(b)
	b.ResetTimer()
	var res *experiments.MobilityResult
	for i := 0; i < b.N; i++ {
		var err error
		res, err = experiments.RunMobileHandover(sc, experiments.MobilityConfig{Vehicles: 24, Seed: int64(i)})
		if err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	b.ReportMetric(res.AggressiveWarnRate, "warn-rate-aggressive")
	b.ReportMetric(res.NormalWarnRate, "warn-rate-normal")
	printRows("Extension: live mobility", experiments.FormatMobility(res))
}

// BenchmarkExtensionLossImpact measures delivery and abnormal-coverage
// ratios across the coverage radius under the distance-dependent loss
// model.
func BenchmarkExtensionLossImpact(b *testing.B) {
	base := latencyBase(b)
	cfg := experiments.LossConfig{Seed: 42, Records: base.Records, Detector: base.Detector}
	b.ResetTimer()
	var bands []experiments.LossBand
	for i := 0; i < b.N; i++ {
		var err error
		bands, err = experiments.RunLossImpact(cfg)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	b.ReportMetric(bands[0].DeliveryRatio(), "delivery-near")
	b.ReportMetric(bands[len(bands)-1].DeliveryRatio(), "delivery-far")
	printRows("Extension: frame loss vs distance", experiments.FormatLossBands(bands))
}

// BenchmarkExtensionInterference runs the dense-deployment channel study.
func BenchmarkExtensionInterference(b *testing.B) {
	var res *experiments.InterferenceResult
	for i := 0; i < b.N; i++ {
		var err error
		res, err = experiments.RunInterference(experiments.InterferenceConfig{Seed: 42})
		if err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	b.ReportMetric(float64(res.NaiveConflicts), "conflicts-naive")
	b.ReportMetric(float64(res.ManagedConflicts), "conflicts-managed")
	printRows("Extension: interference management", experiments.FormatInterference(res))
}

// BenchmarkExtensionBackhaul samples inter-RSU link delays.
func BenchmarkExtensionBackhaul(b *testing.B) {
	var rows []experiments.BackhaulRow
	for i := 0; i < b.N; i++ {
		var err error
		rows, err = experiments.RunBackhaulAnalysis(42)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	printRows("Extension: backhaul links", experiments.FormatBackhaulRows(rows))
}

// BenchmarkExtensionChainMobility drives vehicles down a 4-hop RSU chain
// with carried-on summaries.
func BenchmarkExtensionChainMobility(b *testing.B) {
	sc := scenario(b)
	b.ResetTimer()
	var res *experiments.ChainResult
	for i := 0; i < b.N; i++ {
		var err error
		res, err = experiments.RunChainMobility(sc, experiments.ChainConfig{Seed: int64(i)})
		if err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	b.ReportMetric(res.FinalAggressiveWarnRate, "final-warn-aggressive")
	b.ReportMetric(res.FinalNormalWarnRate, "final-warn-normal")
	printRows("Extension: multi-hop summary chain", experiments.FormatChain(res))
}

// BenchmarkDSRCChannel256 measures the raw discrete-event channel model:
// one full 10 Hz reporting round of 256 vehicles.
func BenchmarkDSRCChannel256(b *testing.B) {
	start := time.Date(2016, 7, 4, 8, 0, 0, 0, time.UTC)
	for i := 0; i < b.N; i++ {
		m, err := netem.NewMedium(netem.MediumConfig{MCS: netem.MCS3, Seed: int64(i)})
		if err != nil {
			b.Fatal(err)
		}
		for v := 0; v < 256; v++ {
			if _, err := m.Transmit("v", netem.ReportBytes, start); err != nil {
				b.Fatal(err)
			}
		}
	}
}
