# Convenience targets for the CAD3 reproduction.

GO ?= go

.PHONY: all build test test-short test-checks bench bench-json race vet vet-json fmt cover experiments chaos failover overload scenarios city profile linkcheck docs clean

all: build vet test

build:
	$(GO) build ./...

test:
	$(GO) test ./...

test-short:
	$(GO) test -short ./...

bench:
	$(GO) test -run XXX -bench=. -benchmem ./...

# Machine-readable pipeline + wire benchmarks (steady-state vs overload,
# sync vs pipelined vs batched wire), for tracking per-record cost
# across PRs. BENCH_PR4.json is the frozen pre-pipelining baseline.
bench-json:
	$(GO) test -run XXX -bench 'BenchmarkPipeline|BenchmarkWire' -benchmem -json \
		./internal/rsu ./internal/stream > BENCH_PR6.json

race:
	$(GO) test -race ./...

# CPU/heap profiles of the telemetry fast path (wire codec + detection).
# Inspect with: go tool pprof cpu.prof
profile:
	$(GO) test -run XXX -bench 'BenchmarkDetectHotPath|BenchmarkWireCodec' -benchmem \
		-cpuprofile cpu.prof -memprofile mem.prof ./internal/core

# go vet plus the repo-aware analyzers (determinism, pool safety, wire
# layout, zero-alloc, goroutine hygiene, deterministic ordering, lock
# discipline, atomic/plain mixing, wire error exhaustiveness) — see
# DESIGN.md §11 and §16. Results are memoized in .cad3vetcache.
vet:
	$(GO) vet ./...
	$(GO) run ./cmd/cad3-vet ./...

# Machine-readable vet: findings, the //cad3:allow suppression census,
# and cache stats as one JSON object. CI runs this with -max-allows to
# keep the suppression count from growing unnoticed.
vet-json:
	$(GO) run ./cmd/cad3-vet -json ./...

# Debug build with the runtime pool guard: double-recycles of pooled
# buffers panic with both offending call sites.
test-checks:
	$(GO) test -tags cad3_checks ./internal/stream/...

# Hermetic markdown cross-reference check (the CI docs job).
linkcheck:
	$(GO) run ./internal/tools/linkcheck \
		README.md DESIGN.md EXPERIMENTS.md OBSERVABILITY.md SCENARIOS.md ROADMAP.md CHANGES.md

docs: vet linkcheck
	test -z "$$(gofmt -l .)"

fmt:
	gofmt -w .

cover:
	$(GO) test ./internal/... -coverprofile=cover.out && $(GO) tool cover -func=cover.out | tail -1

# Regenerate every table and figure of the paper's evaluation.
experiments:
	$(GO) run ./cmd/cad3-bench

# Crash-safety study: partition + crash + recovery continuity table.
chaos:
	$(GO) run ./cmd/cad3-chaos

# Replicated-broker failover study: leader kill + election + revive,
# acks=all durability and consumer-group handoff accounting.
failover:
	$(GO) run ./cmd/cad3-chaos -failover

# Overload study: goodput / warning-p99 / shed-fraction curves under
# multiplied offered load (graceful degradation).
overload:
	$(GO) run ./cmd/cad3-overload

# Deterministic replay of the scenarios/ regression corpus, plus the
# explorer selfcheck (find -> minimize -> archive on an injected
# failure). See SCENARIOS.md for the spec grammar.
scenarios:
	$(GO) run ./cmd/cad3-scenario -selfcheck

# City-scale acceptance: 100k vehicles over a sharded synthetic city
# (replicated brokers per shard, one virtual clock, replica faults
# mid-run). Exits nonzero unless the settlement ledger is clean and the
# per-shard load skew stays within 1.5x the median. See DESIGN.md §15.
city:
	$(GO) run ./cmd/cad3-city -faults

clean:
	rm -f cover.out test_output.txt bench_output.txt cpu.prof mem.prof core.test
