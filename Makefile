# Convenience targets for the CAD3 reproduction.

GO ?= go

.PHONY: all build test test-short bench race vet fmt cover experiments chaos profile linkcheck docs clean

all: build vet test

build:
	$(GO) build ./...

test:
	$(GO) test ./...

test-short:
	$(GO) test -short ./...

bench:
	$(GO) test -run XXX -bench=. -benchmem ./...

race:
	$(GO) test -race ./...

# CPU/heap profiles of the telemetry fast path (wire codec + detection).
# Inspect with: go tool pprof cpu.prof
profile:
	$(GO) test -run XXX -bench 'BenchmarkDetectHotPath|BenchmarkWireCodec' -benchmem \
		-cpuprofile cpu.prof -memprofile mem.prof ./internal/core

vet:
	$(GO) vet ./...

# Hermetic markdown cross-reference check (the CI docs job).
linkcheck:
	$(GO) run ./internal/tools/linkcheck \
		README.md DESIGN.md EXPERIMENTS.md OBSERVABILITY.md ROADMAP.md CHANGES.md

docs: vet linkcheck
	test -z "$$(gofmt -l .)"

fmt:
	gofmt -w .

cover:
	$(GO) test ./internal/... -coverprofile=cover.out && $(GO) tool cover -func=cover.out | tail -1

# Regenerate every table and figure of the paper's evaluation.
experiments:
	$(GO) run ./cmd/cad3-bench

# Crash-safety study: partition + crash + recovery continuity table.
chaos:
	$(GO) run ./cmd/cad3-chaos

clean:
	rm -f cover.out test_output.txt bench_output.txt cpu.prof mem.prof core.test
