# Convenience targets for the CAD3 reproduction.

GO ?= go

.PHONY: all build test test-short bench vet fmt cover experiments clean

all: build test

build:
	$(GO) build ./...

test:
	$(GO) test ./...

test-short:
	$(GO) test -short ./...

bench:
	$(GO) test -run XXX -bench=. -benchmem ./...

vet:
	$(GO) vet ./...

fmt:
	gofmt -w .

cover:
	$(GO) test ./internal/... -coverprofile=cover.out && $(GO) tool cover -func=cover.out | tail -1

# Regenerate every table and figure of the paper's evaluation.
experiments:
	$(GO) run ./cmd/cad3-bench

clean:
	rm -f cover.out test_output.txt bench_output.txt
