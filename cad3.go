// Package cad3 is a from-scratch Go implementation of CAD3 —
// "Edge-facilitated Real-time Collaborative Abnormal Driving Distributed
// Detection" (Alhilal et al., ICDCS 2021) — together with every substrate
// the paper's testbed relied on: a Kafka-like partitioned event broker
// with a TCP wire protocol, a Spark-Streaming-like micro-batch engine, a
// small ML library (Gaussian Naive Bayes + CART Decision Tree), an
// emulated DSRC channel (hierarchical token bucket + IEEE 802.11p CSMA/CA
// model) with a discrete-event simulator, a synthetic Shenzhen-scale road
// network and driving-trace generator, and the three detection models the
// paper compares (centralized, standalone AD3, collaborative CAD3).
//
// This package is the facade downstream users import: it re-exports the
// domain types and provides high-level constructors. The implementation
// lives under internal/, one package per subsystem (see DESIGN.md for the
// full inventory), and internal/experiments regenerates every table and
// figure of the paper's evaluation.
//
// # Quick start
//
//	net, _ := cad3.BuildNetwork(cad3.NetworkConfig{Scale: 0.05, Seed: 1})
//	sc, _ := cad3.BuildScenario(cad3.ScenarioConfig{Cars: 400, Seed: 1})
//	rows, _ := cad3.RunModelComparison(sc)
//	fmt.Print(cad3.FormatModelRows(rows))
//
// See examples/ for runnable programs: a quickstart, the microscopic
// handover pipeline over real TCP brokers, a city-scale planning study,
// and a failure-injection demo.
package cad3

import (
	"cad3/internal/core"
	"cad3/internal/experiments"
	"cad3/internal/geo"
	"cad3/internal/mlkit"
	"cad3/internal/netem"
	"cad3/internal/rsu"
	"cad3/internal/stream"
	"cad3/internal/trace"
	"cad3/internal/vehicle"
)

// Geographic substrate.
type (
	// Point is a WGS84 coordinate.
	Point = geo.Point
	// RoadType classifies road segments (OSM highway taxonomy).
	RoadType = geo.RoadType
	// Segment is a directed road segment.
	Segment = geo.Segment
	// SegmentID identifies a road segment.
	SegmentID = geo.SegmentID
	// Network is a road network with a spatial index.
	Network = geo.Network
	// NetworkConfig configures the synthetic Shenzhen-scale generator.
	NetworkConfig = geo.BuildConfig
	// Matcher is the HMM map matcher.
	Matcher = geo.Matcher
	// MatcherConfig tunes the map matcher.
	MatcherConfig = geo.MatcherConfig
	// RSUPlanRow is one row of the Table V deployment plan.
	RSUPlanRow = geo.RSUPlanRow
)

// Road types re-exported for convenience.
const (
	Motorway     = geo.Motorway
	MotorwayLink = geo.MotorwayLink
	Trunk        = geo.Trunk
	Primary      = geo.Primary
	Secondary    = geo.Secondary
	Tertiary     = geo.Tertiary
	Residential  = geo.Residential
)

// Driving-data substrate.
type (
	// CarID identifies a vehicle.
	CarID = trace.CarID
	// Record is the Table II vehicle status record (the on-wire unit).
	Record = trace.Record
	// Trip and TrajectoryPoint are the Table I raw schema.
	Trip            = trace.Trip
	TrajectoryPoint = trace.TrajectoryPoint
	// Dataset bundles generated tables.
	Dataset = trace.Dataset
	// GeneratorConfig configures the synthetic trace generator.
	GeneratorConfig = trace.GeneratorConfig
	// Generator produces synthetic trips and trajectories.
	Generator = trace.Generator
)

// Detection core.
type (
	// Detector classifies records, optionally using a forwarded summary.
	Detector = core.Detector
	// Detection is a classification outcome.
	Detection = core.Detection
	// Warning is the OUT-DATA payload.
	Warning = core.Warning
	// PredictionSummary is the CO-DATA payload.
	PredictionSummary = core.PredictionSummary
	// Labeler implements the sigma-cutoff offline labelling stage.
	Labeler = core.Labeler
	// AD3 is the standalone road-aware model; CAD3 the collaborative
	// model; Centralized the cloud baseline.
	AD3         = core.AD3
	CAD3        = core.CAD3
	CAD3Config  = core.CAD3Config
	Centralized = core.Centralized
	// ConfusionMatrix carries the Table IV metrics.
	ConfusionMatrix = mlkit.ConfusionMatrix
)

// Class labels (the paper's encoding).
const (
	ClassAbnormal = core.ClassAbnormal
	ClassNormal   = core.ClassNormal
)

// Streaming substrate.
type (
	// Broker is the in-memory partitioned event broker.
	Broker = stream.Broker
	// BrokerConfig tunes a broker.
	BrokerConfig = stream.BrokerConfig
	// Client abstracts broker access (in-process or TCP).
	Client = stream.Client
	// Producer and Consumer are the pub/sub endpoints.
	Producer = stream.Producer
	Consumer = stream.Consumer
	// Server exposes a broker over TCP.
	Server = stream.Server
	// Message is one log record.
	Message = stream.Message
)

// Topic names of the CAD3 pipeline.
const (
	TopicInData  = stream.TopicInData
	TopicOutData = stream.TopicOutData
	TopicCoData  = stream.TopicCoData
)

// Deployment.
type (
	// RSU is a deployed edge node; RSUConfig configures it.
	RSU       = rsu.Node
	RSUConfig = rsu.Config
	// RSUStats summarises node activity.
	RSUStats = rsu.Stats
	// Vehicle is an emulated connected vehicle; Fleet a set of them.
	Vehicle       = vehicle.Vehicle
	VehicleConfig = vehicle.Config
	Fleet         = vehicle.Fleet
)

// Experiments.
type (
	// Scenario is the trained three-model comparison setup.
	Scenario = experiments.Scenario
	// ScenarioConfig sizes it.
	ScenarioConfig = experiments.ScenarioConfig
	// ModelRow is one Figure 7 / Table IV row.
	ModelRow = experiments.ModelRow
	// LatencyConfig / LatencyResult drive the Figure 6 experiments.
	LatencyConfig = experiments.LatencyConfig
	LatencyResult = experiments.LatencyResult
)

// BuildNetwork generates a synthetic road network matched to the paper's
// Table V statistics.
func BuildNetwork(cfg NetworkConfig) (*Network, error) { return geo.BuildNetwork(cfg) }

// NewGenerator prepares a synthetic driving-trace generator.
func NewGenerator(cfg GeneratorConfig) (*Generator, error) { return trace.NewGenerator(cfg) }

// DeriveRecords converts raw trajectories into Table II analysis records
// (Equation 4 speeds, acceleration, context, road mean speed).
func DeriveRecords(net *Network, points []TrajectoryPoint) ([]Record, error) {
	return trace.DeriveRecords(net, points, trace.DeriveOptions{})
}

// FilterRecords removes erroneous records, returning the clean set.
func FilterRecords(records []Record) []Record {
	clean, _ := trace.FilterRecords(records)
	return clean
}

// TrainLabeler fits the per-road-type sigma-cutoff labeler (k <= 0
// selects the paper's 1-sigma rule).
func TrainLabeler(records []Record, sigmaK float64) (*Labeler, error) {
	return core.TrainLabeler(records, sigmaK)
}

// NewAD3 creates an untrained standalone detector for a road type.
func NewAD3(t RoadType) *AD3 { return core.NewAD3(t) }

// NewCAD3 creates an untrained collaborative detector for a road type.
func NewCAD3(t RoadType, cfg CAD3Config) *CAD3 { return core.NewCAD3(t, cfg) }

// NewCentralized creates the untrained cloud baseline.
func NewCentralized() *Centralized { return core.NewCentralized() }

// EvaluateDetector scores a detector against the labeler's ground truth.
func EvaluateDetector(det Detector, records []Record, labeler *Labeler, summaries map[CarID]PredictionSummary) (ConfusionMatrix, error) {
	return core.EvaluateDetector(det, records, labeler, summaries)
}

// NewBroker creates an in-memory event broker.
func NewBroker() *Broker { return stream.NewBroker(stream.BrokerConfig{}) }

// NewInProcClient binds a client directly to a broker.
func NewInProcClient(b *Broker) Client { return stream.NewInProcClient(b) }

// Serve exposes a broker over TCP on addr (e.g. "127.0.0.1:9092").
func Serve(b *Broker, addr string) (*Server, error) { return stream.NewServer(b, addr) }

// Dial connects to a TCP broker.
func Dial(addr string) (Client, error) { return stream.Dial(addr) }

// NewRSU assembles an edge node over a broker client.
func NewRSU(cfg RSUConfig) (*RSU, error) { return rsu.New(cfg) }

// NewVehicle creates one emulated vehicle.
func NewVehicle(cfg VehicleConfig) (*Vehicle, error) { return vehicle.New(cfg) }

// NewFleet creates n vehicles replaying records round-robin.
func NewFleet(n int, records []Record, clientFor func(i int) Client, opts VehicleConfig) (*Fleet, error) {
	return vehicle.NewFleet(n, records, clientFor, opts)
}

// BuildScenario trains the three-model comparison scenario.
func BuildScenario(cfg ScenarioConfig) (*Scenario, error) { return experiments.BuildScenario(cfg) }

// RunModelComparison evaluates the three models (Figure 7 + Table IV).
func RunModelComparison(sc *Scenario) ([]ModelRow, error) {
	return experiments.RunModelComparison(sc)
}

// FormatModelRows renders the comparison.
func FormatModelRows(rows []ModelRow) string { return experiments.FormatModelRows(rows) }

// RunLatency executes the single-RSU network experiment (Figure 6a/6c).
func RunLatency(cfg LatencyConfig) (*LatencyResult, error) { return experiments.RunLatency(cfg) }

// PlanRSUs reproduces the Table V deployment plan from the paper's
// aggregate road statistics.
func PlanRSUs() []RSUPlanRow { return geo.PlanRSUsFromStats(geo.ShenzhenRoadStats(), 0) }

// Extended detectors and infrastructure (beyond the paper's baseline).
type (
	// OnlineAD3 is the continuously learning AD3 variant.
	OnlineAD3 = core.OnlineAD3
	// LogisticAD3 swaps Naive Bayes for logistic regression.
	LogisticAD3 = core.LogisticAD3
	// Router plans shortest routes over a network.
	Router = geo.Router
	// Heatmap is the Figure 9 vehicle-density grid.
	Heatmap = geo.Heatmap
	// CoverageGap is a traffic hotspot without nearby infrastructure.
	CoverageGap = geo.CoverageGap
	// Group is a consumer group sharing a topic's partitions.
	Group = stream.Group
	// ChannelManager assigns DSRC service channels to RSU sites.
	ChannelManager = netem.ChannelManager
)

// NewOnlineAD3 creates a continuously learning detector (sigmaK <= 0 and
// warmup <= 0 select the defaults).
func NewOnlineAD3(t RoadType, sigmaK float64, warmup int64) (*OnlineAD3, error) {
	return core.NewOnlineAD3(t, sigmaK, warmup)
}

// NewRouter creates a route planner over a network.
func NewRouter(net *Network) *Router { return geo.NewRouter(net) }

// NewGroup creates a consumer group over a topic.
func NewGroup(client Client, topicName string, startOffset int64) (*Group, error) {
	return stream.NewGroup(client, topicName, startOffset)
}

// NewChannelManager creates the §VII-B service-channel manager
// (parameters <= 0 select the defaults).
func NewChannelManager(interferenceRangeM, switchThreshold float64) *ChannelManager {
	return netem.NewChannelManager(interferenceRangeM, switchThreshold)
}
