package cad3_test

import (
	"context"
	"sync"
	"testing"
	"time"

	"cad3"
	"cad3/internal/geo"
	"cad3/internal/trace"
)

// The integration tests drive the public API end-to-end: dataset
// generation through model training, and the full networked pipeline
// (TCP brokers, RSU nodes, emulated vehicles) on the wall clock.

var (
	itScenarioOnce sync.Once
	itScenario     *cad3.Scenario
	itScenarioErr  error
)

func integrationScenario(t *testing.T) *cad3.Scenario {
	t.Helper()
	itScenarioOnce.Do(func() {
		itScenario, itScenarioErr = cad3.BuildScenario(cad3.ScenarioConfig{Cars: 250, Seed: 21})
	})
	if itScenarioErr != nil {
		t.Fatal(itScenarioErr)
	}
	return itScenario
}

func TestPublicAPIDatasetPipeline(t *testing.T) {
	net, err := cad3.BuildNetwork(cad3.NetworkConfig{Scale: 0.02, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	gen, err := cad3.NewGenerator(cad3.GeneratorConfig{Network: net, Cars: 20, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	ds, err := gen.Generate()
	if err != nil {
		t.Fatal(err)
	}
	recs, err := cad3.DeriveRecords(net, ds.Trajectories)
	if err != nil {
		t.Fatal(err)
	}
	clean := cad3.FilterRecords(recs)
	if len(clean) == 0 {
		t.Fatal("empty filtered dataset")
	}
	labeler, err := cad3.TrainLabeler(clean, 0)
	if err != nil {
		t.Fatal(err)
	}
	det := cad3.NewCentralized()
	if err := det.Train(clean, labeler); err != nil {
		t.Fatal(err)
	}
	m, err := cad3.EvaluateDetector(det, clean, labeler, nil)
	if err != nil {
		t.Fatal(err)
	}
	if m.Total() != len(clean) {
		t.Errorf("evaluated %d records, want %d", m.Total(), len(clean))
	}
}

func TestPublicAPIPlanningSurface(t *testing.T) {
	rows := cad3.PlanRSUs()
	if len(rows) != 10 {
		t.Fatalf("plan rows = %d", len(rows))
	}
	var total int
	for _, r := range rows {
		total += r.RSUs
	}
	if total != 4997 {
		t.Errorf("total RSUs = %d", total)
	}
}

// TestEndToEndPipelineOverTCP is the paper's testbed in one process: a
// motorway RSU and a motorway-link RSU each behind a real TCP broker,
// vehicles streaming at an accelerated rate, a live handover, and
// end-to-end warning latency measured at the vehicles.
func TestEndToEndPipelineOverTCP(t *testing.T) {
	if testing.Short() {
		t.Skip("wall-clock pipeline in -short mode")
	}
	sc := integrationScenario(t)

	mwBroker, linkBroker := cad3.NewBroker(), cad3.NewBroker()
	mwServer, err := cad3.Serve(mwBroker, "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer mwServer.Close()
	linkServer, err := cad3.Serve(linkBroker, "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer linkServer.Close()

	mwRSU, err := cad3.NewRSU(cad3.RSUConfig{
		Name: "Mw", Road: 1, Detector: sc.Upstream,
		Client:        cad3.NewInProcClient(mwBroker),
		BatchInterval: 10 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	linkRSU, err := cad3.NewRSU(cad3.RSUConfig{
		Name: "Link", Road: 2, Detector: sc.CAD3,
		Client:        cad3.NewInProcClient(linkBroker),
		BatchInterval: 10 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	neighbor, err := cad3.Dial(linkServer.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer neighbor.Close()
	if err := mwRSU.AddNeighbor("link", neighbor); err != nil {
		t.Fatal(err)
	}

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	go func() { _ = mwRSU.Run(ctx) }()
	go func() { _ = linkRSU.Run(ctx) }()

	// Phase 1: vehicles on the motorway (accelerated clock: 10 ms sends).
	const vehicles = 6
	mwRecords := trace.RecordsOfType(sc.Test, geo.Motorway)
	clients := make([]cad3.Client, vehicles)
	for i := range clients {
		c, err := cad3.Dial(mwServer.Addr())
		if err != nil {
			t.Fatal(err)
		}
		defer c.Close()
		clients[i] = c
	}
	fleet, err := cad3.NewFleet(vehicles, mwRecords, func(i int) cad3.Client { return clients[i] },
		cad3.VehicleConfig{Loop: true, SendInterval: 10 * time.Millisecond, PollInterval: 5 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	phase1, cancel1 := context.WithTimeout(ctx, 700*time.Millisecond)
	_ = fleet.Run(phase1)
	cancel1()
	if mwRSU.Stats().Records == 0 {
		t.Fatal("motorway RSU saw no records")
	}

	// Handover all vehicles.
	for i := 1; i <= vehicles; i++ {
		if err := mwRSU.Handover(cad3.CarID(i), "link"); err != nil {
			t.Fatal(err)
		}
	}

	// Phase 2: same vehicles on the link.
	linkClients := make([]cad3.Client, vehicles)
	for i := range linkClients {
		c, err := cad3.Dial(linkServer.Addr())
		if err != nil {
			t.Fatal(err)
		}
		defer c.Close()
		linkClients[i] = c
	}
	fleet2, err := cad3.NewFleet(vehicles, sc.TestLink, func(i int) cad3.Client { return linkClients[i] },
		cad3.VehicleConfig{Loop: true, SendInterval: 10 * time.Millisecond, PollInterval: 5 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	phase2, cancel2 := context.WithTimeout(ctx, 700*time.Millisecond)
	_ = fleet2.Run(phase2)
	cancel2()
	time.Sleep(50 * time.Millisecond)

	st := linkRSU.Stats()
	if st.SummariesReceived != vehicles {
		t.Errorf("link RSU received %d summaries, want %d", st.SummariesReceived, vehicles)
	}
	if st.Records == 0 {
		t.Fatal("link RSU saw no records")
	}
	if st.PriorHits == 0 {
		t.Error("no detections used the forwarded priors")
	}

	// Warnings must have flowed back with sane latency (in-process
	// pipeline: bounded by the batch interval + polling).
	var latencySamples int
	for _, v := range fleet2.Vehicles() {
		rep := v.Latencies()
		latencySamples += rep.Total.Count
		if rep.Total.Count > 0 && rep.Total.Mean > 500*time.Millisecond {
			t.Errorf("vehicle latency mean %v implausibly high", rep.Total.Mean)
		}
	}
	if latencySamples == 0 {
		t.Error("no end-to-end warnings measured")
	}
}

func TestPublicAPIDESLatency(t *testing.T) {
	sc := integrationScenario(t)
	res, err := cad3.RunLatency(cad3.LatencyConfig{
		Vehicles: 16,
		Duration: time.Second,
		Seed:     21,
		Records:  sc.TestLink,
		Detector: sc.AD3,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Warnings == 0 {
		t.Fatal("no warnings in DES run")
	}
	if res.Report.Total.Mean <= 0 || res.Report.Total.Mean > 100*time.Millisecond {
		t.Errorf("total latency %v out of band", res.Report.Total.Mean)
	}
}

func TestPublicAPIExtensionsSurface(t *testing.T) {
	// Online detector.
	online, err := cad3.NewOnlineAD3(cad3.MotorwayLink, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	if online.Name() != "OnlineAD3" {
		t.Errorf("name = %q", online.Name())
	}

	// Router over a small network.
	net, err := cad3.BuildNetwork(cad3.NetworkConfig{Scale: 0.02, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	router := cad3.NewRouter(net)
	mw := net.SegmentsOfType(cad3.Motorway)[0]
	succ := net.Successors(mw.ID)
	if len(succ) > 0 {
		route, err := router.Route(mw.ID, succ[0])
		if err != nil || len(route) != 2 {
			t.Errorf("route = %v, %v", route, err)
		}
	}

	// Consumer group through the facade.
	broker := cad3.NewBroker()
	if err := broker.CreateTopic(cad3.TopicInData, 3); err != nil {
		t.Fatal(err)
	}
	group, err := cad3.NewGroup(cad3.NewInProcClient(broker), cad3.TopicInData, 0)
	if err != nil {
		t.Fatal(err)
	}
	m, err := group.Join("worker-1")
	if err != nil {
		t.Fatal(err)
	}
	if len(m.Assignment()) != 3 {
		t.Errorf("assignment = %v", m.Assignment())
	}

	// Channel manager.
	mgr := cad3.NewChannelManager(0, 0)
	if _, err := mgr.AddSite("rsu-a", 0, 0); err != nil {
		t.Fatal(err)
	}
	if ch, ok := mgr.ChannelOf("rsu-a"); !ok || !ch.Valid() {
		t.Errorf("channel = %v, %v", ch, ok)
	}
}
